//! The EVM code generator.
//!
//! Storage model (the Reach state-commitment layout that keeps call gas
//! low — see DESIGN.md):
//!
//! * slot 0 — the phase counter;
//! * slot 1 — the creator (deployer) address;
//! * slots 2… — globals in declaration order (byte-typed globals hold the
//!   Keccak-256 commitment of their payload);
//! * map entries — `keccak(key ‖ 0x1000+map_index)` holds the commitment
//!   of the concatenated payload; the raw payload is emitted as a LOG so
//!   clients (and the explorer) can recover it and check it against the
//!   commitment.
//!
//! Deployment follows the real `CREATE` protocol: the init code runs the
//! constructor (reading its arguments from the code tail via `CODECOPY`)
//! and returns the runtime image.

use crate::ast::{Api, BinOp, Expr, GlobalInit, Program, Stmt, Ty};
use crate::backend::AbiValue;
use crate::LangError;
use pol_evm::assembler::Asm;
use pol_evm::opcode::Op;
use pol_evm::word::Word;
use pol_ledger::Address;
use std::collections::HashMap;

/// Reserved storage slots before the globals.
pub const SLOT_PHASE: u64 = 0;
/// Slot holding the creator's address.
pub const SLOT_CREATOR: u64 = 1;
/// First slot assigned to declared globals (in declaration order).
pub const GLOBAL_SLOT_BASE: u64 = 2;
/// Base constant mixed into map-slot derivation.
pub const MAP_SLOT_BASE: u64 = 0x1000;

/// The storage slot assigned to the `idx`-th declared global.
pub fn global_slot(idx: usize) -> u64 {
    GLOBAL_SLOT_BASE + idx as u64
}
/// Memory scratch area for slot derivation.
const SCRATCH: u64 = 0x00;
/// Memory base for staging byte payloads.
const STAGING: u64 = 0x80;

/// Padding appended to the runtime image, emulating the size of the
/// runtime library the production Reach compiler links into every
/// contract (dead code behind a terminal revert; never executed). The
/// default is calibrated so the proof-of-location contract's
/// conservative deployment analysis matches the paper's 1,440,385 gas.
pub const DEFAULT_RUNTIME_PAD: usize = 4096;

/// The compiled EVM artifact.
#[derive(Debug, Clone)]
pub struct CompiledEvm {
    /// Init code *without* constructor arguments appended.
    pub init_code: Vec<u8>,
    /// Length of the runtime image (deposit gas = 200 × this).
    pub runtime_len: usize,
    /// Dispatch selectors per API (plus `closeContract` and views).
    pub selectors: HashMap<String, [u8; 4]>,
    /// Constructor field layout `(name, ty, offset, padded_len)`.
    field_layout: Vec<(String, Ty, usize, usize)>,
    /// Per-API parameter layout.
    param_layouts: HashMap<String, Vec<(String, Ty, usize, usize)>>,
}

impl CompiledEvm {
    /// Produces the full deployment payload: init code with the encoded
    /// constructor arguments appended.
    ///
    /// # Errors
    ///
    /// [`LangError::Backend`] when argument count or types mismatch.
    pub fn init_with_args(&self, args: &[AbiValue]) -> Result<Vec<u8>, LangError> {
        let mut out = self.init_code.clone();
        out.extend(encode_values(&self.field_layout, args)?);
        Ok(out)
    }

    /// Encodes a call to `api` with the given arguments.
    ///
    /// # Errors
    ///
    /// [`LangError::Backend`] for unknown APIs or argument mismatches.
    pub fn encode_call(&self, api: &str, args: &[AbiValue]) -> Result<Vec<u8>, LangError> {
        let selector = self
            .selectors
            .get(api)
            .ok_or_else(|| LangError::Backend(format!("unknown api {api:?}")))?;
        let layout = self
            .param_layouts
            .get(api)
            .ok_or_else(|| LangError::Backend(format!("unknown api {api:?}")))?;
        let mut out = selector.to_vec();
        out.extend(encode_values(layout, args)?);
        Ok(out)
    }

    /// The selector of a viewable global's accessor.
    pub fn view_selector(&self, global: &str) -> Option<[u8; 4]> {
        self.selectors.get(&format!("view_{global}")).copied()
    }
}

fn encode_values(
    layout: &[(String, Ty, usize, usize)],
    args: &[AbiValue],
) -> Result<Vec<u8>, LangError> {
    if layout.len() != args.len() {
        return Err(LangError::Backend(format!(
            "expected {} arguments, got {}",
            layout.len(),
            args.len()
        )));
    }
    let total: usize = layout.iter().map(|(_, _, _, len)| len).sum();
    let mut out = vec![0u8; total];
    for ((name, ty, off, len), value) in layout.iter().zip(args) {
        if !value.matches(ty) {
            return Err(LangError::Backend(format!("argument {name:?} does not match {ty:?}")));
        }
        match value {
            AbiValue::Word(w) => {
                out[*off..off + 32].copy_from_slice(&Word::from_u128(*w).to_be_bytes());
            }
            AbiValue::Address(a) => {
                out[*off..off + 32].copy_from_slice(&Word::from(*a).to_be_bytes());
            }
            AbiValue::Bytes(b) => {
                out[*off..off + b.len()].copy_from_slice(b);
            }
        }
        let _ = len;
    }
    Ok(out)
}

/// Where an API's byte parameters live at run time.
#[derive(Clone, Copy)]
enum ParamSource {
    /// Message-call parameters (after the 4-byte selector).
    CallData,
    /// Constructor arguments in the code tail, at this base offset.
    Code(usize),
}

/// Per-function compilation context.
struct Ctx<'p> {
    program: &'p Program,
    source: ParamSource,
    /// name → (ty, offset within the args area, padded length).
    params: HashMap<String, (Ty, usize, usize)>,
    asm: Asm,
    revert_label: pol_evm::assembler::Label,
    staging_top: u64,
}

/// Computes the `(name, ty, offset, padded_len)` layout for a parameter
/// or field list (offsets relative to the start of the argument area).
pub(crate) fn layout(params: &[(String, Ty)]) -> Vec<(String, Ty, usize, usize)> {
    let mut out = Vec::with_capacity(params.len());
    let mut off = 0usize;
    for (name, ty) in params {
        let len = match ty {
            Ty::Bytes(cap) => cap.div_ceil(32) * 32,
            _ => 32,
        };
        out.push((name.clone(), *ty, off, len));
        off += len;
    }
    out
}

/// The canonical signature used for selector derivation.
pub(crate) fn signature(name: &str, params: &[(String, Ty)]) -> String {
    let tys: Vec<String> = params
        .iter()
        .map(|(_, ty)| match ty {
            Ty::UInt => "uint256".to_string(),
            Ty::Bool => "bool".to_string(),
            Ty::Address => "address".to_string(),
            Ty::Bytes(n) => format!("bytes{n}"),
        })
        .collect();
    format!("{name}({})", tys.join(","))
}

/// Compiles a checked program to EVM bytecode with the default runtime
/// pad.
///
/// # Errors
///
/// [`LangError::Backend`] on model restrictions (e.g. byte values used in
/// word context — normally excluded by the type checker).
pub fn compile(program: &Program) -> Result<CompiledEvm, LangError> {
    compile_with_pad(program, DEFAULT_RUNTIME_PAD)
}

/// Compiles with an explicit runtime pad (ablation benches vary this).
///
/// # Errors
///
/// As for [`compile`].
pub fn compile_with_pad(program: &Program, runtime_pad: usize) -> Result<CompiledEvm, LangError> {
    let mut selectors = HashMap::new();
    let mut param_layouts = HashMap::new();

    // ---- Runtime image ----
    let mut asm = Asm::new();
    let revert_label = asm.new_label();

    // selector = calldata[0..4]: CALLDATALOAD(0) / 2^224
    asm = asm.push_u64(0).op(Op::CallDataLoad);
    let mut shift = [0u8; 29];
    shift[0] = 1;
    asm = asm.push_bytes(&shift).swap(1).op(Op::Div);

    // Dispatch table.
    struct Entry {
        label: pol_evm::assembler::Label,
        selector: [u8; 4],
    }
    let mut entries: Vec<(String, Entry, DispatchKind)> = Vec::new();
    enum DispatchKind {
        Api { phase: usize, api: Api },
        View { slot: u64 },
        Close,
    }
    for (phase_idx, api) in program.all_apis() {
        let label = asm.new_label();
        let selector = pol_evm::abi::selector(&signature(&api.name, &api.params));
        selectors.insert(api.name.clone(), selector);
        param_layouts.insert(api.name.clone(), layout(&api.params));
        entries.push((
            api.name.clone(),
            Entry { label, selector },
            DispatchKind::Api { phase: phase_idx, api: api.clone() },
        ));
    }
    for (i, global) in program.globals.iter().enumerate() {
        if global.viewable {
            let name = format!("view_{}", global.name);
            let label = asm.new_label();
            let selector = pol_evm::abi::selector(&signature(&name, &[]));
            selectors.insert(name.clone(), selector);
            param_layouts.insert(name.clone(), Vec::new());
            entries.push((
                name,
                Entry { label, selector },
                DispatchKind::View { slot: GLOBAL_SLOT_BASE + i as u64 },
            ));
        }
    }
    {
        let label = asm.new_label();
        let selector = pol_evm::abi::selector("closeContract()");
        selectors.insert("closeContract".into(), selector);
        param_layouts.insert("closeContract".into(), Vec::new());
        entries.push(("closeContract".into(), Entry { label, selector }, DispatchKind::Close));
    }

    for (_, entry, _) in &entries {
        asm = asm
            .op(Op::Dup1)
            .push_bytes(&entry.selector)
            .op(Op::Eq)
            .push_label(entry.label)
            .op(Op::JumpI);
    }
    // Unknown selector: revert.
    asm = asm.jump(revert_label);

    // Function bodies.
    for (_, entry, kind) in entries {
        asm = asm.bind(entry.label).op(Op::Pop); // discard selector copy
        match kind {
            DispatchKind::View { slot } => {
                asm = asm
                    .push_u64(slot)
                    .op(Op::SLoad)
                    .push_u64(0)
                    .op(Op::MStore)
                    .push_u64(32)
                    .push_u64(0)
                    .op(Op::Return);
            }
            DispatchKind::Close => {
                let n_phases = program.phases.len() as u64;
                // require phase == n_phases
                asm = asm
                    .push_u64(SLOT_PHASE)
                    .op(Op::SLoad)
                    .push_u64(n_phases)
                    .op(Op::Eq)
                    .op(Op::IsZero)
                    .push_label(revert_label)
                    .op(Op::JumpI);
                // transfer self balance to creator
                asm = asm
                    .push_u64(0) // out_size
                    .push_u64(0) // out_off
                    .push_u64(0) // in_size
                    .push_u64(0) // in_off
                    .op(Op::SelfBalance) // value
                    .push_u64(SLOT_CREATOR)
                    .op(Op::SLoad) // to
                    .push_u64(0) // gas
                    .op(Op::Call)
                    .op(Op::Pop)
                    .op(Op::Stop);
            }
            DispatchKind::Api { phase, api } => {
                let mut ctx =
                    Ctx::new(program, ParamSource::CallData, &api.params, asm, revert_label);
                ctx.compile_api(phase, &api)?;
                asm = ctx.asm;
            }
        }
    }

    // Terminal revert.
    asm = asm.bind(revert_label).push_u64(0).push_u64(0).op(Op::Revert);
    let mut runtime = asm.build();
    // Runtime-library pad (never reached; behind the terminal revert).
    runtime.extend(std::iter::repeat_n(0xfeu8, runtime_pad));
    let runtime_len = runtime.len();

    // ---- Constructor (two-pass for the args offset) ----
    let field_layout = layout(&program.creator.fields);
    let constructor_len = emit_constructor(program, &field_layout, 0)?.len();
    let args_off = constructor_len + pol_evm::assembler::DEPLOY_WRAPPER_LEN + runtime_len;
    let constructor = emit_constructor(program, &field_layout, args_off)?;
    debug_assert_eq!(constructor.len(), constructor_len);
    let init_code = Asm::initcode(&constructor, &runtime);

    Ok(CompiledEvm { init_code, runtime_len, selectors, field_layout, param_layouts })
}

fn emit_constructor(
    program: &Program,
    field_layout: &[(String, Ty, usize, usize)],
    args_off: usize,
) -> Result<Vec<u8>, LangError> {
    let mut asm = Asm::new();
    let revert_label = asm.new_label();
    // _creator = CALLER
    asm = asm.op(Op::Caller).push_u64(SLOT_CREATOR).op(Op::SStore);
    let fields: Vec<(String, Ty)> =
        program.creator.fields.iter().map(|(n, t)| (n.clone(), *t)).collect();
    let mut ctx = Ctx::new(program, ParamSource::Code(args_off), &fields, asm, revert_label);
    let _ = field_layout;

    // Globals.
    for (i, global) in program.globals.iter().enumerate() {
        let slot = GLOBAL_SLOT_BASE + i as u64;
        match &global.init {
            GlobalInit::Const(0) => {}
            GlobalInit::Const(c) => {
                ctx.asm = std::mem::take(&mut ctx.asm).push_u64(*c).push_u64(slot).op(Op::SStore);
            }
            GlobalInit::CreatorAddress => {
                ctx.asm = std::mem::take(&mut ctx.asm).op(Op::Caller).push_u64(slot).op(Op::SStore);
            }
            GlobalInit::FromField(field) => {
                let ty = program.field_ty(field).expect("checked");
                if ty.is_word() {
                    ctx.emit_expr(&Expr::Param(field.clone()))?;
                } else {
                    // Commit the byte payload.
                    ctx.emit_expr(&Expr::Hash(vec![Expr::Param(field.clone())]))?;
                }
                ctx.asm = std::mem::take(&mut ctx.asm).push_u64(slot).op(Op::SStore);
            }
        }
    }
    // Constructor body.
    for stmt in &program.constructor {
        ctx.emit_stmt(stmt)?;
    }
    // Jump over the terminal revert into the deploy wrapper that follows.
    let done = ctx.asm.new_label();
    ctx.asm = std::mem::take(&mut ctx.asm).jump(done);
    ctx.asm =
        std::mem::take(&mut ctx.asm).bind(revert_label).push_u64(0).push_u64(0).op(Op::Revert);
    ctx.asm = std::mem::take(&mut ctx.asm).bind(done);
    Ok(ctx.asm.build())
}

impl<'p> Ctx<'p> {
    fn new(
        program: &'p Program,
        source: ParamSource,
        params: &[(String, Ty)],
        asm: Asm,
        revert_label: pol_evm::assembler::Label,
    ) -> Ctx<'p> {
        let mut map = HashMap::new();
        for (name, ty, off, len) in layout(params) {
            map.insert(name, (ty, off, len));
        }
        let staging_top = STAGING + map.values().map(|(_, _, len)| *len as u64).sum::<u64>();
        Ctx { program, source, params: map, asm, revert_label, staging_top }
    }

    fn compile_api(&mut self, phase_idx: usize, api: &Api) -> Result<(), LangError> {
        let phase = &self.program.phases[phase_idx];
        // require _phase == phase_idx
        self.asm = std::mem::take(&mut self.asm)
            .push_u64(SLOT_PHASE)
            .op(Op::SLoad)
            .push_u64(phase_idx as u64)
            .op(Op::Eq);
        self.require_top()?;
        // require while_cond
        self.emit_expr(&phase.while_cond)?;
        self.require_top()?;
        // payment check
        match &api.pay {
            Some(pay) => {
                self.emit_expr(pay)?;
                self.asm = std::mem::take(&mut self.asm).op(Op::CallValue).op(Op::Eq);
                self.require_top()?;
            }
            None => {
                self.asm = std::mem::take(&mut self.asm).op(Op::CallValue).op(Op::IsZero);
                self.require_top()?;
            }
        }
        for stmt in &api.body {
            self.emit_stmt(stmt)?;
        }
        // Phase advance: if !while_cond { _phase += 1 }
        let keep = self.asm.new_label();
        self.emit_expr(&phase.while_cond)?;
        self.asm = std::mem::take(&mut self.asm).push_label(keep).op(Op::JumpI);
        self.asm = std::mem::take(&mut self.asm)
            .push_u64(SLOT_PHASE)
            .op(Op::SLoad)
            .push_u64(1)
            .op(Op::Add)
            .push_u64(SLOT_PHASE)
            .op(Op::SStore);
        self.asm = std::mem::take(&mut self.asm).bind(keep);
        // Return value.
        self.emit_expr(&api.returns)?;
        self.asm = std::mem::take(&mut self.asm)
            .push_u64(0)
            .op(Op::MStore)
            .push_u64(32)
            .push_u64(0)
            .op(Op::Return);
        Ok(())
    }

    /// Consumes the boolean on top of the stack, reverting when zero.
    fn require_top(&mut self) -> Result<(), LangError> {
        self.asm = std::mem::take(&mut self.asm)
            .op(Op::IsZero)
            .push_label(self.revert_label)
            .op(Op::JumpI);
        Ok(())
    }

    fn emit_stmt(&mut self, stmt: &Stmt) -> Result<(), LangError> {
        match stmt {
            Stmt::Require(cond) => {
                self.emit_expr(cond)?;
                self.require_top()
            }
            Stmt::GlobalSet { name, value } => {
                let idx = self.program.global_index(name).expect("checked");
                let global = &self.program.globals[idx];
                if global.ty.is_word() {
                    self.emit_expr(value)?;
                } else {
                    self.emit_expr(&Expr::Hash(vec![value.clone()]))?;
                }
                self.asm = std::mem::take(&mut self.asm)
                    .push_u64(GLOBAL_SLOT_BASE + idx as u64)
                    .op(Op::SStore);
                Ok(())
            }
            Stmt::MapSet { map, key, value } => {
                // commitment = keccak(staged value)
                let (base, len) = self.stage(value)?;
                self.asm =
                    std::mem::take(&mut self.asm).push_u64(len).push_u64(base).op(Op::Keccak256);
                self.emit_map_slot(map, key)?;
                self.asm = std::mem::take(&mut self.asm).op(Op::SStore);
                // LOG1 raw payload with the key as topic (stack top-down:
                // offset, size, topic — the interpreter's pop order).
                self.emit_expr(key)?;
                self.asm = std::mem::take(&mut self.asm).push_u64(len).push_u64(base).op(Op::Log1);
                Ok(())
            }
            Stmt::MapDelete { map, key } => {
                self.asm = std::mem::take(&mut self.asm).push_u64(0);
                self.emit_map_slot(map, key)?;
                self.asm = std::mem::take(&mut self.asm).op(Op::SStore);
                Ok(())
            }
            Stmt::Transfer { to, amount } => {
                self.asm =
                    std::mem::take(&mut self.asm).push_u64(0).push_u64(0).push_u64(0).push_u64(0);
                self.emit_expr(amount)?;
                self.emit_expr(to)?;
                self.asm = std::mem::take(&mut self.asm).push_u64(0).op(Op::Call).op(Op::Pop);
                Ok(())
            }
            Stmt::If { cond, then, otherwise } => {
                let else_label = self.asm.new_label();
                let end_label = self.asm.new_label();
                self.emit_expr(cond)?;
                self.asm = std::mem::take(&mut self.asm)
                    .op(Op::IsZero)
                    .push_label(else_label)
                    .op(Op::JumpI);
                for s in then {
                    self.emit_stmt(s)?;
                }
                self.asm = std::mem::take(&mut self.asm).jump(end_label).bind(else_label);
                for s in otherwise {
                    self.emit_stmt(s)?;
                }
                self.asm = std::mem::take(&mut self.asm).bind(end_label);
                Ok(())
            }
            Stmt::Log(parts) => {
                let (base, len) = self.stage(parts)?;
                self.asm = std::mem::take(&mut self.asm).push_u64(len).push_u64(base).op(Op::Log0);
                Ok(())
            }
        }
    }

    /// Computes the storage slot for `map[key]`, leaving it on the stack.
    fn emit_map_slot(&mut self, map: &str, key: &Expr) -> Result<(), LangError> {
        let idx = self.program.map_index(map).expect("checked") as u64;
        self.emit_expr(key)?;
        self.asm = std::mem::take(&mut self.asm)
            .push_u64(SCRATCH)
            .op(Op::MStore)
            .push_u64(MAP_SLOT_BASE + idx)
            .push_u64(SCRATCH + 32)
            .op(Op::MStore)
            .push_u64(64)
            .push_u64(SCRATCH)
            .op(Op::Keccak256);
        Ok(())
    }

    /// Stages a list of expressions contiguously in memory, returning
    /// `(base, total_len)`.
    fn stage(&mut self, parts: &[Expr]) -> Result<(u64, u64), LangError> {
        let base = self.staging_top;
        let mut cursor = base;
        for part in parts {
            match part {
                Expr::Param(name) if !self.param_ty(name)?.is_word() => {
                    let (_, off, len) = self.params[name.as_str()];
                    match self.source {
                        ParamSource::CallData => {
                            self.asm = std::mem::take(&mut self.asm)
                                .push_u64(len as u64)
                                .push_u64(4 + off as u64)
                                .push_u64(cursor)
                                .op(Op::CallDataCopy);
                        }
                        ParamSource::Code(args_off) => {
                            // Fixed-width push: the constructor is sized
                            // before the final args offset is known.
                            self.asm = std::mem::take(&mut self.asm)
                                .push_u64(len as u64)
                                .push_bytes(&((args_off + off) as u32).to_be_bytes())
                                .push_u64(cursor)
                                .op(Op::CodeCopy);
                        }
                    }
                    cursor += len as u64;
                }
                word_expr => {
                    self.emit_expr(word_expr)?;
                    self.asm = std::mem::take(&mut self.asm).push_u64(cursor).op(Op::MStore);
                    cursor += 32;
                }
            }
        }
        Ok((base, cursor - base))
    }

    fn param_ty(&self, name: &str) -> Result<Ty, LangError> {
        self.params
            .get(name)
            .map(|(ty, _, _)| *ty)
            .ok_or_else(|| LangError::Backend(format!("unknown parameter {name:?}")))
    }

    fn emit_expr(&mut self, expr: &Expr) -> Result<(), LangError> {
        match expr {
            Expr::UInt(v) => {
                self.asm = std::mem::take(&mut self.asm).push_u64(*v);
                Ok(())
            }
            Expr::Param(name) => {
                let (ty, off, _) = *self
                    .params
                    .get(name.as_str())
                    .ok_or_else(|| LangError::Backend(format!("unknown parameter {name:?}")))?;
                if !ty.is_word() {
                    return Err(LangError::Backend(format!(
                        "byte parameter {name:?} used in word context"
                    )));
                }
                match self.source {
                    ParamSource::CallData => {
                        self.asm = std::mem::take(&mut self.asm)
                            .push_u64(4 + off as u64)
                            .op(Op::CallDataLoad);
                    }
                    ParamSource::Code(args_off) => {
                        // CODECOPY to scratch, then MLOAD; fixed-width
                        // push so both sizing passes agree.
                        self.asm = std::mem::take(&mut self.asm)
                            .push_u64(32)
                            .push_bytes(&((args_off + off) as u32).to_be_bytes())
                            .push_u64(SCRATCH)
                            .op(Op::CodeCopy)
                            .push_u64(SCRATCH)
                            .op(Op::MLoad);
                    }
                }
                Ok(())
            }
            Expr::Global(name) => {
                let idx = self.program.global_index(name).expect("checked");
                self.asm = std::mem::take(&mut self.asm)
                    .push_u64(GLOBAL_SLOT_BASE + idx as u64)
                    .op(Op::SLoad);
                Ok(())
            }
            Expr::Caller => {
                self.asm = std::mem::take(&mut self.asm).op(Op::Caller);
                Ok(())
            }
            Expr::Balance => {
                self.asm = std::mem::take(&mut self.asm).op(Op::SelfBalance);
                Ok(())
            }
            Expr::MapGet { map, key } => {
                self.emit_map_slot(map, key)?;
                self.asm = std::mem::take(&mut self.asm).op(Op::SLoad);
                Ok(())
            }
            Expr::MapContains { map, key } => {
                self.emit_map_slot(map, key)?;
                self.asm =
                    std::mem::take(&mut self.asm).op(Op::SLoad).op(Op::IsZero).op(Op::IsZero);
                Ok(())
            }
            Expr::Hash(parts) => {
                let (base, len) = self.stage(parts)?;
                self.asm =
                    std::mem::take(&mut self.asm).push_u64(len).push_u64(base).op(Op::Keccak256);
                Ok(())
            }
            Expr::Bin(op, lhs, rhs) => {
                // Emit right then left so the left operand is on top,
                // matching the interpreter's pop order.
                self.emit_expr(rhs)?;
                self.emit_expr(lhs)?;
                let asm = std::mem::take(&mut self.asm);
                self.asm = match op {
                    BinOp::Add => asm.op(Op::Add),
                    BinOp::Sub => asm.op(Op::Sub),
                    BinOp::Mul => asm.op(Op::Mul),
                    BinOp::Div => asm.op(Op::Div),
                    BinOp::Lt => asm.op(Op::Lt),
                    BinOp::Gt => asm.op(Op::Gt),
                    BinOp::Le => asm.op(Op::Gt).op(Op::IsZero),
                    BinOp::Ge => asm.op(Op::Lt).op(Op::IsZero),
                    BinOp::Eq => asm.op(Op::Eq),
                    BinOp::Ne => asm.op(Op::Eq).op(Op::IsZero),
                    BinOp::And => asm.op(Op::And),
                    BinOp::Or => asm.op(Op::Or),
                };
                Ok(())
            }
            Expr::Not(inner) => {
                self.emit_expr(inner)?;
                self.asm = std::mem::take(&mut self.asm).op(Op::IsZero);
                Ok(())
            }
        }
    }
}

/// Compiles one API in isolation, for the conservative cost analysis
/// (the fragment is scanned linearly, never executed).
///
/// # Errors
///
/// As for [`compile`].
pub fn api_fragment(program: &Program, phase_idx: usize, api: &Api) -> Result<Vec<u8>, LangError> {
    let mut asm = Asm::new();
    let revert_label = asm.new_label();
    let mut ctx = Ctx::new(program, ParamSource::CallData, &api.params, asm, revert_label);
    ctx.compile_api(phase_idx, api)?;
    ctx.asm =
        std::mem::take(&mut ctx.asm).bind(revert_label).push_u64(0).push_u64(0).op(Op::Revert);
    Ok(ctx.asm.build())
}

/// Total padded byte width of an API's parameters (calldata size minus
/// the selector).
pub fn params_width(api: &Api) -> usize {
    layout(&api.params).iter().map(|(_, _, _, len)| len).sum()
}

/// Decodes a view call's returned word.
pub fn decode_word(output: &[u8]) -> Word {
    if output.len() >= 32 {
        let mut buf = [0u8; 32];
        buf.copy_from_slice(&output[..32]);
        Word::from_be_bytes(&buf)
    } else {
        Word::from_be_slice(output)
    }
}

/// Convenience: the creator address stored by the constructor.
pub fn creator_slot_value(evm: &pol_evm::Evm, contract: Address) -> Address {
    evm.storage_at(contract, &Word::from_u64(SLOT_CREATOR)).to_address()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pol_evm::{CallParams, Evm};

    fn deploy(
        program: &Program,
        args: &[AbiValue],
    ) -> (Evm, Address, CompiledEvm, pol_evm::interpreter::Balances) {
        let compiled = compile_with_pad(program, 0).unwrap();
        let init = compiled.init_with_args(args).unwrap();
        let mut evm = Evm::new();
        let mut balances = pol_evm::interpreter::Balances::new();
        let deployer = Address([0xaa; 20]);
        let (addr, outcome) = evm.deploy(deployer, &init, 30_000_000, &mut balances).unwrap();
        assert!(outcome.success);
        (evm, addr, compiled, balances)
    }

    #[allow(clippy::too_many_arguments)]
    fn call(
        evm: &mut Evm,
        balances: &mut pol_evm::interpreter::Balances,
        addr: Address,
        compiled: &CompiledEvm,
        api: &str,
        args: &[AbiValue],
        caller: Address,
        value: u128,
    ) -> pol_evm::ExecOutcome {
        let data = compiled.encode_call(api, args).unwrap();
        evm.call(CallParams::new(caller, addr).with_data(data).with_value(value), balances).unwrap()
    }

    #[test]
    fn counter_constructor_and_views() {
        let program = Program::counter_example();
        let (mut evm, addr, compiled, mut balances) = deploy(&program, &[AbiValue::Word(3)]);
        // view_remaining == 3
        let data = compiled.encode_call("view_remaining", &[]).unwrap();
        let out =
            evm.call(CallParams::new(Address::ZERO, addr).with_data(data), &mut balances).unwrap();
        assert!(out.success);
        assert_eq!(decode_word(&out.output), Word::from_u64(3));
    }

    #[test]
    fn counter_bump_until_phase_ends() {
        let program = Program::counter_example();
        let (mut evm, addr, compiled, mut balances) = deploy(&program, &[AbiValue::Word(2)]);
        let caller = Address([1; 20]);
        let out =
            call(&mut evm, &mut balances, addr, &compiled, "bump", &[AbiValue::Word(5)], caller, 0);
        assert!(out.success, "{:?}", out);
        assert_eq!(decode_word(&out.output), Word::from_u64(1)); // remaining
        let out =
            call(&mut evm, &mut balances, addr, &compiled, "bump", &[AbiValue::Word(7)], caller, 0);
        assert!(out.success);
        assert_eq!(decode_word(&out.output), Word::from_u64(0));
        // Phase over: next bump reverts.
        let out =
            call(&mut evm, &mut balances, addr, &compiled, "bump", &[AbiValue::Word(1)], caller, 0);
        assert!(!out.success);
        // count == 12 via view
        let data = compiled.encode_call("view_count", &[]).unwrap();
        let out =
            evm.call(CallParams::new(Address::ZERO, addr).with_data(data), &mut balances).unwrap();
        assert_eq!(decode_word(&out.output), Word::from_u64(12));
    }

    #[test]
    fn close_after_phases_returns_balance_to_creator() {
        let program = Program::counter_example();
        let (mut evm, addr, compiled, mut balances) = deploy(&program, &[AbiValue::Word(1)]);
        let caller = Address([1; 20]);
        // Exhaust the phase.
        let out =
            call(&mut evm, &mut balances, addr, &compiled, "bump", &[AbiValue::Word(1)], caller, 0);
        assert!(out.success);
        // Give the contract a balance, then close.
        balances.insert(addr, 777);
        let deployer = Address([0xaa; 20]);
        let out = call(&mut evm, &mut balances, addr, &compiled, "closeContract", &[], caller, 0);
        assert!(out.success, "{out:?}");
        assert_eq!(balances[&addr], 0, "token linearity: balance must drain");
        assert_eq!(balances[&deployer], 777);
    }

    #[test]
    fn close_before_phases_end_reverts() {
        let program = Program::counter_example();
        let (mut evm, addr, compiled, mut balances) = deploy(&program, &[AbiValue::Word(5)]);
        let out = call(
            &mut evm,
            &mut balances,
            addr,
            &compiled,
            "closeContract",
            &[],
            Address([1; 20]),
            0,
        );
        assert!(!out.success);
    }

    #[test]
    fn unknown_selector_reverts() {
        let program = Program::counter_example();
        let (mut evm, addr, _, mut balances) = deploy(&program, &[AbiValue::Word(5)]);
        let out = evm
            .call(CallParams::new(Address::ZERO, addr).with_data(vec![1, 2, 3, 4]), &mut balances)
            .unwrap();
        assert!(!out.success);
    }

    #[test]
    fn unpaid_api_rejects_value() {
        let program = Program::counter_example();
        let (mut evm, addr, compiled, mut balances) = deploy(&program, &[AbiValue::Word(5)]);
        let caller = Address([1; 20]);
        balances.insert(caller, 1_000);
        let out = call(
            &mut evm,
            &mut balances,
            addr,
            &compiled,
            "bump",
            &[AbiValue::Word(1)],
            caller,
            100,
        );
        assert!(!out.success, "paying a non-payable api must revert");
    }

    #[test]
    fn pad_inflates_runtime_only() {
        let program = Program::counter_example();
        let a = compile_with_pad(&program, 0).unwrap();
        let b = compile_with_pad(&program, 1000).unwrap();
        assert_eq!(b.runtime_len, a.runtime_len + 1000);
    }
}
