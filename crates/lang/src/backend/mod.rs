//! Code generators: one contract source, one artifact per chain family.

pub mod avm;
pub mod evm;

use crate::ast::Ty;

/// A runtime argument value passed to constructors and API calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbiValue {
    /// A word (UInt / Address-as-word / Bool).
    Word(u128),
    /// An address.
    Address(pol_ledger::Address),
    /// A byte payload (padded to the declared capacity on the wire).
    Bytes(Vec<u8>),
}

impl AbiValue {
    /// Whether this value is acceptable for a parameter of type `ty`.
    pub fn matches(&self, ty: &Ty) -> bool {
        match (self, ty) {
            (AbiValue::Word(_), Ty::UInt | Ty::Bool) => true,
            (AbiValue::Address(_), Ty::Address) => true,
            (AbiValue::Bytes(b), Ty::Bytes(cap)) => b.len() <= *cap,
            _ => false,
        }
    }
}

/// The compiled forms of one program for every supported chain — the
/// `index.main.mjs` bundle Reach produces (§2.9.3).
#[derive(Debug, Clone)]
pub struct CompiledContract {
    /// EVM artifact (Ropsten / Goerli / Mumbai).
    pub evm: evm::CompiledEvm,
    /// AVM artifact (Algorand).
    pub avm: avm::CompiledAvm,
}

/// Compiles a program for every chain after checking and verifying it.
///
/// # Errors
///
/// [`crate::LangError::TypeErrors`] or
/// [`crate::LangError::VerificationFailed`] when the program is rejected
/// before code generation.
pub fn compile(program: &crate::ast::Program) -> Result<CompiledContract, crate::LangError> {
    let type_errors = crate::check::check(program);
    if !type_errors.is_empty() {
        return Err(crate::LangError::TypeErrors(type_errors));
    }
    let report = crate::verify::verify(program);
    if !report.ok() {
        return Err(crate::LangError::VerificationFailed(report.failures));
    }
    Ok(CompiledContract { evm: evm::compile(program)?, avm: avm::compile(program)? })
}
