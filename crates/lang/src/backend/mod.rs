//! Code generators: one contract source, one artifact per chain family,
//! with post-emission bytecode verification.
//!
//! [`compile`] runs the full pipeline: type checking, source-level
//! verification, the dataflow lints, code generation, and finally the
//! *bytecode-level* verifiers from [`pol_evm::verifier`] and
//! [`pol_avm::verifier`] — so a codegen bug that emits an unbalanced
//! stack, a bogus jump or a post-transfer state write is caught before
//! the artifact ever reaches a chain. The verified worst-case costs are
//! also cross-checked against the conservative straight-line bounds the
//! analysis reports, per API, on both targets.

pub mod avm;
pub mod evm;

use crate::ast::Ty;
use crate::diag::{Diagnostic, NodePath};

/// A runtime argument value passed to constructors and API calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbiValue {
    /// A word (UInt / Address-as-word / Bool).
    Word(u128),
    /// An address.
    Address(pol_ledger::Address),
    /// A byte payload (padded to the declared capacity on the wire).
    Bytes(Vec<u8>),
}

impl AbiValue {
    /// Whether this value is acceptable for a parameter of type `ty`.
    pub fn matches(&self, ty: &Ty) -> bool {
        match (self, ty) {
            (AbiValue::Word(_), Ty::UInt | Ty::Bool) => true,
            (AbiValue::Address(_), Ty::Address) => true,
            (AbiValue::Bytes(b), Ty::Bytes(cap)) => b.len() <= *cap,
            _ => false,
        }
    }
}

/// The compiled forms of one program for every supported chain — the
/// `index.main.mjs` bundle Reach produces (§2.9.3).
#[derive(Debug, Clone)]
pub struct CompiledContract {
    /// EVM artifact (Ropsten / Goerli / Mumbai).
    pub evm: evm::CompiledEvm,
    /// AVM artifact (Algorand).
    pub avm: avm::CompiledAvm,
    /// Warning-severity lint diagnostics (non-fatal; render with
    /// [`crate::pretty::render_diagnostics`]).
    pub warnings: Vec<Diagnostic>,
}

/// Compiles a program for every chain after checking, verifying and
/// linting it, then verifies the emitted bytecode itself.
///
/// # Errors
///
/// [`crate::LangError::TypeErrors`],
/// [`crate::LangError::VerificationFailed`] or
/// [`crate::LangError::LintErrors`] when the program is rejected before
/// code generation; [`crate::LangError::BytecodeRejected`] when an
/// emitted artifact fails post-emission verification or a cost
/// cross-check.
pub fn compile(program: &crate::ast::Program) -> Result<CompiledContract, crate::LangError> {
    let type_errors = crate::check::check(program);
    if !type_errors.is_empty() {
        return Err(crate::LangError::TypeErrors(type_errors));
    }
    let report = crate::verify::verify(program);
    if !report.ok() {
        return Err(crate::LangError::VerificationFailed(report.failures));
    }
    let (lint_errors, warnings): (Vec<_>, Vec<_>) =
        crate::lint::lint(program).into_iter().partition(|d| d.is_error());
    if !lint_errors.is_empty() {
        return Err(crate::LangError::LintErrors(lint_errors));
    }
    let compiled_evm = evm::compile(program)?;
    let compiled_avm = avm::compile(program)?;
    let rejections = verify_bytecode(program, &compiled_evm, &compiled_avm);
    if !rejections.is_empty() {
        return Err(crate::LangError::BytecodeRejected(rejections));
    }
    Ok(CompiledContract { evm: compiled_evm, avm: compiled_avm, warnings })
}

/// Runs the post-emission bytecode verifiers over every artifact and
/// cross-checks the verified worst-case costs against the conservative
/// straight-line bounds (B0301–B0303, X0401–X0402).
fn verify_bytecode(
    program: &crate::ast::Program,
    compiled_evm: &evm::CompiledEvm,
    compiled_avm: &avm::CompiledAvm,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // The phase-advance epilogue stores the phase counter after a
    // transfer's CALL; every other post-call SSTORE is a
    // checks-effects-interactions violation.
    let allowed = [evm::SLOT_PHASE];
    let max_payload =
        program.all_apis().map(|(_, api)| evm::params_width(api) as u64).max().unwrap_or(0);

    // Whole EVM images: the init code (constructor → deploy wrapper; the
    // runtime tail is unreachable data) and the runtime image itself.
    let image_cfg = pol_evm::verifier::VerifyConfig {
        allowed_post_call_sstore_keys: &allowed,
        payload_bytes: max_payload,
    };
    if let Err(e) = pol_evm::verifier::verify(&compiled_evm.init_code, &image_cfg) {
        diags.push(
            Diagnostic::error("B0301", format!("EVM init code rejected: {e}"))
                .at(program.spans.get(&NodePath::ContractName)),
        );
    }
    let runtime_start = compiled_evm.init_code.len() - compiled_evm.runtime_len;
    if let Err(e) = pol_evm::verifier::verify(&compiled_evm.init_code[runtime_start..], &image_cfg)
    {
        diags.push(
            Diagnostic::error("B0301", format!("EVM runtime image rejected: {e}"))
                .at(program.spans.get(&NodePath::ContractName)),
        );
    }

    // The whole AVM approval program.
    if let Err(e) = pol_avm::verifier::verify(&compiled_avm.program) {
        diags.push(
            Diagnostic::error("B0302", format!("AVM approval program rejected: {e}"))
                .at(program.spans.get(&NodePath::ContractName)),
        );
    }

    // Per-API fragments: verify each and cross-check the verified worst
    // path against the conservative straight-line bound the analysis
    // uses.
    for (phase_idx, phase) in program.phases.iter().enumerate() {
        for (api_idx, api) in phase.apis.iter().enumerate() {
            let at = program.spans.get(&NodePath::Api { phase: phase_idx, api: api_idx });
            let payload = evm::params_width(api) as u64;
            let cfg = pol_evm::verifier::VerifyConfig {
                allowed_post_call_sstore_keys: &allowed,
                payload_bytes: payload,
            };
            if let Ok(fragment) = evm::api_fragment(program, phase_idx, api) {
                match pol_evm::verifier::verify(&fragment, &cfg) {
                    Ok(report) => {
                        // Two-sided gate: the bytecode verifier's
                        // observed worst path must stay under the static
                        // certificate, which in turn must stay under the
                        // straight-line opcode sum. Either violation
                        // means a cost model drifted from the emitter.
                        let stat =
                            crate::gas::evm_fragment_bound(program, phase_idx, api_idx, payload);
                        let bound = evm_linear_bound(&fragment, payload);
                        if report.worst_case_gas > stat {
                            diags.push(
                                Diagnostic::error(
                                    "X0401",
                                    format!(
                                        "api {:?}: verified worst-case gas {} exceeds the \
                                         static certificate {stat} (bytecode side)",
                                        api.name, report.worst_case_gas
                                    ),
                                )
                                .at(at),
                            );
                        }
                        if stat > bound {
                            diags.push(
                                Diagnostic::error(
                                    "X0401",
                                    format!(
                                        "api {:?}: static certificate {stat} exceeds the \
                                         conservative bound {bound} (static side)",
                                        api.name
                                    ),
                                )
                                .at(at),
                            );
                        }
                    }
                    Err(e) => diags.push(
                        Diagnostic::error(
                            "B0301",
                            format!("api {:?}: EVM fragment rejected: {e}", api.name),
                        )
                        .at(at),
                    ),
                }
            }
            if let Ok(ops) = avm::api_fragment(program, phase_idx, api) {
                let fragment = pol_avm::program::AvmProgram::new(ops);
                match pol_avm::verifier::verify(&fragment) {
                    Ok(report) => {
                        if report.worst_case_cost > pol_avm::cost::CALL_BUDGET {
                            diags.push(
                                Diagnostic::error(
                                    "B0303",
                                    format!(
                                        "api {:?}: verified worst-case cost {} exceeds the \
                                         per-call budget {}",
                                        api.name,
                                        report.worst_case_cost,
                                        pol_avm::cost::CALL_BUDGET
                                    ),
                                )
                                .at(at),
                            );
                        }
                        // Two-sided gate, AVM flavour: verifier worst
                        // path <= static certificate <= linear opcode sum.
                        let stat = crate::gas::avm_fragment_bound(program, phase_idx, api_idx);
                        let bound = pol_avm::cost::program_cost(fragment.ops());
                        if report.worst_case_cost > stat {
                            diags.push(
                                Diagnostic::error(
                                    "X0402",
                                    format!(
                                        "api {:?}: verified worst-case cost {} exceeds the \
                                         static certificate {stat} (bytecode side)",
                                        api.name, report.worst_case_cost
                                    ),
                                )
                                .at(at),
                            );
                        }
                        if stat > bound {
                            diags.push(
                                Diagnostic::error(
                                    "X0402",
                                    format!(
                                        "api {:?}: static certificate {stat} exceeds the \
                                         conservative bound {bound} (static side)",
                                        api.name
                                    ),
                                )
                                .at(at),
                            );
                        }
                    }
                    Err(e) => diags.push(
                        Diagnostic::error(
                            "B0302",
                            format!("api {:?}: AVM fragment rejected: {e}", api.name),
                        )
                        .at(at),
                    ),
                }
            }
        }
    }
    diags
}

/// The conservative straight-line gas bound of a fragment: the linear
/// opcode sum under the same warm-state model as the analysis. On the
/// loop-free code this backend emits, every execution path is a
/// subsequence of the instruction stream, so the verified worst path can
/// never exceed this.
pub(crate) fn evm_linear_bound(code: &[u8], payload_bytes: u64) -> u64 {
    let mut total = 0u64;
    let mut pc = 0usize;
    while pc < code.len() {
        let byte = code[pc];
        pc += 1;
        let Some((op, variant)) = pol_evm::opcode::Op::decode(byte) else { continue };
        if op == pol_evm::opcode::Op::Push1 {
            pc += variant as usize + 1;
        }
        total += pol_evm::verifier::conservative_op_gas(op, payload_bytes);
    }
    total
}
