//! A CFG-based intermediate representation for API and constructor
//! bodies, plus the dataflow passes that run over it.
//!
//! The surface language has structured control flow only (`if`/`else`,
//! no loops), so every body lowers to a *directed acyclic* control-flow
//! graph whose blocks are created in topological order — each pass is a
//! single forward (or backward) sweep, no widening needed.
//!
//! Passes provided here:
//!
//! * **interval / constant propagation** — an abstract interpretation
//!   over `u64` intervals with guard refinement at `require` and branch
//!   edges; proves subtraction safety where the syntactic dominating-
//!   guard matcher of [`crate::verify`] gives up, folds constant
//!   conditions and discovers unreachable blocks;
//! * **reaching definitions** — which global assignments reach each
//!   block entry; powers def-use chains;
//! * **dead-store detection** — definitions whose value is never read
//!   (globals observable at normal exit count as read);
//! * **map lifetime** — the reachable `MapSet`/`MapDelete` sites per
//!   map, for the path-sensitive leaked-entry lint.

use crate::ast::{BinOp, Expr, GlobalInit, Program, Stmt};
use crate::dbm::{self, ZVar, Zone, ZoneStats};
use crate::diag::Owner;
use std::collections::{HashMap, HashSet};

// ---------------------------------------------------------------- IR --

/// A non-branching instruction, tagged with its source statement path
/// (see [`crate::diag::NodePath::Stmt`]).
#[derive(Debug, Clone)]
pub enum Inst {
    /// `name = value`.
    Set {
        /// Global name.
        name: String,
        /// Assigned value.
        value: Expr,
        /// Source statement path.
        path: Vec<u32>,
    },
    /// `map[key] = commit(value…)`.
    MapPut {
        /// Map name.
        map: String,
        /// Key expression.
        key: Expr,
        /// Value parts.
        value: Vec<Expr>,
        /// Source statement path.
        path: Vec<u32>,
    },
    /// `delete map[key]`.
    MapDel {
        /// Map name.
        map: String,
        /// Key expression.
        key: Expr,
        /// Source statement path.
        path: Vec<u32>,
    },
    /// `transfer(to, amount)`.
    Transfer {
        /// Recipient.
        to: Expr,
        /// Amount.
        amount: Expr,
        /// Source statement path.
        path: Vec<u32>,
    },
    /// `log(parts…)`.
    Emit {
        /// Logged parts.
        parts: Vec<Expr>,
        /// Source statement path.
        path: Vec<u32>,
    },
}

impl Inst {
    /// The source statement path of the instruction.
    pub fn path(&self) -> &[u32] {
        match self {
            Inst::Set { path, .. }
            | Inst::MapPut { path, .. }
            | Inst::MapDel { path, .. }
            | Inst::Transfer { path, .. }
            | Inst::Emit { path, .. } => path,
        }
    }

    /// All expressions the instruction evaluates.
    fn exprs(&self) -> Vec<&Expr> {
        match self {
            Inst::Set { value, .. } => vec![value],
            Inst::MapPut { key, value, .. } => {
                let mut v = vec![key];
                v.extend(value.iter());
                v
            }
            Inst::MapDel { key, .. } => vec![key],
            Inst::Transfer { to, amount, .. } => vec![to, amount],
            Inst::Emit { parts, .. } => parts.iter().collect(),
        }
    }
}

/// Where a `Require` terminator came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Src {
    /// A source `require(…)` statement at this path.
    Stmt(Vec<u32>),
    /// The phase's `while` condition, checked at API entry.
    PhaseCond,
}

/// Block terminators.
#[derive(Debug, Clone)]
pub enum Term {
    /// Unconditional fallthrough.
    Goto(usize),
    /// Two-way branch on a condition (an `if` statement).
    Branch {
        /// Condition.
        cond: Expr,
        /// Block when true.
        then_b: usize,
        /// Block when false.
        else_b: usize,
        /// Source statement path of the `if`.
        path: Vec<u32>,
    },
    /// Revert unless the condition holds, else continue.
    Require {
        /// Condition.
        cond: Expr,
        /// Successor when the condition holds.
        next: usize,
        /// Provenance.
        src: Src,
    },
    /// Normal exit of the body.
    Return,
}

/// One basic block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Straight-line instructions.
    pub insts: Vec<Inst>,
    /// Terminator.
    pub term: Term,
}

/// A lowered body. Block 0 is the entry; successor edges always point
/// at higher block indices (the builder emits blocks topologically).
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Blocks in topological order.
    pub blocks: Vec<Block>,
    /// The body this CFG was lowered from.
    pub owner: Owner,
}

impl Cfg {
    /// Successor block indices of a block.
    pub fn successors(&self, b: usize) -> Vec<usize> {
        match &self.blocks[b].term {
            Term::Goto(n) => vec![*n],
            Term::Branch { then_b, else_b, .. } => vec![*then_b, *else_b],
            Term::Require { next, .. } => vec![*next],
            Term::Return => vec![],
        }
    }

    /// Predecessor lists for every block.
    pub fn predecessors(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in 0..self.blocks.len() {
            for s in self.successors(b) {
                preds[s].push(b);
            }
        }
        preds
    }
}

struct Builder {
    blocks: Vec<Block>,
}

impl Builder {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block { insts: Vec::new(), term: Term::Return });
        self.blocks.len() - 1
    }

    /// Lowers a statement list into `cur`, returning the block that
    /// control reaches afterwards.
    fn lower_stmts(&mut self, mut cur: usize, stmts: &[Stmt], prefix: &mut Vec<u32>) -> usize {
        for (i, stmt) in stmts.iter().enumerate() {
            prefix.push(i as u32);
            match stmt {
                Stmt::Require(cond) => {
                    let next = self.new_block();
                    self.blocks[cur].term =
                        Term::Require { cond: cond.clone(), next, src: Src::Stmt(prefix.clone()) };
                    cur = next;
                }
                Stmt::If { cond, then, otherwise } => {
                    let then_b = self.new_block();
                    let else_b = self.new_block();
                    self.blocks[cur].term =
                        Term::Branch { cond: cond.clone(), then_b, else_b, path: prefix.clone() };
                    prefix.push(0);
                    let then_end = self.lower_stmts(then_b, then, prefix);
                    prefix.pop();
                    prefix.push(1);
                    let else_end = self.lower_stmts(else_b, otherwise, prefix);
                    prefix.pop();
                    let join = self.new_block();
                    self.blocks[then_end].term = Term::Goto(join);
                    self.blocks[else_end].term = Term::Goto(join);
                    cur = join;
                }
                Stmt::GlobalSet { name, value } => self.blocks[cur].insts.push(Inst::Set {
                    name: name.clone(),
                    value: value.clone(),
                    path: prefix.clone(),
                }),
                Stmt::MapSet { map, key, value } => self.blocks[cur].insts.push(Inst::MapPut {
                    map: map.clone(),
                    key: key.clone(),
                    value: value.clone(),
                    path: prefix.clone(),
                }),
                Stmt::MapDelete { map, key } => self.blocks[cur].insts.push(Inst::MapDel {
                    map: map.clone(),
                    key: key.clone(),
                    path: prefix.clone(),
                }),
                Stmt::Transfer { to, amount } => self.blocks[cur].insts.push(Inst::Transfer {
                    to: to.clone(),
                    amount: amount.clone(),
                    path: prefix.clone(),
                }),
                Stmt::Log(parts) => self.blocks[cur]
                    .insts
                    .push(Inst::Emit { parts: parts.clone(), path: prefix.clone() }),
            }
            prefix.pop();
        }
        cur
    }
}

/// Lowers one API body (the phase's `while` condition becomes an entry
/// `Require`, as the generated code checks it before the body runs).
pub fn lower_api(program: &Program, phase_idx: usize, api_idx: usize) -> Cfg {
    let phase = &program.phases[phase_idx];
    let api = &phase.apis[api_idx];
    let mut b = Builder { blocks: Vec::new() };
    let entry = b.new_block();
    let body_start = b.new_block();
    b.blocks[entry].term =
        Term::Require { cond: phase.while_cond.clone(), next: body_start, src: Src::PhaseCond };
    b.lower_stmts(body_start, &api.body, &mut Vec::new());
    Cfg { blocks: b.blocks, owner: Owner::Api { phase: phase_idx as u32, api: api_idx as u32 } }
}

/// Lowers the constructor body.
pub fn lower_constructor(program: &Program) -> Cfg {
    let mut b = Builder { blocks: Vec::new() };
    let entry = b.new_block();
    b.lower_stmts(entry, &program.constructor, &mut Vec::new());
    Cfg { blocks: b.blocks, owner: Owner::Constructor }
}

// --------------------------------------------------- interval domain --

/// A `u64` interval `[lo, hi]`; booleans live in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Itv {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

impl Itv {
    /// The full range (no information).
    pub const TOP: Itv = Itv { lo: 0, hi: u64::MAX };
    /// The boolean range.
    pub const BOOL: Itv = Itv { lo: 0, hi: 1 };

    /// A single value.
    pub fn exact(v: u64) -> Itv {
        Itv { lo: v, hi: v }
    }

    /// `Some(v)` when the interval is the single value `v`.
    pub fn as_const(&self) -> Option<u64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    fn join(a: Itv, b: Itv) -> Itv {
        Itv { lo: a.lo.min(b.lo), hi: a.hi.max(b.hi) }
    }

    /// Intersection; `None` when empty (an infeasible fact).
    fn meet(a: Itv, b: Itv) -> Option<Itv> {
        let lo = a.lo.max(b.lo);
        let hi = a.hi.min(b.hi);
        (lo <= hi).then_some(Itv { lo, hi })
    }
}

/// An abstract variable tracked by the interval analysis.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Var {
    Global(String),
    Param(String),
    Balance,
}

/// An abstract store: variables not present map to [`Itv::TOP`].
#[derive(Debug, Clone, Default)]
pub struct Env {
    vars: HashMap<Var, Itv>,
}

impl Env {
    fn get(&self, v: &Var) -> Itv {
        self.vars.get(v).copied().unwrap_or(Itv::TOP)
    }

    fn set(&mut self, v: Var, itv: Itv) {
        if itv == Itv::TOP {
            self.vars.remove(&v);
        } else {
            self.vars.insert(v, itv);
        }
    }

    /// Evaluates an expression to its interval at this store — the
    /// read-only view the access-summary pass uses to narrow map-key
    /// expressions (overflow tracking is the analysis's concern, not
    /// the caller's).
    pub fn interval_of(&self, expr: &Expr) -> Itv {
        let mut overflow = false;
        self.eval(expr, &mut overflow)
    }

    /// Pointwise join; variables known on only one side become TOP.
    fn join(a: &Env, b: &Env) -> Env {
        let mut out = Env::default();
        for (k, va) in &a.vars {
            if let Some(vb) = b.vars.get(k) {
                out.set(k.clone(), Itv::join(*va, *vb));
            }
        }
        out
    }

    /// Evaluates an expression to an interval. Sets `overflow` when the
    /// arithmetic *must* overflow `u64` (lower bounds already overflow).
    fn eval(&self, expr: &Expr, overflow: &mut bool) -> Itv {
        match expr {
            Expr::UInt(v) => Itv::exact(*v),
            Expr::Param(p) => self.get(&Var::Param(p.clone())),
            Expr::Global(g) => self.get(&Var::Global(g.clone())),
            Expr::Balance => self.get(&Var::Balance),
            Expr::Caller | Expr::MapGet { .. } | Expr::Hash(_) => Itv::TOP,
            Expr::MapContains { .. } => Itv::BOOL,
            Expr::Not(inner) => {
                let v = self.eval(inner, overflow);
                match v.as_const() {
                    Some(0) => Itv::exact(1),
                    Some(_) => Itv::exact(0),
                    None => Itv::BOOL,
                }
            }
            Expr::Bin(op, lhs, rhs) => {
                let a = self.eval(lhs, overflow);
                let b = self.eval(rhs, overflow);
                match op {
                    BinOp::Add => {
                        if a.lo.checked_add(b.lo).is_none() {
                            *overflow = true;
                        }
                        // If the high end can wrap, the runtime result
                        // may be anything (EVM arithmetic is modular),
                        // so the low bound is unsound too: widen to TOP.
                        match (a.lo.checked_add(b.lo), a.hi.checked_add(b.hi)) {
                            (Some(lo), Some(hi)) => Itv { lo, hi },
                            _ => Itv::TOP,
                        }
                    }
                    BinOp::Mul => {
                        if a.lo.checked_mul(b.lo).is_none() {
                            *overflow = true;
                        }
                        match (a.lo.checked_mul(b.lo), a.hi.checked_mul(b.hi)) {
                            (Some(lo), Some(hi)) => Itv { lo, hi },
                            _ => Itv::TOP,
                        }
                    }
                    BinOp::Sub => {
                        if a.hi.checked_sub(b.lo).is_none() {
                            *overflow = true;
                        }
                        // Like Add/Mul: if the low end can wrap, the EVM
                        // result may be anything, so a saturated bound
                        // would be unsound — subtractions in guard
                        // positions are never V0102-checked, and a guard
                        // like `require(a <= p - q)` must not launder a
                        // wrapping `p - q` into a tight bound on `a`.
                        match (a.lo.checked_sub(b.hi), a.hi.checked_sub(b.lo)) {
                            (Some(lo), Some(hi)) => Itv { lo, hi },
                            _ => Itv::TOP,
                        }
                    }
                    BinOp::Div => match a.hi.checked_div(b.lo) {
                        // Division by zero yields 0 on both VMs' checked
                        // paths; stay conservative.
                        None => Itv { lo: 0, hi: a.hi },
                        Some(hi) => Itv { lo: a.lo / b.hi, hi },
                    },
                    BinOp::Lt => Itv::cmp_result(a.hi < b.lo, a.lo >= b.hi),
                    BinOp::Gt => Itv::cmp_result(a.lo > b.hi, a.hi <= b.lo),
                    BinOp::Le => Itv::cmp_result(a.hi <= b.lo, a.lo > b.hi),
                    BinOp::Ge => Itv::cmp_result(a.lo >= b.hi, a.hi < b.lo),
                    BinOp::Eq => {
                        if uint_comparable(lhs) && uint_comparable(rhs) {
                            match (a.as_const(), b.as_const()) {
                                (Some(x), Some(y)) if x == y => Itv::exact(1),
                                _ if a.hi < b.lo || b.hi < a.lo => Itv::exact(0),
                                _ => Itv::BOOL,
                            }
                        } else {
                            Itv::BOOL
                        }
                    }
                    BinOp::Ne => {
                        if uint_comparable(lhs) && uint_comparable(rhs) {
                            match (a.as_const(), b.as_const()) {
                                (Some(x), Some(y)) if x == y => Itv::exact(0),
                                _ if a.hi < b.lo || b.hi < a.lo => Itv::exact(1),
                                _ => Itv::BOOL,
                            }
                        } else {
                            Itv::BOOL
                        }
                    }
                    BinOp::And => {
                        let (ca, cb) = (a.as_const(), b.as_const());
                        if ca == Some(0) || cb == Some(0) {
                            Itv::exact(0)
                        } else if ca.is_some_and(|v| v != 0) && cb.is_some_and(|v| v != 0) {
                            Itv::exact(1)
                        } else {
                            Itv::BOOL
                        }
                    }
                    BinOp::Or => {
                        let (ca, cb) = (a.as_const(), b.as_const());
                        if ca.is_some_and(|v| v != 0) || cb.is_some_and(|v| v != 0) {
                            Itv::exact(1)
                        } else if ca == Some(0) && cb == Some(0) {
                            Itv::exact(0)
                        } else {
                            Itv::BOOL
                        }
                    }
                }
            }
        }
    }
}

impl Itv {
    fn cmp_result(definitely: bool, definitely_not: bool) -> Itv {
        if definitely {
            Itv::exact(1)
        } else if definitely_not {
            Itv::exact(0)
        } else {
            Itv::BOOL
        }
    }
}

/// Whether interval comparison of this expression is meaningful (UInt
/// arithmetic, not an opaque address/byte value).
fn uint_comparable(expr: &Expr) -> bool {
    !matches!(expr, Expr::Caller | Expr::MapGet { .. } | Expr::Hash(_))
}

fn as_var(expr: &Expr) -> Option<Var> {
    match expr {
        Expr::Param(p) => Some(Var::Param(p.clone())),
        Expr::Global(g) => Some(Var::Global(g.clone())),
        Expr::Balance => Some(Var::Balance),
        _ => None,
    }
}

/// Refines `env` under the assumption `cond == truth`. Returns `false`
/// when the assumption is infeasible (the refined edge is dead).
fn refine(env: &mut Env, cond: &Expr, truth: bool) -> bool {
    let mut of = false;
    if let Some(c) = env.eval(cond, &mut of).as_const() {
        if (c != 0) != truth {
            return false;
        }
    }
    match cond {
        Expr::Not(inner) => refine(env, inner, !truth),
        Expr::Bin(BinOp::And, lhs, rhs) if truth => {
            refine(env, lhs, true) && refine(env, rhs, true)
        }
        Expr::Bin(BinOp::Or, lhs, rhs) if !truth => {
            refine(env, lhs, false) && refine(env, rhs, false)
        }
        Expr::Bin(op, lhs, rhs)
            if matches!(
                op,
                BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne
            ) =>
        {
            // Constrain a variable on either side against the other
            // side's interval.
            let mut feasible = true;
            if let Some(v) = as_var(lhs) {
                let bound = env.eval(rhs, &mut of);
                feasible &= constrain(env, &v, *op, bound, truth);
            }
            if feasible {
                if let Some(v) = as_var(rhs) {
                    let bound = env.eval(lhs, &mut of);
                    feasible &= constrain(env, &v, mirror(*op), bound, truth);
                }
            }
            feasible
        }
        _ => true,
    }
}

/// The comparison as seen from the right operand (`a < b` ⇔ `b > a`).
fn mirror(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Gt => BinOp::Lt,
        BinOp::Le => BinOp::Ge,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Applies `v OP bound == truth` to the variable's interval. Returns
/// `false` when the resulting interval is empty.
fn constrain(env: &mut Env, v: &Var, op: BinOp, bound: Itv, truth: bool) -> bool {
    let cur = env.get(v);
    // Normalise to the asserted relation.
    let op = if truth {
        op
    } else {
        match op {
            BinOp::Lt => BinOp::Ge,
            BinOp::Ge => BinOp::Lt,
            BinOp::Gt => BinOp::Le,
            BinOp::Le => BinOp::Gt,
            BinOp::Eq => BinOp::Ne,
            BinOp::Ne => BinOp::Eq,
            other => other,
        }
    };
    let refined = match op {
        // v < bound ⇒ v ≤ bound.hi - 1.
        BinOp::Lt => match bound.hi.checked_sub(1) {
            Some(h) => Itv::meet(cur, Itv { lo: 0, hi: h }),
            None => None,
        },
        BinOp::Le => Itv::meet(cur, Itv { lo: 0, hi: bound.hi }),
        // v > bound ⇒ v ≥ bound.lo + 1.
        BinOp::Gt => match bound.lo.checked_add(1) {
            Some(l) => Itv::meet(cur, Itv { lo: l, hi: u64::MAX }),
            None => None,
        },
        BinOp::Ge => Itv::meet(cur, Itv { lo: bound.lo, hi: u64::MAX }),
        BinOp::Eq => Itv::meet(cur, bound),
        BinOp::Ne => match (cur.as_const(), bound.as_const()) {
            (Some(a), Some(b)) if a == b => None,
            _ => Some(cur),
        },
        _ => Some(cur),
    };
    match refined {
        Some(itv) => {
            env.set(v.clone(), itv);
            true
        }
        None => false,
    }
}

// ------------------------------------------------------ body analysis --

/// A constant-folded condition discovered by the flow analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstCond {
    /// Where the condition came from.
    pub src: Src,
    /// Its constant truth value.
    pub value: bool,
}

/// How a subtraction theorem was (or was not) discharged by the flow
/// analyses. See [`BodyAnalysis::sub_safety`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubProof {
    /// The non-relational interval domain proved `minuend ≥ subtrahend`.
    Interval,
    /// The interval domain gave up but the relational zone domain
    /// ([`crate::dbm`]) entails the bound from the path conditions.
    Relational,
    /// Neither domain can prove the subtraction safe.
    Unproven,
}

/// The result of running all forward passes over one body.
#[derive(Debug)]
pub struct BodyAnalysis {
    /// The lowered CFG.
    pub cfg: Cfg,
    /// Entry env per block; `None` = unreachable.
    pub envs: Vec<Option<Env>>,
    /// Abstract store immediately before each instruction, by path.
    stmt_envs: HashMap<Vec<u32>, Env>,
    /// Zone immediately before each instruction, by path (empty when
    /// the relational pass is disabled).
    stmt_zones: HashMap<Vec<u32>, Zone>,
    /// Conditions that folded to a constant on every reachable path.
    pub const_conds: Vec<ConstCond>,
    /// Instruction paths whose arithmetic must overflow `u64`.
    pub definite_overflows: Vec<Vec<u32>>,
    /// `Require` sites the interval domain considers feasible but whose
    /// accumulated path conditions the zone solver proves
    /// unsatisfiable — dead `require` chains (lint L0006).
    pub unsat_requires: Vec<Src>,
    /// Aggregate solver counters for this body.
    pub zone_stats: ZoneStats,
}

/// Runs the interval + relational analyses over one API body.
pub fn analyze_api(program: &Program, phase_idx: usize, api_idx: usize) -> BodyAnalysis {
    analyze_api_with(program, phase_idx, api_idx, true)
}

/// [`analyze_api`] with the relational zone pass toggleable.
pub fn analyze_api_with(
    program: &Program,
    phase_idx: usize,
    api_idx: usize,
    relational: bool,
) -> BodyAnalysis {
    let cfg = lower_api(program, phase_idx, api_idx);
    run_flow(cfg, entry_env_api(program), relational.then(Zone::new))
}

/// Runs the interval + relational analyses over the constructor body.
pub fn analyze_constructor(program: &Program) -> BodyAnalysis {
    analyze_constructor_with(program, true)
}

/// [`analyze_constructor`] with the relational zone pass toggleable.
pub fn analyze_constructor_with(program: &Program, relational: bool) -> BodyAnalysis {
    let cfg = lower_constructor(program);
    let zone = relational.then(|| {
        let mut z = Zone::new();
        let mut stats = ZoneStats::default();
        for g in &program.globals {
            if let GlobalInit::Const(v) = g.init {
                z.assign_bounds(&ZVar::Global(g.name.clone()), v, v, &mut stats);
            }
        }
        z
    });
    run_flow(cfg, entry_env_constructor(program), zone)
}

/// API entry: globals hold arbitrary values (any number of calls may
/// have preceded this one), parameters are adversarial.
fn entry_env_api(_program: &Program) -> Env {
    Env::default()
}

/// Constructor entry: constant-initialised globals hold their exact
/// value; field-initialised ones are arbitrary.
fn entry_env_constructor(program: &Program) -> Env {
    let mut env = Env::default();
    for g in &program.globals {
        if let GlobalInit::Const(v) = g.init {
            env.set(Var::Global(g.name.clone()), Itv::exact(v));
        }
    }
    env
}

/// Merges an incoming zone into a successor's entry zone.
fn feed_zone(zones: &mut [Option<Zone>], succ: usize, incoming: Zone, stats: &mut ZoneStats) {
    zones[succ] = Some(match zones[succ].take() {
        Some(existing) => Zone::join(&existing, &incoming, stats),
        None => incoming,
    });
}

/// Transfers `name := value` over the zone. Assignments of the shape
/// `src ± k` keep their relational content when the zone proves the
/// arithmetic wrap-free; everything else degrades to the interval
/// bounds of the assigned value (which is still sound and lets later
/// relational queries chain with interval facts).
fn zone_assign(zone: &mut Zone, name: &str, value: &Expr, itv: Itv, stats: &mut ZoneStats) {
    let dst = ZVar::Global(name.to_string());
    match dbm::term(value) {
        Some((Some(src), k)) if dbm::term_wrap_free(zone, &(Some(src.clone()), k)) => {
            if src == dst {
                zone.shift(&dst, k);
            } else {
                zone.assign_var(&dst, &src, k, stats);
            }
        }
        _ => zone.assign_bounds(&dst, itv.lo, itv.hi, stats),
    }
}

fn run_flow(cfg: Cfg, entry: Env, entry_zone: Option<Zone>) -> BodyAnalysis {
    let n = cfg.blocks.len();
    let mut envs: Vec<Option<Env>> = vec![None; n];
    envs[0] = Some(entry);
    let mut zones: Vec<Option<Zone>> = vec![None; n];
    zones[0] = entry_zone;
    let mut stmt_envs = HashMap::new();
    let mut stmt_zones = HashMap::new();
    let mut const_conds = Vec::new();
    let mut definite_overflows = Vec::new();
    let mut unsat_requires = Vec::new();
    let mut stats = ZoneStats::default();

    // Blocks are emitted topologically, so one in-order sweep reaches a
    // fixpoint on this DAG. The zone rides along with the interval env
    // as a *pure refinement*: reachability (which edges feed) stays
    // interval-driven, so enabling the zone can only discharge more
    // theorems, never change which lints fire (monotone precision).
    for b in 0..n {
        let Some(mut env) = envs[b].clone() else { continue };
        let mut zone = zones[b].clone();
        for inst in &cfg.blocks[b].insts {
            stmt_envs.insert(inst.path().to_vec(), env.clone());
            if let Some(z) = &zone {
                stmt_zones.insert(inst.path().to_vec(), z.clone());
            }
            let mut overflow = false;
            for e in inst.exprs() {
                let _ = env.eval(e, &mut overflow);
            }
            if overflow {
                definite_overflows.push(inst.path().to_vec());
            }
            match inst {
                Inst::Set { name, value, .. } => {
                    let mut of = false;
                    let itv = env.eval(value, &mut of);
                    if let Some(z) = zone.as_mut() {
                        zone_assign(z, name, value, itv, &mut stats);
                    }
                    env.set(Var::Global(name.clone()), itv);
                }
                Inst::Transfer { .. } => {
                    // The balance shrinks by a dynamic amount.
                    env.set(Var::Balance, Itv::TOP);
                    if let Some(z) = zone.as_mut() {
                        z.forget(&ZVar::Balance);
                    }
                }
                _ => {}
            }
        }
        let feed = |envs: &mut Vec<Option<Env>>, succ: usize, incoming: Env| {
            envs[succ] = Some(match envs[succ].take() {
                Some(existing) => Env::join(&existing, &incoming),
                None => incoming,
            });
        };
        match cfg.blocks[b].term.clone() {
            Term::Goto(next) => {
                feed(&mut envs, next, env);
                if let Some(z) = zone {
                    feed_zone(&mut zones, next, z, &mut stats);
                }
            }
            Term::Require { cond, next, src } => {
                let mut of = false;
                if let Some(c) = env.eval(&cond, &mut of).as_const() {
                    const_conds.push(ConstCond { src: src.clone(), value: c != 0 });
                }
                let mut pass = env;
                let interval_ok = refine(&mut pass, &cond, true);
                let mut zpass = zone;
                if let Some(z) = zpass.as_mut() {
                    let zone_ok = dbm::assume(z, &cond, true, &mut stats);
                    if interval_ok && !zone_ok {
                        unsat_requires.push(src.clone());
                    }
                }
                if interval_ok {
                    feed(&mut envs, next, pass);
                    // A zone-unsat edge is fed anyway (sound: an unsat
                    // zone entails everything) so reachability and every
                    // interval-driven lint stay byte-identical with the
                    // relational pass on or off.
                    if let Some(z) = zpass {
                        feed_zone(&mut zones, next, z, &mut stats);
                    }
                }
            }
            Term::Branch { cond, then_b, else_b, path } => {
                let mut of = false;
                if let Some(c) = env.eval(&cond, &mut of).as_const() {
                    const_conds.push(ConstCond { src: Src::Stmt(path.clone()), value: c != 0 });
                }
                let mut t_env = env.clone();
                if refine(&mut t_env, &cond, true) {
                    feed(&mut envs, then_b, t_env);
                    if let Some(z) = &zone {
                        let mut zt = z.clone();
                        dbm::assume(&mut zt, &cond, true, &mut stats);
                        feed_zone(&mut zones, then_b, zt, &mut stats);
                    }
                }
                let mut f_env = env;
                if refine(&mut f_env, &cond, false) {
                    feed(&mut envs, else_b, f_env);
                    if let Some(z) = zone {
                        let mut zf = z.clone();
                        dbm::assume(&mut zf, &cond, false, &mut stats);
                        feed_zone(&mut zones, else_b, zf, &mut stats);
                    }
                }
            }
            Term::Return => {}
        }
    }

    BodyAnalysis {
        cfg,
        envs,
        stmt_envs,
        stmt_zones,
        const_conds,
        definite_overflows,
        unsat_requires,
        zone_stats: stats,
    }
}

/// A global-definition site found by the reaching-definitions pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Def {
    /// Defined global.
    pub name: String,
    /// Block index.
    pub block: usize,
    /// Instruction index within the block.
    pub inst: usize,
    /// Source statement path.
    pub path: Vec<u32>,
}

impl BodyAnalysis {
    /// Whether block `b` is reachable from the entry.
    pub fn reachable(&self, b: usize) -> bool {
        self.envs[b].is_some()
    }

    /// Whether the interval analysis proves `minuend - subtrahend`
    /// cannot underflow at the statement with this path. This is the
    /// fallback consulted when the syntactic guard matcher gives up.
    pub fn proves_sub_safe(&self, path: &[u32], minuend: &Expr, subtrahend: &Expr) -> bool {
        let Some(env) = self.stmt_envs.get(path) else { return false };
        let mut of = false;
        let m = env.eval(minuend, &mut of);
        let s = env.eval(subtrahend, &mut of);
        m.lo >= s.hi
    }

    /// How (if at all) `minuend - subtrahend` at this statement is
    /// proven underflow-free: intervals first, then the relational zone
    /// domain over the accumulated path conditions.
    pub fn sub_safety(&self, path: &[u32], minuend: &Expr, subtrahend: &Expr) -> SubProof {
        if self.proves_sub_safe(path, minuend, subtrahend) {
            return SubProof::Interval;
        }
        if let Some(zone) = self.stmt_zones.get(path) {
            if dbm::entails_ge(zone, minuend, subtrahend) {
                return SubProof::Relational;
            }
        }
        SubProof::Unproven
    }

    /// The zone at a statement, for callers layering extra relational
    /// queries (e.g. the cross-contract conservation check).
    pub fn zone_at(&self, path: &[u32]) -> Option<&Zone> {
        self.stmt_zones.get(path)
    }

    /// The abstract store observed just before the statement at `path`
    /// (`None` when the statement is unreachable).
    pub fn env_at(&self, path: &[u32]) -> Option<&Env> {
        self.stmt_envs.get(path)
    }

    /// The abstract store at a block's terminator: the block-entry
    /// store with the block's assignments replayed — the same transfer
    /// function `run_flow` applies, minus the relational zone. Lets the
    /// access-summary pass narrow map keys read inside `if`/`require`
    /// conditions soundly.
    pub fn term_env(&self, b: usize) -> Option<Env> {
        let mut env = self.envs.get(b)?.clone()?;
        for inst in &self.cfg.blocks[b].insts {
            match inst {
                Inst::Set { name, value, .. } => {
                    let itv = env.interval_of(value);
                    env.set(Var::Global(name.clone()), itv);
                }
                Inst::Transfer { .. } => env.set(Var::Balance, Itv::TOP),
                _ => {}
            }
        }
        Some(env)
    }

    /// Source paths of statements that can never execute, one per
    /// unreachable region (the first instruction of each unreachable
    /// block all of whose predecessors are reachable-or-entry).
    pub fn unreachable_stmts(&self) -> Vec<Vec<u32>> {
        let preds = self.cfg.predecessors();
        let mut out = Vec::new();
        for (b, block_preds) in preds.iter().enumerate() {
            if self.reachable(b) || self.cfg.blocks[b].insts.is_empty() {
                continue;
            }
            // Frontier blocks only: a reachable predecessor exists, so
            // this is where the dead region starts.
            if block_preds.iter().any(|p| self.reachable(*p)) {
                out.push(self.cfg.blocks[b].insts[0].path().to_vec());
            }
        }
        out
    }

    /// Reaching definitions: all global-definition sites, plus for each
    /// block the set of definition indices reaching its entry.
    pub fn reaching_defs(&self) -> (Vec<Def>, Vec<HashSet<usize>>) {
        let n = self.cfg.blocks.len();
        let mut defs = Vec::new();
        for (b, block) in self.cfg.blocks.iter().enumerate() {
            for (i, inst) in block.insts.iter().enumerate() {
                if let Inst::Set { name, path, .. } = inst {
                    defs.push(Def { name: name.clone(), block: b, inst: i, path: path.clone() });
                }
            }
        }
        let gen_kill = |b: usize, input: &HashSet<usize>| -> HashSet<usize> {
            let mut out = input.clone();
            for (i, inst) in self.cfg.blocks[b].insts.iter().enumerate() {
                if let Inst::Set { name, .. } = inst {
                    let d = defs
                        .iter()
                        .position(|def| def.block == b && def.inst == i)
                        .expect("def indexed");
                    // A definition kills every other definition of the
                    // same name and generates itself.
                    out.retain(|o| defs[*o].name != *name);
                    out.insert(d);
                }
            }
            out
        };
        let mut ins: Vec<HashSet<usize>> = vec![HashSet::new(); n];
        // One topological sweep suffices on the DAG.
        let mut outs: Vec<HashSet<usize>> = vec![HashSet::new(); n];
        for b in 0..n {
            if !self.reachable(b) {
                continue;
            }
            outs[b] = gen_kill(b, &ins[b]);
            for s in self.cfg.successors(b) {
                ins[s] = ins[s].union(&outs[b]).copied().collect();
            }
        }
        (defs, ins)
    }

    /// Dead stores: reachable global assignments whose value no later
    /// read can observe. Globals live at a normal `Return` count as
    /// read (they are observable through views and later calls), so
    /// only assignments overwritten before any use are flagged.
    pub fn dead_stores(&self) -> Vec<Def> {
        let (defs, ins) = self.reaching_defs();
        if defs.is_empty() {
            return Vec::new();
        }
        let mut used: Vec<bool> = vec![false; defs.len()];
        for (b, block_ins) in ins.iter().enumerate() {
            if !self.reachable(b) {
                continue;
            }
            // current[name] = def ids currently reaching this point.
            let mut current: HashMap<&str, Vec<usize>> = HashMap::new();
            for &d in block_ins {
                current.entry(defs[d].name.as_str()).or_default().push(d);
            }
            let mark_reads =
                |current: &HashMap<&str, Vec<usize>>, used: &mut Vec<bool>, exprs: Vec<&Expr>| {
                    let mut reads = Vec::new();
                    for e in exprs {
                        expr_global_reads(e, &mut reads);
                    }
                    for name in reads {
                        if let Some(ds) = current.get(name.as_str()) {
                            for &d in ds {
                                used[d] = true;
                            }
                        }
                    }
                };
            for (i, inst) in self.cfg.blocks[b].insts.iter().enumerate() {
                mark_reads(&current, &mut used, inst.exprs());
                if let Inst::Set { name, .. } = inst {
                    let d = defs
                        .iter()
                        .position(|def| def.block == b && def.inst == i)
                        .expect("def indexed");
                    current.insert(name.as_str(), vec![d]);
                }
            }
            match &self.cfg.blocks[b].term {
                Term::Branch { cond, .. } | Term::Require { cond, .. } => {
                    mark_reads(&current, &mut used, vec![cond]);
                }
                Term::Return => {
                    // Every global is observable after a normal exit.
                    for ds in current.values() {
                        for &d in ds {
                            used[d] = true;
                        }
                    }
                }
                Term::Goto(_) => {}
            }
        }
        defs.iter()
            .enumerate()
            .filter(|(d, def)| !used[*d] && self.reachable(def.block))
            .map(|(_, def)| def.clone())
            .collect()
    }

    /// Reachable map writes and deletes: `(map name, statement path)`.
    pub fn map_ops(&self) -> (Vec<MapSite>, Vec<MapSite>) {
        let mut puts = Vec::new();
        let mut dels = Vec::new();
        for (b, block) in self.cfg.blocks.iter().enumerate() {
            if !self.reachable(b) {
                continue;
            }
            for inst in &block.insts {
                match inst {
                    Inst::MapPut { map, path, .. } => puts.push((map.clone(), path.clone())),
                    Inst::MapDel { map, path, .. } => dels.push((map.clone(), path.clone())),
                    _ => {}
                }
            }
        }
        (puts, dels)
    }
}

/// A reachable map operation site: `(map name, statement path)`.
pub type MapSite = (String, Vec<u32>);

/// Collects global names read by an expression.
fn expr_global_reads(expr: &Expr, out: &mut Vec<String>) {
    match expr {
        Expr::Global(g) => out.push(g.clone()),
        Expr::Bin(_, lhs, rhs) => {
            expr_global_reads(lhs, out);
            expr_global_reads(rhs, out);
        }
        Expr::Not(inner) => expr_global_reads(inner, out),
        Expr::Hash(parts) => {
            for p in parts {
                expr_global_reads(p, out);
            }
        }
        Expr::MapGet { key, .. } | Expr::MapContains { key, .. } => expr_global_reads(key, out),
        Expr::UInt(_) | Expr::Param(_) | Expr::Caller | Expr::Balance => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    fn counter_with_body(body: Vec<Stmt>) -> Program {
        let mut p = Program::counter_example();
        p.phases[0].apis[0].body = body;
        p
    }

    #[test]
    fn counter_lowers_to_dag() {
        let p = Program::counter_example();
        let cfg = lower_api(&p, 0, 0);
        // Every edge goes forward: topological by construction.
        for b in 0..cfg.blocks.len() {
            for s in cfg.successors(b) {
                assert!(s > b, "edge {b} -> {s} must go forward");
            }
        }
        let flow = analyze_api(&p, 0, 0);
        assert!(flow.envs.iter().all(|e| e.is_some()), "counter has no dead code");
        assert!(flow.const_conds.is_empty());
        assert!(flow.definite_overflows.is_empty());
    }

    #[test]
    fn intervals_prove_guarded_subtraction() {
        // require(by >= 5); count = by - 3;  — the syntactic matcher
        // wants `by >= 3` or `by > 0`; intervals know by ∈ [5, MAX].
        let p = counter_with_body(vec![
            Stmt::Require(Expr::ge(Expr::param("by"), Expr::UInt(5))),
            Stmt::GlobalSet {
                name: "count".into(),
                value: Expr::sub(Expr::param("by"), Expr::UInt(3)),
            },
        ]);
        let flow = analyze_api(&p, 0, 0);
        assert!(flow.proves_sub_safe(&[1], &Expr::param("by"), &Expr::UInt(3)));
        assert!(!flow.proves_sub_safe(&[1], &Expr::param("by"), &Expr::UInt(6)));
    }

    #[test]
    fn unguarded_subtraction_not_proved() {
        let p = counter_with_body(vec![Stmt::GlobalSet {
            name: "count".into(),
            value: Expr::sub(Expr::global("count"), Expr::UInt(1)),
        }]);
        let flow = analyze_api(&p, 0, 0);
        assert!(!flow.proves_sub_safe(&[0], &Expr::global("count"), &Expr::UInt(1)));
    }

    #[test]
    fn contradictory_branch_is_unreachable() {
        // require(by >= 5); if by < 5 { count = 1; }
        let p = counter_with_body(vec![
            Stmt::Require(Expr::ge(Expr::param("by"), Expr::UInt(5))),
            Stmt::If {
                cond: Expr::Bin(BinOp::Lt, Box::new(Expr::param("by")), Box::new(Expr::UInt(5))),
                then: vec![Stmt::GlobalSet { name: "count".into(), value: Expr::UInt(1) }],
                otherwise: vec![],
            },
        ]);
        let flow = analyze_api(&p, 0, 0);
        let dead = flow.unreachable_stmts();
        assert_eq!(dead, vec![vec![1, 0, 0]]);
        assert!(flow.const_conds.iter().any(|c| c.src == Src::Stmt(vec![1]) && !c.value));
    }

    #[test]
    fn dead_store_detected_and_last_write_survives() {
        let p = counter_with_body(vec![
            Stmt::GlobalSet { name: "count".into(), value: Expr::UInt(5) },
            Stmt::GlobalSet { name: "count".into(), value: Expr::UInt(7) },
        ]);
        let flow = analyze_api(&p, 0, 0);
        let dead = flow.dead_stores();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].path, vec![0]);
    }

    #[test]
    fn store_read_before_overwrite_is_live() {
        let p = counter_with_body(vec![
            Stmt::GlobalSet { name: "count".into(), value: Expr::UInt(5) },
            Stmt::GlobalSet { name: "remaining".into(), value: Expr::global("count") },
            Stmt::GlobalSet { name: "count".into(), value: Expr::UInt(7) },
        ]);
        let flow = analyze_api(&p, 0, 0);
        assert!(flow.dead_stores().is_empty());
    }

    #[test]
    fn reaching_defs_flow_through_branches() {
        let p = counter_with_body(vec![Stmt::If {
            cond: Expr::gt(Expr::param("by"), Expr::UInt(1)),
            then: vec![Stmt::GlobalSet { name: "count".into(), value: Expr::UInt(1) }],
            otherwise: vec![Stmt::GlobalSet { name: "count".into(), value: Expr::UInt(2) }],
        }]);
        let flow = analyze_api(&p, 0, 0);
        let (defs, ins) = flow.reaching_defs();
        assert_eq!(defs.len(), 2);
        // The join block sees both definitions.
        let ret = flow.cfg.blocks.iter().position(|b| matches!(b.term, Term::Return)).unwrap();
        assert_eq!(ins[ret].len(), 2);
        // Neither is dead: both reach the return.
        assert!(flow.dead_stores().is_empty());
    }

    #[test]
    fn map_ops_skip_unreachable_sites() {
        let mut p = counter_with_body(vec![
            Stmt::MapSet {
                map: "m".into(),
                key: Expr::param("by"),
                value: vec![Expr::param("by")],
            },
            Stmt::If {
                cond: Expr::Bin(BinOp::Lt, Box::new(Expr::UInt(1)), Box::new(Expr::UInt(1))),
                then: vec![Stmt::MapDelete { map: "m".into(), key: Expr::param("by") }],
                otherwise: vec![],
            },
        ]);
        p.maps.push(MapDecl { name: "m".into(), value_bytes: 64 });
        let flow = analyze_api(&p, 0, 0);
        let (puts, dels) = flow.map_ops();
        assert_eq!(puts.len(), 1);
        assert!(dels.is_empty(), "the delete is behind an always-false branch");
    }

    #[test]
    fn definite_overflow_flagged() {
        let p = counter_with_body(vec![Stmt::GlobalSet {
            name: "count".into(),
            value: Expr::Bin(BinOp::Add, Box::new(Expr::UInt(u64::MAX)), Box::new(Expr::UInt(1))),
        }]);
        let flow = analyze_api(&p, 0, 0);
        assert_eq!(flow.definite_overflows, vec![vec![0]]);
    }

    #[test]
    fn constructor_constants_propagate() {
        let mut p = Program::counter_example();
        // count starts at 0; if count > 0 in the constructor is dead.
        p.constructor = vec![Stmt::If {
            cond: Expr::gt(Expr::global("count"), Expr::UInt(0)),
            then: vec![Stmt::Log(vec![Expr::UInt(1)])],
            otherwise: vec![],
        }];
        let flow = analyze_constructor(&p);
        assert_eq!(flow.unreachable_stmts(), vec![vec![0, 0, 0]]);
    }

    #[test]
    fn zone_discharges_mirrored_guard() {
        // require(floor < by); count = by - floor; — the minuend sits
        // on the *right* of the comparison (mirrored form), so the
        // syntactic matcher fails, and with two opaque parameters the
        // intervals cannot relate them either. Only the zone proves it.
        let mut p = Program::counter_example();
        p.phases[0].apis[0].params.push(("floor".into(), Ty::UInt));
        p.phases[0].apis[0].body = vec![
            Stmt::Require(Expr::Bin(
                BinOp::Lt,
                Box::new(Expr::param("floor")),
                Box::new(Expr::param("by")),
            )),
            Stmt::GlobalSet {
                name: "count".into(),
                value: Expr::sub(Expr::param("by"), Expr::param("floor")),
            },
        ];
        let flow = analyze_api(&p, 0, 0);
        assert!(!flow.proves_sub_safe(&[1], &Expr::param("by"), &Expr::param("floor")));
        assert_eq!(
            flow.sub_safety(&[1], &Expr::param("by"), &Expr::param("floor")),
            SubProof::Relational
        );
        // Disabled: only the (failing) interval verdict remains.
        let base = analyze_api_with(&p, 0, 0, false);
        assert_eq!(
            base.sub_safety(&[1], &Expr::param("by"), &Expr::param("floor")),
            SubProof::Unproven
        );
        assert_eq!(base.zone_stats, ZoneStats::default());
    }

    #[test]
    fn zone_proves_transitive_chain() {
        // a > b, b > c ⊢ a - c safe.
        let mut p = Program::counter_example();
        for extra in ["a", "b", "c"] {
            p.phases[0].apis[0].params.push((extra.into(), Ty::UInt));
        }
        p.phases[0].apis[0].body = vec![
            Stmt::Require(Expr::gt(Expr::param("a"), Expr::param("b"))),
            Stmt::Require(Expr::gt(Expr::param("b"), Expr::param("c"))),
            Stmt::GlobalSet {
                name: "count".into(),
                value: Expr::sub(Expr::param("a"), Expr::param("c")),
            },
        ];
        let flow = analyze_api(&p, 0, 0);
        assert_eq!(
            flow.sub_safety(&[2], &Expr::param("a"), &Expr::param("c")),
            SubProof::Relational
        );
        assert!(flow.unsat_requires.is_empty());
        assert!(flow.zone_stats.constraints > 0);
    }

    #[test]
    fn zone_survives_tracked_decrement() {
        // require(count < remaining); remaining = remaining - 1 keeps
        // remaining ≥ count, so a later remaining - count is safe.
        let p = counter_with_body(vec![
            Stmt::Require(Expr::Bin(
                BinOp::Lt,
                Box::new(Expr::global("count")),
                Box::new(Expr::global("remaining")),
            )),
            Stmt::GlobalSet {
                name: "remaining".into(),
                value: Expr::sub(Expr::global("remaining"), Expr::UInt(1)),
            },
            Stmt::GlobalSet {
                name: "count".into(),
                value: Expr::sub(Expr::global("remaining"), Expr::global("count")),
            },
        ]);
        let flow = analyze_api(&p, 0, 0);
        assert_eq!(
            flow.sub_safety(&[2], &Expr::global("remaining"), &Expr::global("count")),
            SubProof::Relational
        );
    }

    #[test]
    fn contradictory_requires_recorded_as_unsat() {
        let mut p = Program::counter_example();
        p.phases[0].apis[0].params.push(("lo".into(), Ty::UInt));
        p.phases[0].apis[0].body = vec![
            Stmt::Require(Expr::gt(Expr::param("by"), Expr::param("lo"))),
            Stmt::Require(Expr::gt(Expr::param("lo"), Expr::param("by"))),
            Stmt::GlobalSet { name: "count".into(), value: Expr::UInt(1) },
        ];
        let flow = analyze_api(&p, 0, 0);
        assert_eq!(flow.unsat_requires, vec![Src::Stmt(vec![1])]);
        // Reachability stays interval-driven: the trailing statement is
        // NOT reported unreachable (monotone with the zone off).
        assert!(flow.unreachable_stmts().is_empty());
        let base = analyze_api_with(&p, 0, 0, false);
        assert!(base.unsat_requires.is_empty());
    }
}
