//! Pretty-printer: renders an AST back to the surface syntax of
//! [`crate::parse()`] (`parse(to_source(p)) == p` for every well-formed
//! program, so sources can be generated, stored and diffed), and
//! renders [`Diagnostic`]s rustc-style with the offending source line
//! and a caret underline.

use crate::ast::{BinOp, Expr, GlobalInit, Program, Stmt, Ty};
use crate::diag::{Diagnostic, Span};

/// Renders one diagnostic rustc-style:
///
/// ```text
/// error[V0102]: subtraction may underflow
///  --> contract.pol:12:9
///    |
/// 12 |         count = count - 1;
///    |         ^^^^^^^^^^^^^^^^^
/// ```
///
/// followed by `note:` snippets and an `= help:` suggestion when the
/// diagnostic carries them. Diagnostics without a source span render
/// the header line only.
pub fn render_diagnostic(diag: &Diagnostic, source: &str, filename: &str) -> String {
    let mut out = format!("{}[{}]: {}\n", diag.severity, diag.code, diag.message);
    if let Some(snip) = snippet(diag.span, source, filename) {
        out.push_str(&snip);
    }
    for note in &diag.notes {
        out.push_str(&format!("note: {}\n", note.message));
        if let Some(snip) = snippet(note.span, source, filename) {
            out.push_str(&snip);
        }
    }
    if let Some(help) = &diag.suggestion {
        out.push_str(&format!("  = help: {help}\n"));
    }
    out
}

/// Renders a batch of diagnostics separated by blank lines.
///
/// Diagnostics carrying the same code at the same source span are
/// rendered once: the constructor pass and an API pass can both report
/// the identical defect for one byte range (e.g. a global initialised
/// in the constructor and misused identically in an API lowered from
/// the same span), and repeating the block is pure noise. Dummy spans
/// are exempt — builder-made programs have no spans, and collapsing
/// their (all-dummy) diagnostics would swallow distinct findings.
pub fn render_diagnostics(diags: &[Diagnostic], source: &str, filename: &str) -> String {
    let mut seen: std::collections::HashSet<(&str, Span)> = std::collections::HashSet::new();
    diags
        .iter()
        .filter(|d| d.span.is_dummy() || seen.insert((d.code, d.span)))
        .map(|d| render_diagnostic(d, source, filename))
        .collect::<Vec<_>>()
        .join("\n")
}

fn snippet(span: Span, source: &str, filename: &str) -> Option<String> {
    let (line, col) = span.line_col(source)?;
    let line_text = source.lines().nth(line - 1).unwrap_or("");
    let line_start = span.start - (col - 1);
    let line_end = line_start + line_text.len();
    let width = span.end.min(line_end).saturating_sub(span.start).max(1);
    let gutter = line.to_string();
    let pad = " ".repeat(gutter.len());
    Some(format!(
        " --> {filename}:{line}:{col}\n\
         {pad} |\n\
         {gutter} | {line_text}\n\
         {pad} | {}{}\n",
        " ".repeat(col - 1),
        "^".repeat(width),
    ))
}

/// Renders a program as contract source text.
pub fn to_source(program: &Program) -> String {
    let mut out = String::new();
    out.push_str(&format!("contract {} {{\n", program.name));
    out.push_str(&format!("    participant {} {{", program.creator.name));
    if program.creator.fields.is_empty() {
        out.push_str(" }\n");
    } else {
        out.push('\n');
        for (name, ty) in &program.creator.fields {
            out.push_str(&format!("        {name}: {},\n", ty_str(ty)));
        }
        out.push_str("    }\n");
    }
    out.push('\n');
    for g in &program.globals {
        let init = match &g.init {
            GlobalInit::Const(c) => c.to_string(),
            GlobalInit::FromField(f) => format!("field({f})"),
            GlobalInit::CreatorAddress => "creator".to_string(),
        };
        let view = if g.viewable { " view" } else { "" };
        out.push_str(&format!("    global {}: {} = {init}{view};\n", g.name, ty_str(&g.ty)));
    }
    for m in &program.maps {
        out.push_str(&format!("    map {}[{}];\n", m.name, m.value_bytes));
    }
    if !program.constructor.is_empty() {
        out.push_str("\n    constructor {\n");
        for stmt in &program.constructor {
            push_stmt(&mut out, stmt, 2);
        }
        out.push_str("    }\n");
    }
    for phase in &program.phases {
        out.push_str(&format!(
            "\n    phase {} while {} invariant {} {{\n",
            phase.name,
            expr_str(&phase.while_cond),
            expr_str(&phase.invariant)
        ));
        for api in &phase.apis {
            let params: Vec<String> =
                api.params.iter().map(|(n, t)| format!("{n}: {}", ty_str(t))).collect();
            let pay = match &api.pay {
                Some(p) => format!(" pay {}", expr_str(p)),
                None => String::new(),
            };
            out.push_str(&format!(
                "        api {}({}){pay} -> {} {{\n",
                api.name,
                params.join(", "),
                expr_str(&api.returns)
            ));
            for stmt in &api.body {
                push_stmt(&mut out, stmt, 3);
            }
            out.push_str("        }\n");
        }
        out.push_str("    }\n");
    }
    out.push_str("}\n");
    out
}

fn ty_str(ty: &Ty) -> String {
    match ty {
        Ty::UInt => "uint".to_string(),
        Ty::Bool => "bool".to_string(),
        Ty::Address => "address".to_string(),
        Ty::Bytes(n) => format!("bytes[{n}]"),
    }
}

fn push_stmt(out: &mut String, stmt: &Stmt, depth: usize) {
    let pad = "    ".repeat(depth);
    match stmt {
        Stmt::Require(e) => out.push_str(&format!("{pad}require({});\n", expr_str(e))),
        Stmt::GlobalSet { name, value } => {
            out.push_str(&format!("{pad}{name} = {};\n", expr_str(value)));
        }
        Stmt::MapSet { map, key, value } => {
            let parts: Vec<String> = value.iter().map(expr_str).collect();
            out.push_str(&format!("{pad}{map}[{}] = [{}];\n", expr_str(key), parts.join(", ")));
        }
        Stmt::MapDelete { map, key } => {
            out.push_str(&format!("{pad}delete {map}[{}];\n", expr_str(key)));
        }
        Stmt::Transfer { to, amount } => {
            out.push_str(&format!("{pad}transfer({}, {});\n", expr_str(to), expr_str(amount)));
        }
        Stmt::If { cond, then, otherwise } => {
            out.push_str(&format!("{pad}if {} {{\n", expr_str(cond)));
            for s in then {
                push_stmt(out, s, depth + 1);
            }
            if otherwise.is_empty() {
                out.push_str(&format!("{pad}}}\n"));
            } else {
                out.push_str(&format!("{pad}}} else {{\n"));
                for s in otherwise {
                    push_stmt(out, s, depth + 1);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
        }
        Stmt::Log(parts) => {
            let parts: Vec<String> = parts.iter().map(expr_str).collect();
            out.push_str(&format!("{pad}log({});\n", parts.join(", ")));
        }
    }
}

fn expr_str(expr: &Expr) -> String {
    // Parenthesize every binary operand: unambiguous, always
    // re-parseable, never wrong on precedence.
    match expr {
        Expr::UInt(v) => v.to_string(),
        Expr::Param(name) | Expr::Global(name) => name.clone(),
        Expr::Caller => "caller".to_string(),
        Expr::Balance => "balance".to_string(),
        Expr::MapGet { map, key } => format!("{map}[{}]", expr_str(key)),
        Expr::MapContains { map, key } => format!("contains({map}, {})", expr_str(key)),
        Expr::Hash(parts) => {
            let parts: Vec<String> = parts.iter().map(expr_str).collect();
            format!("hash({})", parts.join(", "))
        }
        Expr::Bin(op, lhs, rhs) => {
            let op = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Lt => "<",
                BinOp::Gt => ">",
                BinOp::Le => "<=",
                BinOp::Ge => ">=",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::And => "&&",
                BinOp::Or => "||",
            };
            format!("({} {op} {})", expr_str(lhs), expr_str(rhs))
        }
        Expr::Not(inner) => format!("!({})", expr_str(inner)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_round_trips() {
        let program = Program::counter_example();
        let source = to_source(&program);
        let reparsed = crate::parse::parse(&source).unwrap();
        assert_eq!(reparsed, program, "source was:\n{source}");
    }

    #[test]
    fn renderer_points_at_the_offending_line() {
        let source = "contract c {\n    participant P { }\n    global g: uint = 0;\n";
        let start = source.find("global g").unwrap();
        let diag = Diagnostic::error("E0001", "duplicate global declaration")
            .at(Span::new(start, start + "global g".len()))
            .suggest("rename one of the declarations");
        let rendered = render_diagnostic(&diag, source, "c.pol");
        assert!(rendered.starts_with("error[E0001]: duplicate global declaration\n"));
        assert!(rendered.contains(" --> c.pol:3:5\n"), "{rendered}");
        assert!(rendered.contains("3 |     global g: uint = 0;\n"), "{rendered}");
        assert!(rendered.contains("  |     ^^^^^^^^\n"), "{rendered}");
        assert!(rendered.contains("  = help: rename one of the declarations\n"));
    }

    #[test]
    fn renderer_handles_dummy_spans_and_notes() {
        let source = "contract c {\n}\n";
        let diag = Diagnostic::warning("L0001", "unreachable code")
            .note(Span::new(0, 8), "because of this");
        let rendered = render_diagnostic(&diag, source, "c.pol");
        assert!(rendered.starts_with("warning[L0001]: unreachable code\n"));
        assert!(rendered.contains("note: because of this\n"));
        assert!(rendered.contains("1 | contract c {\n"), "{rendered}");
    }

    #[test]
    fn duplicate_code_span_pairs_render_once() {
        let source = "contract c {\n    global g: uint = 0;\n}\n";
        let start = source.find("global g").unwrap();
        let span = Span::new(start, start + 8);
        let diags = vec![
            Diagnostic::warning("L0003", "constructor: condition always evaluates to true")
                .at(span),
            Diagnostic::warning("L0003", "api \"f\": condition always evaluates to true").at(span),
            Diagnostic::warning("L0002", "api \"f\": dead store").at(span),
        ];
        let rendered = render_diagnostics(&diags, source, "c.pol");
        // Same (code, span) pair renders once; different code at the
        // same span still renders.
        assert_eq!(rendered.matches("warning[L0003]").count(), 1, "{rendered}");
        assert_eq!(rendered.matches("warning[L0002]").count(), 1, "{rendered}");
    }

    #[test]
    fn dummy_spans_are_never_deduped() {
        let diags = vec![
            Diagnostic::error("V0102", "subtraction a - b may underflow"),
            Diagnostic::error("V0102", "subtraction c - d may underflow"),
        ];
        let rendered = render_diagnostics(&diags, "", "c.pol");
        assert_eq!(rendered.matches("error[V0102]").count(), 2, "{rendered}");
    }

    #[test]
    fn source_is_human_shaped() {
        let source = to_source(&Program::counter_example());
        assert!(source.contains("contract counter {"));
        assert!(source.contains("participant Creator {"));
        assert!(source.contains("global remaining: uint = field(limit) view;"));
        assert!(source.contains("api bump(by: uint) -> remaining {"));
    }
}
