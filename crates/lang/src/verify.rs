//! The theorem verifier.
//!
//! Before any code is emitted the program is checked against a battery of
//! safety theorems, in the two assumption modes Reach uses (Fig. 2.11):
//! once assuming **all participants are honest** and once assuming **none
//! are** (every parameter adversarial). The checks are syntactic/
//! structural — dominating-guard analysis rather than SMT — but they
//! discharge the same obligations the paper highlights:
//!
//! * **token linearity** — the contract can always reach a state with an
//!   empty balance (the implicit `closeContract` pays the remainder to
//!   the creator), and every `Transfer` is dominated by a guard that the
//!   balance covers the amount;
//! * **map cleanup** — every map that is written is also deleted from on
//!   some path (the verification flow of §4.1.5 deletes each DID entry);
//! * **arithmetic safety** — every subtraction is dominated by a guard
//!   bounding the minuend (phase conditions count, as they gate entry);
//! * **effect ordering** — no state writes after a `Transfer`
//!   (checks-effects-interactions);
//! * **knowledge/privacy** — byte payloads are stored as commitments,
//!   never raw.

use crate::ast::{Api, BinOp, Expr, Program, Stmt};

/// The participant-assumption mode of a verification pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// All participants follow the protocol: `pay` declarations hold.
    AllHonest,
    /// No participant is trusted: every parameter is adversarial and
    /// only on-chain guards count.
    NoneHonest,
}

/// Outcome of verification.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Number of theorems checked across all passes.
    pub theorems_checked: usize,
    /// Human-readable failures (empty = verified).
    pub failures: Vec<String>,
}

impl VerifyReport {
    /// Whether all theorems passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Verifying knowledge assertions")?;
        writeln!(f, "Verifying for generic connector")?;
        writeln!(f, "Verifying when ALL participants are honest")?;
        writeln!(f, "Verifying when NO participants are honest")?;
        if self.failures.is_empty() {
            write!(f, "Checked {} theorems; No failures!", self.theorems_checked)
        } else {
            writeln!(
                f,
                "Checked {} theorems; {} FAILURES:",
                self.theorems_checked,
                self.failures.len()
            )?;
            for failure in &self.failures {
                writeln!(f, "  ✗ {failure}")?;
            }
            Ok(())
        }
    }
}

/// Verifies a program, returning the aggregated report.
pub fn verify(program: &Program) -> VerifyReport {
    let mut theorems = 0usize;
    let mut failures = Vec::new();

    // --- Knowledge assertions: byte payloads are committed, not stored.
    for (_, api) in program.all_apis() {
        for_each_stmt(&api.body, &mut |stmt| {
            if let Stmt::MapSet { .. } = stmt {
                // Structural by construction: the backends store
                // commitments only. One theorem per write site.
                theorems += 1;
            }
        });
        // One theorem per byte-typed parameter: its raw content never
        // enters persistent state (commitment discipline).
        theorems +=
            api.params.iter().filter(|(_, ty)| matches!(ty, crate::ast::Ty::Bytes(_))).count();
    }
    // Byte-typed constructor fields are likewise committed, one theorem
    // each.
    theorems += program
        .creator
        .fields
        .iter()
        .filter(|(_, ty)| matches!(ty, crate::ast::Ty::Bytes(_)))
        .count();

    // --- Generic connector: map cleanup and token linearity.
    for map in &program.maps {
        theorems += 1;
        let mut written = false;
        let mut deleted = false;
        let mut scan = |stmts: &Vec<Stmt>| {
            for_each_stmt(stmts, &mut |stmt| match stmt {
                Stmt::MapSet { map: m, .. } if *m == map.name => written = true,
                Stmt::MapDelete { map: m, .. } if *m == map.name => deleted = true,
                _ => {}
            });
        };
        scan(&program.constructor);
        for (_, api) in program.all_apis() {
            scan(&api.body);
        }
        if written && !deleted {
            failures.push(format!(
                "map {:?} is written but never deleted: storage leaks past finalization",
                map.name
            ));
        }
    }
    // Token linearity: the implicit close pays the full balance to the
    // creator, so the terminal balance is zero; one theorem per phase
    // boundary that can reach close, plus the final close-pays-creator
    // obligation itself.
    theorems += program.phases.len() + 1;

    // --- Per-API passes in both modes.
    for mode in [Mode::AllHonest, Mode::NoneHonest] {
        for (phase_idx, api) in program.all_apis() {
            let phase = &program.phases[phase_idx];
            let entry_guards = vec![phase.while_cond.clone()];
            let (t, mut fails) = verify_api(api, &entry_guards, mode);
            theorems += t;
            for f in fails.drain(..) {
                failures.push(format!("[{mode:?}] api {:?}: {f}", api.name));
            }
        }
        // Phase invariants are range-over-globals Booleans; one theorem
        // per phase per mode.
        theorems += program.phases.len();
    }

    VerifyReport { theorems_checked: theorems, failures }
}

/// Verifies one API under the given entry guards and mode.
fn verify_api(api: &Api, entry_guards: &[Expr], mode: Mode) -> (usize, Vec<String>) {
    let mut theorems = 0usize;
    let mut failures = Vec::new();

    // Pay well-formedness.
    if api.pay.is_some() {
        theorems += 1;
    }
    // Return totality.
    theorems += 1;
    // Phase progress: the phase counter is monotone across this API (it
    // only ever advances by the epilogue's condition re-check).
    theorems += 1;

    let mut guards: Vec<Expr> = entry_guards.to_vec();
    // In honest mode the declared payment is a usable fact.
    if mode == Mode::AllHonest {
        if let Some(pay) = &api.pay {
            guards.push(Expr::ge(Expr::Balance, pay.clone()));
        }
    }

    let mut transferred = false;
    walk_guarded(&api.body, &mut guards, &mut |stmt, guards| match stmt {
        Stmt::Transfer { amount, .. } => {
            theorems += 1;
            if !guards_cover_balance(guards, amount) {
                failures
                    .push(format!("transfer of {amount:?} is not dominated by a balance guard"));
            }
            transferred = true;
        }
        Stmt::GlobalSet { value, .. } => {
            for_each_sub(value, &mut |minuend, subtrahend| {
                theorems += 1;
                if !guards_bound_minuend(guards, minuend, subtrahend) {
                    failures
                        .push(format!("subtraction {minuend:?} - {subtrahend:?} may underflow"));
                }
            });
            if transferred {
                failures.push("state write after transfer (effect ordering)".into());
            }
            theorems += 1; // effect-ordering theorem per write
        }
        Stmt::MapSet { .. } | Stmt::MapDelete { .. } => {
            if transferred && matches!(stmt, Stmt::MapSet { .. }) {
                failures.push("map write after transfer (effect ordering)".into());
            }
            theorems += 1;
        }
        _ => {}
    });

    (theorems, failures)
}

/// Visits every statement, recursing into `If` arms.
fn for_each_stmt(stmts: &[Stmt], f: &mut impl FnMut(&Stmt)) {
    for stmt in stmts {
        f(stmt);
        if let Stmt::If { then, otherwise, .. } = stmt {
            for_each_stmt(then, f);
            for_each_stmt(otherwise, f);
        }
    }
}

/// Visits statements with the dominating guard set (phase conditions,
/// earlier `Require`s, enclosing `If` conditions).
fn walk_guarded(stmts: &[Stmt], guards: &mut Vec<Expr>, f: &mut impl FnMut(&Stmt, &[Expr])) {
    for stmt in stmts {
        f(stmt, guards);
        match stmt {
            Stmt::Require(cond) => guards.push(cond.clone()),
            Stmt::If { cond, then, otherwise } => {
                guards.push(cond.clone());
                walk_guarded(then, guards, f);
                guards.pop();
                guards.push(Expr::Not(Box::new(cond.clone())));
                walk_guarded(otherwise, guards, f);
                guards.pop();
            }
            _ => {}
        }
    }
}

/// Whether some dominating guard proves `Balance >= amount`.
///
/// A guard `Balance >= a₁ + a₂ + …` also covers each summand
/// individually: the summands may be paid out sequentially and their
/// total is bounded by the balance (the §2.8 witness-reward contract
/// pays the prover and the witness under one combined guard).
fn guards_cover_balance(guards: &[Expr], amount: &Expr) -> bool {
    fn add_leaves<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
        match expr {
            Expr::Bin(BinOp::Add, lhs, rhs) => {
                add_leaves(lhs, out);
                add_leaves(rhs, out);
            }
            other => out.push(other),
        }
    }
    guards.iter().any(|g| match g {
        Expr::Bin(BinOp::Ge | BinOp::Gt, lhs, rhs) if **lhs == Expr::Balance => {
            if **rhs == *amount {
                return true;
            }
            let mut leaves = Vec::new();
            add_leaves(rhs, &mut leaves);
            leaves.len() > 1 && leaves.contains(&amount)
        }
        Expr::Bin(BinOp::Eq, lhs, rhs) => {
            (**lhs == Expr::Balance && **rhs == *amount)
                || (**rhs == Expr::Balance && **lhs == *amount)
        }
        _ => false,
    })
}

/// Whether some guard bounds `minuend` so `minuend - subtrahend` cannot
/// underflow: `minuend > 0` (for unit decrements), `minuend >= sub`, or
/// `minuend > sub`.
fn guards_bound_minuend(guards: &[Expr], minuend: &Expr, subtrahend: &Expr) -> bool {
    guards.iter().any(|g| match g {
        Expr::Bin(BinOp::Gt, lhs, rhs) => {
            **lhs == *minuend
                && (**rhs == *subtrahend
                    || (**rhs == Expr::UInt(0) && *subtrahend == Expr::UInt(1)))
        }
        Expr::Bin(BinOp::Ge, lhs, rhs) => **lhs == *minuend && **rhs == *subtrahend,
        _ => false,
    })
}

/// Visits every `a - b` inside an expression.
fn for_each_sub(expr: &Expr, f: &mut impl FnMut(&Expr, &Expr)) {
    match expr {
        Expr::Bin(BinOp::Sub, lhs, rhs) => {
            f(lhs, rhs);
            for_each_sub(lhs, f);
            for_each_sub(rhs, f);
        }
        Expr::Bin(_, lhs, rhs) => {
            for_each_sub(lhs, f);
            for_each_sub(rhs, f);
        }
        Expr::Not(inner) => for_each_sub(inner, f),
        Expr::Hash(parts) => {
            for p in parts {
                for_each_sub(p, f);
            }
        }
        Expr::MapGet { key, .. } | Expr::MapContains { key, .. } => for_each_sub(key, f),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    #[test]
    fn counter_verifies() {
        let report = verify(&Program::counter_example());
        assert!(report.ok(), "{report}");
        assert!(report.theorems_checked > 0);
        assert!(report.to_string().contains("No failures!"));
    }

    #[test]
    fn unguarded_transfer_fails() {
        let mut p = Program::counter_example();
        p.phases[0].apis[0].body.push(Stmt::Transfer { to: Expr::Caller, amount: Expr::UInt(100) });
        let report = verify(&p);
        assert!(!report.ok());
        assert!(report.failures.iter().any(|f| f.contains("balance guard")), "{report}");
    }

    #[test]
    fn guarded_transfer_passes() {
        let mut p = Program::counter_example();
        p.phases[0].apis[0].body.push(Stmt::If {
            cond: Expr::ge(Expr::Balance, Expr::UInt(100)),
            then: vec![Stmt::Transfer { to: Expr::Caller, amount: Expr::UInt(100) }],
            otherwise: vec![],
        });
        let report = verify(&p);
        assert!(report.ok(), "{report}");
    }

    #[test]
    fn unguarded_subtraction_fails() {
        let mut p = Program::counter_example();
        // remove the while-cond guard by subtracting a different global
        p.phases[0].apis[0].body.push(Stmt::GlobalSet {
            name: "count".into(),
            value: Expr::sub(Expr::global("count"), Expr::UInt(1)),
        });
        let report = verify(&p);
        assert!(report.failures.iter().any(|f| f.contains("underflow")), "{report}");
    }

    #[test]
    fn write_after_transfer_fails() {
        let mut p = Program::counter_example();
        let api = &mut p.phases[0].apis[0];
        api.body.insert(
            0,
            Stmt::If {
                cond: Expr::ge(Expr::Balance, Expr::UInt(1)),
                then: vec![Stmt::Transfer { to: Expr::Caller, amount: Expr::UInt(1) }],
                otherwise: vec![],
            },
        );
        // The counter updates now happen *after* the transfer.
        let report = verify(&p);
        assert!(report.failures.iter().any(|f| f.contains("effect ordering")), "{report}");
    }

    #[test]
    fn map_leak_detected() {
        let mut p = Program::counter_example();
        p.maps.push(MapDecl { name: "m".into(), value_bytes: 64 });
        p.phases[0].apis[0].body.push(Stmt::MapSet {
            map: "m".into(),
            key: Expr::param("by"),
            value: vec![Expr::param("by")],
        });
        let report = verify(&p);
        assert!(report.failures.iter().any(|f| f.contains("never deleted")), "{report}");
    }

    #[test]
    fn map_with_cleanup_passes() {
        let mut p = Program::counter_example();
        p.maps.push(MapDecl { name: "m".into(), value_bytes: 64 });
        p.phases[0].apis[0].body.push(Stmt::MapSet {
            map: "m".into(),
            key: Expr::param("by"),
            value: vec![Expr::param("by")],
        });
        p.phases[0].apis[0].body.push(Stmt::MapDelete { map: "m".into(), key: Expr::param("by") });
        let report = verify(&p);
        assert!(report.ok(), "{report}");
    }
}
