//! The theorem verifier.
//!
//! Before any code is emitted the program is checked against a battery of
//! safety theorems, in the two assumption modes Reach uses (Fig. 2.11):
//! once assuming **all participants are honest** and once assuming **none
//! are** (every parameter adversarial). The checks are syntactic/
//! structural — dominating-guard analysis rather than SMT — but they
//! discharge the same obligations the paper highlights:
//!
//! * **token linearity** — the contract can always reach a state with an
//!   empty balance (the implicit `closeContract` pays the remainder to
//!   the creator), and every `Transfer` is dominated by a guard that the
//!   balance covers the amount;
//! * **map cleanup** — every map that is written is also deleted from on
//!   some path (the verification flow of §4.1.5 deletes each DID entry);
//! * **arithmetic safety** — every subtraction is dominated by a guard
//!   bounding the minuend (phase conditions count, as they gate entry);
//!   when the syntactic matcher gives up, the interval analysis of
//!   [`crate::ir`] is consulted, and when *that* gives up the
//!   relational zone domain of [`crate::dbm`] (difference constraints
//!   collected from the path conditions) is the last fallback before a
//!   failure is reported — see [`VerifyReport::relationally_discharged`];
//! * **effect ordering** — no state writes after a `Transfer`
//!   (checks-effects-interactions);
//! * **knowledge/privacy** — byte payloads are stored as commitments,
//!   never raw.
//!
//! Failures are structured [`Diagnostic`]s (codes `V0101`–`V0105`) with
//! source spans, renderable by [`crate::pretty::render_diagnostic`].

use crate::ast::{BinOp, Expr, Program, Stmt};
use crate::dbm::ZoneStats;
use crate::diag::{Diagnostic, NodePath, Owner, Span};
use crate::ir;

/// The participant-assumption mode of a verification pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// All participants follow the protocol: `pay` declarations hold.
    AllHonest,
    /// No participant is trusted: every parameter is adversarial and
    /// only on-chain guards count.
    NoneHonest,
}

/// Outcome of verification.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Number of theorems checked across all passes.
    pub theorems_checked: usize,
    /// Structured failures (empty = verified).
    pub failures: Vec<Diagnostic>,
    /// Theorems neither the syntactic matcher nor the interval domain
    /// could discharge that the relational zone domain proved.
    pub relationally_discharged: usize,
    /// Aggregate difference-logic solver counters across all bodies.
    pub zone_stats: ZoneStats,
}

impl VerifyReport {
    /// Whether all theorems passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Verifying knowledge assertions")?;
        writeln!(f, "Verifying for generic connector")?;
        writeln!(f, "Verifying when ALL participants are honest")?;
        writeln!(f, "Verifying when NO participants are honest")?;
        if self.failures.is_empty() {
            write!(f, "Checked {} theorems; No failures!", self.theorems_checked)?;
            if self.relationally_discharged > 0 {
                write!(f, " ({} discharged relationally)", self.relationally_discharged)?;
            }
            Ok(())
        } else {
            writeln!(
                f,
                "Checked {} theorems; {} FAILURES:",
                self.theorems_checked,
                self.failures.len()
            )?;
            for failure in &self.failures {
                writeln!(f, "  ✗ {}", failure.message)?;
            }
            Ok(())
        }
    }
}

/// Verifies a program, returning the aggregated report.
pub fn verify(program: &Program) -> VerifyReport {
    verify_with(program, true)
}

/// [`verify`] with the relational zone fallback toggleable
/// (`polc --no-relational` disables it for baseline comparisons).
pub fn verify_with(program: &Program, relational: bool) -> VerifyReport {
    let mut theorems = 0usize;
    let mut failures = Vec::new();
    let mut relationally_discharged = 0usize;

    // --- Knowledge assertions: byte payloads are committed, not stored.
    for (_, api) in program.all_apis() {
        for_each_stmt(&api.body, &mut |stmt| {
            if let Stmt::MapSet { .. } = stmt {
                // Structural by construction: the backends store
                // commitments only. One theorem per write site.
                theorems += 1;
            }
        });
        // One theorem per byte-typed parameter: its raw content never
        // enters persistent state (commitment discipline).
        theorems +=
            api.params.iter().filter(|(_, ty)| matches!(ty, crate::ast::Ty::Bytes(_))).count();
    }
    // Byte-typed constructor fields are likewise committed, one theorem
    // each.
    theorems += program
        .creator
        .fields
        .iter()
        .filter(|(_, ty)| matches!(ty, crate::ast::Ty::Bytes(_)))
        .count();

    // --- Generic connector: map cleanup and token linearity.
    for (map_idx, map) in program.maps.iter().enumerate() {
        theorems += 1;
        let mut first_write: Option<(Owner, Vec<u32>)> = None;
        let mut deleted = false;
        {
            let mut scan = |owner: Owner, stmts: &[Stmt]| {
                for_each_stmt_path(stmts, &mut Vec::new(), &mut |stmt, path| match stmt {
                    Stmt::MapSet { map: m, .. } if *m == map.name && first_write.is_none() => {
                        first_write = Some((owner, path.to_vec()));
                    }
                    Stmt::MapDelete { map: m, .. } if *m == map.name => deleted = true,
                    _ => {}
                });
            };
            scan(Owner::Constructor, &program.constructor);
            for (phase_idx, phase) in program.phases.iter().enumerate() {
                for (api_idx, api) in phase.apis.iter().enumerate() {
                    scan(Owner::Api { phase: phase_idx as u32, api: api_idx as u32 }, &api.body);
                }
            }
        }
        if let Some((owner, path)) = first_write {
            if !deleted {
                failures.push(
                    Diagnostic::error(
                        "V0105",
                        format!(
                            "map {:?} is written but never deleted: storage leaks past finalization",
                            map.name
                        ),
                    )
                    .at(program.spans.get(&NodePath::Map(map_idx)))
                    .note(program.spans.get(&NodePath::Stmt(owner, path)), "written here")
                    .suggest("add a `delete` for the entry on some path before finalization"),
                );
            }
        }
    }
    // Token linearity: the implicit close pays the full balance to the
    // creator, so the terminal balance is zero; one theorem per phase
    // boundary that can reach close, plus the final close-pays-creator
    // obligation itself.
    theorems += program.phases.len() + 1;

    // --- Per-API passes in both modes. The interval analysis is mode-
    // independent (it already treats every parameter as adversarial), so
    // compute it once per API.
    let flows: Vec<Vec<ir::BodyAnalysis>> = program
        .phases
        .iter()
        .enumerate()
        .map(|(pi, phase)| {
            (0..phase.apis.len())
                .map(|ai| ir::analyze_api_with(program, pi, ai, relational))
                .collect()
        })
        .collect();
    let mut zone_stats = ZoneStats::default();
    for flow in flows.iter().flatten() {
        zone_stats.absorb(flow.zone_stats);
    }
    for mode in [Mode::AllHonest, Mode::NoneHonest] {
        for (phase_idx, phase) in program.phases.iter().enumerate() {
            for (api_idx, api) in phase.apis.iter().enumerate() {
                let (t, fails, rel) =
                    verify_api(program, phase_idx, api_idx, mode, &flows[phase_idx][api_idx]);
                theorems += t;
                relationally_discharged += rel;
                for mut d in fails {
                    d.message = format!("[{mode:?}] api {:?}: {}", api.name, d.message);
                    failures.push(d);
                }
            }
        }
        // Phase invariants are range-over-globals Booleans; one theorem
        // per phase per mode.
        theorems += program.phases.len();
    }

    VerifyReport { theorems_checked: theorems, failures, relationally_discharged, zone_stats }
}

/// Verifies one API under the given mode. Returns the theorem count,
/// the failures, and how many theorems only the zone domain proved.
fn verify_api(
    program: &Program,
    phase_idx: usize,
    api_idx: usize,
    mode: Mode,
    flow: &ir::BodyAnalysis,
) -> (usize, Vec<Diagnostic>, usize) {
    let phase = &program.phases[phase_idx];
    let api = &phase.apis[api_idx];
    let owner = Owner::Api { phase: phase_idx as u32, api: api_idx as u32 };
    let at = |path: &[u32]| program.spans.get(&NodePath::Stmt(owner, path.to_vec()));
    let mut theorems = 0usize;
    let mut failures = Vec::new();
    let mut relational = 0usize;

    // Pay well-formedness.
    if api.pay.is_some() {
        theorems += 1;
    }
    // Return totality.
    theorems += 1;
    // Phase progress: the phase counter is monotone across this API (it
    // only ever advances by the epilogue's condition re-check).
    theorems += 1;

    let mut guards: Vec<Expr> = vec![phase.while_cond.clone()];
    // In honest mode the declared payment is a usable fact.
    if mode == Mode::AllHonest {
        if let Some(pay) = &api.pay {
            guards.push(Expr::ge(Expr::Balance, pay.clone()));
        }
    }

    let mut transferred = false;
    walk_guarded(&api.body, &mut guards, &mut Vec::new(), &mut |stmt, guards, path| match stmt {
        Stmt::Transfer { amount, .. } => {
            theorems += 1;
            if !guards_cover_balance(guards, amount) {
                failures.push(
                    Diagnostic::error(
                        "V0101",
                        format!("transfer of {amount:?} is not dominated by a balance guard"),
                    )
                    .at(at(path))
                    .suggest("guard the transfer with `require(balance >= amount)` or an `if`"),
                );
            }
            transferred = true;
        }
        Stmt::GlobalSet { value, .. } => {
            for_each_sub(value, &mut |minuend, subtrahend| {
                theorems += 1;
                // Syntactic dominating-guard matcher first; the interval
                // analysis proves more (e.g. `require(x >= 5); g = x - 3;`,
                // where no guard names the subtrahend); the relational
                // zone domain proves the remainder (mirrored guards
                // like `require(b < a); g = a - b;`, transitive chains).
                if !guards_bound_minuend(guards, minuend, subtrahend) {
                    match flow.sub_safety(path, minuend, subtrahend) {
                        ir::SubProof::Interval => {}
                        ir::SubProof::Relational => relational += 1,
                        ir::SubProof::Unproven => failures.push(
                            Diagnostic::error(
                                "V0102",
                                format!("subtraction {minuend:?} - {subtrahend:?} may underflow"),
                            )
                            .at(at(path))
                            .note(Span::DUMMY, "not provable relationally from the path conditions")
                            .suggest("add a dominating guard bounding the minuend from below"),
                        ),
                    }
                }
            });
            if transferred {
                failures.push(
                    Diagnostic::error("V0103", "state write after transfer (effect ordering)")
                        .at(at(path))
                        .suggest("move all state writes before the transfer"),
                );
            }
            theorems += 1; // effect-ordering theorem per write
        }
        Stmt::MapSet { .. } | Stmt::MapDelete { .. } => {
            if transferred && matches!(stmt, Stmt::MapSet { .. }) {
                failures.push(
                    Diagnostic::error("V0104", "map write after transfer (effect ordering)")
                        .at(at(path))
                        .suggest("move all map writes before the transfer"),
                );
            }
            theorems += 1;
        }
        _ => {}
    });

    (theorems, failures, relational)
}

/// Visits every statement, recursing into `If` arms.
fn for_each_stmt(stmts: &[Stmt], f: &mut impl FnMut(&Stmt)) {
    for stmt in stmts {
        f(stmt);
        if let Stmt::If { then, otherwise, .. } = stmt {
            for_each_stmt(then, f);
            for_each_stmt(otherwise, f);
        }
    }
}

/// Visits every statement with its [`NodePath::Stmt`]-style path
/// (child index, with `0`/`1` arm markers inside `if` statements).
fn for_each_stmt_path(stmts: &[Stmt], prefix: &mut Vec<u32>, f: &mut impl FnMut(&Stmt, &[u32])) {
    for (i, stmt) in stmts.iter().enumerate() {
        prefix.push(i as u32);
        f(stmt, prefix);
        if let Stmt::If { then, otherwise, .. } = stmt {
            prefix.push(0);
            for_each_stmt_path(then, prefix, f);
            prefix.pop();
            prefix.push(1);
            for_each_stmt_path(otherwise, prefix, f);
            prefix.pop();
        }
        prefix.pop();
    }
}

/// Visits statements with the dominating guard set (phase conditions,
/// earlier `Require`s, enclosing `If` conditions) and the statement
/// path.
pub(crate) fn walk_guarded(
    stmts: &[Stmt],
    guards: &mut Vec<Expr>,
    prefix: &mut Vec<u32>,
    f: &mut impl FnMut(&Stmt, &[Expr], &[u32]),
) {
    for (i, stmt) in stmts.iter().enumerate() {
        prefix.push(i as u32);
        f(stmt, guards, prefix);
        match stmt {
            Stmt::Require(cond) => guards.push(cond.clone()),
            Stmt::If { cond, then, otherwise } => {
                guards.push(cond.clone());
                prefix.push(0);
                walk_guarded(then, guards, prefix, f);
                prefix.pop();
                guards.pop();
                guards.push(Expr::Not(Box::new(cond.clone())));
                prefix.push(1);
                walk_guarded(otherwise, guards, prefix, f);
                prefix.pop();
                guards.pop();
            }
            _ => {}
        }
        prefix.pop();
    }
}

/// Whether some dominating guard proves `Balance >= amount`.
///
/// A guard `Balance >= a₁ + a₂ + …` also covers each summand
/// individually: the summands may be paid out sequentially and their
/// total is bounded by the balance (the §2.8 witness-reward contract
/// pays the prover and the witness under one combined guard).
pub(crate) fn guards_cover_balance(guards: &[Expr], amount: &Expr) -> bool {
    fn add_leaves<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
        match expr {
            Expr::Bin(BinOp::Add, lhs, rhs) => {
                add_leaves(lhs, out);
                add_leaves(rhs, out);
            }
            other => out.push(other),
        }
    }
    guards.iter().any(|g| match g {
        Expr::Bin(BinOp::Ge | BinOp::Gt, lhs, rhs) if **lhs == Expr::Balance => {
            if **rhs == *amount {
                return true;
            }
            let mut leaves = Vec::new();
            add_leaves(rhs, &mut leaves);
            leaves.len() > 1 && leaves.contains(&amount)
        }
        Expr::Bin(BinOp::Eq, lhs, rhs) => {
            (**lhs == Expr::Balance && **rhs == *amount)
                || (**rhs == Expr::Balance && **lhs == *amount)
        }
        _ => false,
    })
}

/// Whether some guard bounds `minuend` so `minuend - subtrahend` cannot
/// underflow: `minuend > 0` (for unit decrements), `minuend >= sub`, or
/// `minuend > sub`.
fn guards_bound_minuend(guards: &[Expr], minuend: &Expr, subtrahend: &Expr) -> bool {
    guards.iter().any(|g| match g {
        Expr::Bin(BinOp::Gt, lhs, rhs) => {
            **lhs == *minuend
                && (**rhs == *subtrahend
                    || (**rhs == Expr::UInt(0) && *subtrahend == Expr::UInt(1)))
        }
        Expr::Bin(BinOp::Ge, lhs, rhs) => **lhs == *minuend && **rhs == *subtrahend,
        _ => false,
    })
}

/// Visits every `a - b` inside an expression.
fn for_each_sub(expr: &Expr, f: &mut impl FnMut(&Expr, &Expr)) {
    match expr {
        Expr::Bin(BinOp::Sub, lhs, rhs) => {
            f(lhs, rhs);
            for_each_sub(lhs, f);
            for_each_sub(rhs, f);
        }
        Expr::Bin(_, lhs, rhs) => {
            for_each_sub(lhs, f);
            for_each_sub(rhs, f);
        }
        Expr::Not(inner) => for_each_sub(inner, f),
        Expr::Hash(parts) => {
            for p in parts {
                for_each_sub(p, f);
            }
        }
        Expr::MapGet { key, .. } | Expr::MapContains { key, .. } => for_each_sub(key, f),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    #[test]
    fn counter_verifies() {
        let report = verify(&Program::counter_example());
        assert!(report.ok(), "{report}");
        assert!(report.theorems_checked > 0);
        assert!(report.to_string().contains("No failures!"));
    }

    #[test]
    fn unguarded_transfer_fails() {
        let mut p = Program::counter_example();
        p.phases[0].apis[0].body.push(Stmt::Transfer { to: Expr::Caller, amount: Expr::UInt(100) });
        let report = verify(&p);
        assert!(!report.ok());
        assert!(report.failures.iter().any(|f| f.message.contains("balance guard")), "{report}");
        assert!(report.failures.iter().all(|f| f.code == "V0101"));
    }

    #[test]
    fn guarded_transfer_passes() {
        let mut p = Program::counter_example();
        p.phases[0].apis[0].body.push(Stmt::If {
            cond: Expr::ge(Expr::Balance, Expr::UInt(100)),
            then: vec![Stmt::Transfer { to: Expr::Caller, amount: Expr::UInt(100) }],
            otherwise: vec![],
        });
        let report = verify(&p);
        assert!(report.ok(), "{report}");
    }

    #[test]
    fn unguarded_subtraction_fails() {
        let mut p = Program::counter_example();
        // remove the while-cond guard by subtracting a different global
        p.phases[0].apis[0].body.push(Stmt::GlobalSet {
            name: "count".into(),
            value: Expr::sub(Expr::global("count"), Expr::UInt(1)),
        });
        let report = verify(&p);
        assert!(report.failures.iter().any(|f| f.message.contains("underflow")), "{report}");
        assert!(report.failures.iter().all(|f| f.code == "V0102"));
    }

    #[test]
    fn interval_analysis_discharges_nonmatching_guard() {
        // `require(by >= 5); count = by - 3;` — no guard names the
        // subtrahend 3, so the syntactic matcher fails, but intervals
        // know by ∈ [5, MAX].
        let mut p = Program::counter_example();
        p.phases[0].apis[0].body = vec![
            Stmt::Require(Expr::ge(Expr::param("by"), Expr::UInt(5))),
            Stmt::GlobalSet {
                name: "count".into(),
                value: Expr::sub(Expr::param("by"), Expr::UInt(3)),
            },
        ];
        let report = verify(&p);
        assert!(report.ok(), "{report}");
    }

    #[test]
    fn zone_discharges_mirrored_guard() {
        // `require(floor < by); count = by - floor;` — mirrored operand
        // order defeats the syntactic matcher, and two opaque params
        // defeat the intervals; only the zone domain proves it.
        let mut p = Program::counter_example();
        p.phases[0].apis[0].params.push(("floor".into(), Ty::UInt));
        p.phases[0].apis[0].body = vec![
            Stmt::Require(Expr::Bin(
                BinOp::Lt,
                Box::new(Expr::param("floor")),
                Box::new(Expr::param("by")),
            )),
            Stmt::GlobalSet {
                name: "count".into(),
                value: Expr::sub(Expr::param("by"), Expr::param("floor")),
            },
        ];
        let report = verify(&p);
        assert!(report.ok(), "{report}");
        // Proved once per mode.
        assert_eq!(report.relationally_discharged, 2);
        assert!(report.zone_stats.constraints > 0);
        assert!(report.to_string().contains("discharged relationally"), "{report}");

        // With the solver off, the same program fails (baseline).
        let base = verify_with(&p, false);
        assert!(!base.ok());
        assert!(base.failures.iter().all(|f| f.code == "V0102"));
        assert_eq!(base.relationally_discharged, 0);
        assert_eq!(base.zone_stats, crate::dbm::ZoneStats::default());
    }

    #[test]
    fn zone_discharges_transitive_chain() {
        let mut p = Program::counter_example();
        for extra in ["a", "b", "c"] {
            p.phases[0].apis[0].params.push((extra.into(), Ty::UInt));
        }
        p.phases[0].apis[0].body = vec![
            Stmt::Require(Expr::gt(Expr::param("a"), Expr::param("b"))),
            Stmt::Require(Expr::gt(Expr::param("b"), Expr::param("c"))),
            Stmt::GlobalSet {
                name: "count".into(),
                value: Expr::sub(Expr::param("a"), Expr::param("c")),
            },
        ];
        let report = verify(&p);
        assert!(report.ok(), "{report}");
        assert_eq!(report.relationally_discharged, 2);
        assert!(!verify_with(&p, false).ok());
    }

    #[test]
    fn may_wrap_guard_still_rejected_with_zone() {
        // The verify_soundness pin: `require(a <= p - q)` must not
        // launder a possibly-wrapping `p - q` into a bound on `a`.
        let mut p = Program::counter_example();
        for extra in ["a", "p", "q"] {
            p.phases[0].apis[0].params.push((extra.into(), Ty::UInt));
        }
        p.phases[0].apis[0].body = vec![
            Stmt::Require(Expr::Bin(
                BinOp::Le,
                Box::new(Expr::param("a")),
                Box::new(Expr::sub(Expr::param("p"), Expr::param("q"))),
            )),
            Stmt::GlobalSet {
                name: "count".into(),
                value: Expr::sub(Expr::param("p"), Expr::param("a")),
            },
        ];
        let report = verify(&p);
        assert!(!report.ok(), "wrapping guard must not discharge the theorem");
        assert!(report.failures.iter().all(|f| f.code == "V0102"));
    }

    #[test]
    fn write_after_transfer_fails() {
        let mut p = Program::counter_example();
        let api = &mut p.phases[0].apis[0];
        api.body.insert(
            0,
            Stmt::If {
                cond: Expr::ge(Expr::Balance, Expr::UInt(1)),
                then: vec![Stmt::Transfer { to: Expr::Caller, amount: Expr::UInt(1) }],
                otherwise: vec![],
            },
        );
        // The counter updates now happen *after* the transfer.
        let report = verify(&p);
        assert!(report.failures.iter().any(|f| f.message.contains("effect ordering")), "{report}");
        assert!(report.failures.iter().any(|f| f.code == "V0103"));
    }

    #[test]
    fn map_leak_detected() {
        let mut p = Program::counter_example();
        p.maps.push(MapDecl { name: "m".into(), value_bytes: 64 });
        p.phases[0].apis[0].body.push(Stmt::MapSet {
            map: "m".into(),
            key: Expr::param("by"),
            value: vec![Expr::param("by")],
        });
        let report = verify(&p);
        assert!(report.failures.iter().any(|f| f.message.contains("never deleted")), "{report}");
        assert!(report.failures.iter().any(|f| f.code == "V0105" && f.notes.len() == 1));
    }

    #[test]
    fn map_with_cleanup_passes() {
        let mut p = Program::counter_example();
        p.maps.push(MapDecl { name: "m".into(), value_bytes: 64 });
        p.phases[0].apis[0].body.push(Stmt::MapSet {
            map: "m".into(),
            key: Expr::param("by"),
            value: vec![Expr::param("by")],
        });
        p.phases[0].apis[0].body.push(Stmt::MapDelete { map: "m".into(), key: Expr::param("by") });
        let report = verify(&p);
        assert!(report.ok(), "{report}");
    }
}
