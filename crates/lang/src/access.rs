//! Compile-time read/write-set inference: **access summaries**.
//!
//! For every method (and the constructor) this pass abstract-interprets
//! the lowered CFG (see [`crate::ir`]) into a sound, finite
//! [`AccessSummary`]: which globals the body may read or write, which
//! map entries it may touch — classified on the key-pattern lattice
//! `Const ⊑ Param ⊑ ⊤` using the interval and zone domains to narrow
//! key expressions — plus balance and transfer effects and whether the
//! phase counter may advance.
//!
//! [`ContractSummaries`] then *resolves* a summary against a concrete
//! call (sender, value, calldata or app args) into runtime
//! [`AccessClaims`] over [`pol_ledger::StateKey`]s, replaying the exact
//! key derivations the backends emit: EVM map slots are
//! `keccak(key_word ‖ word(MAP_SLOT_BASE + idx))` (see
//! [`crate::backend::evm`]), AVM map entries are boxes keyed
//! `"<map>:" ‖ itob(key)` (see [`crate::backend::avm`]). The parallel
//! executor uses those claims to pre-partition blocks into
//! provably-disjoint lanes; its sanitizer cross-checks every observed
//! read/write set against them at commit time, so an unsound summary
//! fails loudly in every test run.
//!
//! # Soundness argument
//!
//! The summary is a *may* analysis over the reachable CFG: every
//! statement and condition the runtime can execute is walked, and every
//! key a site may touch is either pinned (constant, or a parameter the
//! resolver evaluates against the actual call data) or widened to the
//! family/⊤ claim that contains it. Reachability comes from the
//! interval pass, which over-approximates concrete executions, so a
//! block it proves unreachable truly never runs. Rolled-back execution
//! paths (reverts) only shrink the observed sets, never grow them.
//!
//! The phase counter needs care: the generated epilogue re-evaluates
//! the phase's `while` condition and advances the counter when it turned
//! false. The summary claims a phase write only when the body can
//! change an input of that condition (a global or map it reads, or —
//! via transfers — the balance); otherwise the condition still holds at
//! exit exactly as the entry `require` proved it, and the counter is
//! provably untouched. Without this refinement every call to a
//! contract would conflict on the phase slot and no two calls would
//! ever commute.

use crate::ast::{Expr, Program, Ty};
use crate::backend::evm::{global_slot, MAP_SLOT_BASE, SLOT_CREATOR, SLOT_PHASE};
use crate::backend::{avm as avm_backend, evm as evm_backend};
use crate::dbm;
use crate::diag::Owner;
use crate::ir::{self, BodyAnalysis, Inst, Term};
use pol_avm::app_address;
use pol_crypto::keccak256;
use pol_evm::Word;
use pol_ledger::access::AccessClaims;
use pol_ledger::codec::encode_key;
use pol_ledger::{Address, StateKey};
use std::collections::{BTreeSet, HashMap};

/// How precisely a map-key expression is known. The lattice is
/// `Const ⊑ Param ⊑ Top`: a constant key pins one entry at compile
/// time, a parameter key pins one entry per call (resolved against the
/// call data), ⊤ claims the whole map. (A `sender`-derived arm is
/// structurally impossible for map keys — the checker types them
/// strictly `uint` — but sender-derived *addresses* appear in transfer
/// recipients, see [`AddrPattern::Caller`].)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyPattern {
    /// The key is this constant (interval/zone domains pinned it).
    Const(u64),
    /// The key is exactly this parameter's value.
    Param(String),
    /// Unresolvable: claim every entry of the map.
    Top,
}

/// How precisely a transfer recipient is known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddrPattern {
    /// The calling account (resolved to the tx sender).
    Caller,
    /// Exactly this address-typed parameter's value.
    Param(String),
    /// Unresolvable: claim every balance.
    Top,
}

/// One map access site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapSite {
    /// Map name.
    pub map: String,
    /// Key classification.
    pub key: KeyPattern,
    /// Whether the site writes (put/delete) rather than reads.
    pub write: bool,
    /// Source statement path of the access (for diagnostics).
    pub path: Vec<u32>,
}

/// One transfer site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferSite {
    /// Recipient classification.
    pub to: AddrPattern,
    /// Source statement path.
    pub path: Vec<u32>,
}

/// The sound, finite access summary of one body.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessSummary {
    /// Globals the body (or the phase condition / pay / return
    /// expressions evaluated around it) may read.
    pub globals_read: BTreeSet<String>,
    /// Globals the body may write.
    pub globals_written: BTreeSet<String>,
    /// Map access sites, reads and writes.
    pub maps: Vec<MapSite>,
    /// Transfer sites.
    pub transfers: Vec<TransferSite>,
    /// Whether the contract balance is read.
    pub reads_balance: bool,
    /// Whether the phase counter is read (true for every API — the
    /// dispatcher checks it — and false for views).
    pub reads_phase: bool,
    /// Whether the phase counter may be written (the epilogue advances
    /// it only when the body can falsify the phase condition).
    pub writes_phase: bool,
    /// Whether the method requires an attached payment.
    pub uses_pay: bool,
}

/// A site where the summary degrades to ⊤ (lint L0007).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// Source statement path of the offending access.
    pub path: Vec<u32>,
    /// Human-readable description of what degraded.
    pub detail: String,
}

impl AccessSummary {
    /// Whether every site is pinned — no whole-map or whole-ledger
    /// claim anywhere.
    pub fn is_precise(&self) -> bool {
        self.degradations().is_empty()
    }

    /// Every ⊤ site, with the statement path the L0007 lint points at.
    pub fn degradations(&self) -> Vec<Degradation> {
        let mut out = Vec::new();
        for site in &self.maps {
            if site.key == KeyPattern::Top {
                let mode = if site.write { "write to" } else { "read of" };
                out.push(Degradation {
                    path: site.path.clone(),
                    detail: format!(
                        "{mode} map \"{}\" with unresolvable key widens the access summary \
                         to the whole map",
                        site.map
                    ),
                });
            }
        }
        for site in &self.transfers {
            if site.to == AddrPattern::Top {
                out.push(Degradation {
                    path: site.path.clone(),
                    detail: "transfer recipient is unresolvable at compile time; the access \
                             summary widens to every balance"
                        .to_string(),
                });
            }
        }
        out
    }
}

/// Collects global/balance/map-name reads of an expression — used for
/// the phase-advance refinement (key precision is irrelevant there).
#[derive(Debug, Default)]
struct CondFootprint {
    globals: BTreeSet<String>,
    maps: BTreeSet<String>,
    balance: bool,
}

fn cond_footprint(expr: &Expr, fp: &mut CondFootprint) {
    match expr {
        Expr::Global(g) => {
            fp.globals.insert(g.clone());
        }
        Expr::Balance => fp.balance = true,
        Expr::MapGet { map, key } | Expr::MapContains { map, key } => {
            fp.maps.insert(map.clone());
            cond_footprint(key, fp);
        }
        Expr::Hash(parts) => parts.iter().for_each(|p| cond_footprint(p, fp)),
        Expr::Bin(_, a, b) => {
            cond_footprint(a, fp);
            cond_footprint(b, fp);
        }
        Expr::Not(inner) => cond_footprint(inner, fp),
        Expr::UInt(_) | Expr::Param(_) | Expr::Caller => {}
    }
}

/// Classifies a map-key expression at a program point: the interval
/// domain first (guard refinement can pin `require(k == 7)` keys), then
/// the relational zone (difference bounds can pin keys the intervals
/// lose through joins), then the syntactic parameter case, then ⊤.
fn classify_key(
    key: &Expr,
    env: Option<&ir::Env>,
    zone: Option<&dbm::Zone>,
    default_env: &ir::Env,
) -> KeyPattern {
    let env = env.unwrap_or(default_env);
    if let Some(c) = env.interval_of(key).as_const() {
        return KeyPattern::Const(c);
    }
    if let (Some(zone), Some((Some(var), k))) = (zone, dbm::term(key)) {
        if let (Some(lo), Some(hi)) = (zone.var_min(&var), zone.var_max(&var)) {
            if lo == hi {
                if let Some(v) = i128::from(lo).checked_add(k).and_then(|v| u64::try_from(v).ok()) {
                    return KeyPattern::Const(v);
                }
            }
        }
    }
    if let Expr::Param(p) = key {
        return KeyPattern::Param(p.clone());
    }
    KeyPattern::Top
}

fn classify_addr(to: &Expr) -> AddrPattern {
    match to {
        Expr::Caller => AddrPattern::Caller,
        Expr::Param(p) => AddrPattern::Param(p.clone()),
        _ => AddrPattern::Top,
    }
}

struct Collector<'a> {
    flow: &'a BodyAnalysis,
    default_env: ir::Env,
    summary: AccessSummary,
}

impl Collector<'_> {
    /// Records every read an expression performs; map keys classified
    /// against the store observed at `path` (or the block terminator's
    /// replayed store for condition expressions).
    fn reads(
        &mut self,
        expr: &Expr,
        env: Option<&ir::Env>,
        zone: Option<&dbm::Zone>,
        path: &[u32],
    ) {
        match expr {
            Expr::Global(g) => {
                self.summary.globals_read.insert(g.clone());
            }
            Expr::Balance => self.summary.reads_balance = true,
            Expr::MapGet { map, key } | Expr::MapContains { map, key } => {
                let pattern = classify_key(key, env, zone, &self.default_env);
                self.summary.maps.push(MapSite {
                    map: map.clone(),
                    key: pattern,
                    write: false,
                    path: path.to_vec(),
                });
                self.reads(key, env, zone, path);
            }
            Expr::Hash(parts) => {
                for p in parts {
                    self.reads(p, env, zone, path);
                }
            }
            Expr::Bin(_, a, b) => {
                self.reads(a, env, zone, path);
                self.reads(b, env, zone, path);
            }
            Expr::Not(inner) => self.reads(inner, env, zone, path),
            Expr::UInt(_) | Expr::Param(_) | Expr::Caller => {}
        }
    }

    fn walk_body(&mut self) {
        for b in 0..self.flow.cfg.blocks.len() {
            if !self.flow.reachable(b) {
                continue;
            }
            for inst in &self.flow.cfg.blocks[b].insts.clone() {
                let path = inst.path().to_vec();
                let env = self.flow.env_at(&path).cloned();
                let zone = self.flow.zone_at(&path).cloned();
                match inst {
                    Inst::Set { name, value, .. } => {
                        self.summary.globals_written.insert(name.clone());
                        self.reads(value, env.as_ref(), zone.as_ref(), &path);
                    }
                    Inst::MapPut { map, key, value, .. } => {
                        let pattern =
                            classify_key(key, env.as_ref(), zone.as_ref(), &self.default_env);
                        self.summary.maps.push(MapSite {
                            map: map.clone(),
                            key: pattern,
                            write: true,
                            path: path.clone(),
                        });
                        self.reads(key, env.as_ref(), zone.as_ref(), &path);
                        for part in value {
                            self.reads(part, env.as_ref(), zone.as_ref(), &path);
                        }
                    }
                    Inst::MapDel { map, key, .. } => {
                        let pattern =
                            classify_key(key, env.as_ref(), zone.as_ref(), &self.default_env);
                        self.summary.maps.push(MapSite {
                            map: map.clone(),
                            key: pattern,
                            write: true,
                            path: path.clone(),
                        });
                        self.reads(key, env.as_ref(), zone.as_ref(), &path);
                    }
                    Inst::Transfer { to, amount, .. } => {
                        self.summary
                            .transfers
                            .push(TransferSite { to: classify_addr(to), path: path.clone() });
                        self.reads(to, env.as_ref(), zone.as_ref(), &path);
                        self.reads(amount, env.as_ref(), zone.as_ref(), &path);
                    }
                    Inst::Emit { parts, .. } => {
                        for part in parts {
                            self.reads(part, env.as_ref(), zone.as_ref(), &path);
                        }
                    }
                }
            }
            // Condition expressions in terminators read state too; the
            // replayed terminator store keeps mid-block assignments
            // from laundering a stale constant into a key pattern.
            let term = self.flow.cfg.blocks[b].term.clone();
            let env = self.flow.term_env(b);
            match &term {
                Term::Branch { cond, path, .. } => {
                    self.reads(cond, env.as_ref(), None, path);
                }
                Term::Require { cond, src, .. } => {
                    let path = match src {
                        ir::Src::Stmt(p) => p.clone(),
                        ir::Src::PhaseCond => Vec::new(),
                    };
                    self.reads(cond, env.as_ref(), None, &path);
                }
                Term::Goto(_) | Term::Return => {}
            }
        }
    }
}

/// Summarizes the body a [`BodyAnalysis`] was computed for. The flow's
/// owner decides whether API extras (pay/return expressions, phase
/// effects) apply — this is the entry point the lint pass reuses so the
/// CFG is analyzed once per body.
pub fn summary_for_flow(program: &Program, flow: &BodyAnalysis) -> AccessSummary {
    let mut c =
        Collector { flow, default_env: ir::Env::default(), summary: AccessSummary::default() };
    c.walk_body();
    let mut summary = c.summary;
    match flow.cfg.owner {
        Owner::Constructor => {
            // The generated constructors write the creator/phase cells
            // and (on the AVM) every declared global; model all globals
            // as written — deployment is resolved conservatively at
            // runtime anyway, so this only affects reporting.
            summary.writes_phase = true;
            for g in &program.globals {
                summary.globals_written.insert(g.name.clone());
            }
        }
        Owner::Api { phase, api } => {
            let phase_decl = &program.phases[phase as usize];
            let api_decl = &phase_decl.apis[api as usize];
            summary.reads_phase = true;
            summary.uses_pay = api_decl.pay.is_some();
            let default_env = ir::Env::default();
            let mut extra = Collector {
                flow,
                default_env: ir::Env::default(),
                summary: AccessSummary::default(),
            };
            if let Some(pay) = &api_decl.pay {
                extra.reads(pay, Some(&default_env), None, &[]);
            }
            // The epilogue evaluates the return value and re-checks the
            // phase condition after the body ran: classify against the
            // exit stores of nothing in particular — the default (⊤)
            // store keeps constants and parameters and nothing else.
            extra.reads(&api_decl.returns, Some(&default_env), None, &[]);
            let extra = extra.summary;
            summary.globals_read.extend(extra.globals_read);
            summary.reads_balance |= extra.reads_balance;
            summary.maps.extend(extra.maps);

            // Phase-advance refinement: the counter can only move when
            // the body changes an input of the phase condition.
            let mut fp = CondFootprint::default();
            cond_footprint(&phase_decl.while_cond, &mut fp);
            let writes_cond_global = fp.globals.iter().any(|g| summary.globals_written.contains(g));
            let writes_cond_map =
                summary.maps.iter().any(|site| site.write && fp.maps.contains(&site.map));
            let moves_balance = fp.balance && !summary.transfers.is_empty();
            summary.writes_phase = writes_cond_global || writes_cond_map || moves_balance;
        }
    }
    summary
}

/// What kind of dispatch entry a [`MethodSummary`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    /// A phase API.
    Api,
    /// A generated `view_<global>` read-only entry (EVM dispatcher
    /// only).
    View,
    /// The generated `closeContract` entry.
    Close,
}

/// One dispatchable method with its summary and the ABI facts needed to
/// resolve concrete calls.
#[derive(Debug, Clone)]
pub struct MethodSummary {
    /// Dispatch name (`put`, `view_open`, `closeContract`, …).
    pub name: String,
    /// Phase name for APIs, `None` for views/close.
    pub phase: Option<String>,
    /// Dispatch kind.
    pub kind: MethodKind,
    /// The access summary.
    pub summary: AccessSummary,
    selector: [u8; 4],
    layout: Vec<(String, Ty, usize, usize)>,
    params: Vec<(String, Ty)>,
}

/// Compile-time access summaries for every dispatchable method of one
/// contract, resolvable against concrete calls on either backend.
#[derive(Debug, Clone)]
pub struct ContractSummaries {
    /// Contract name.
    pub name: String,
    /// Constructor summary (reporting only; deployments resolve
    /// conservatively at runtime).
    pub constructor: AccessSummary,
    /// Dispatchable methods: phase APIs, EVM views, `closeContract`.
    pub methods: Vec<MethodSummary>,
    global_index: HashMap<String, usize>,
    map_index: HashMap<String, usize>,
}

/// Runs the access-summary pass over a checked program.
pub fn summarize(program: &Program) -> ContractSummaries {
    let mut methods = Vec::new();
    for (phase_idx, phase) in program.phases.iter().enumerate() {
        for (api_idx, api) in phase.apis.iter().enumerate() {
            let flow = ir::analyze_api(program, phase_idx, api_idx);
            let summary = summary_for_flow(program, &flow);
            methods.push(MethodSummary {
                name: api.name.clone(),
                phase: Some(phase.name.clone()),
                kind: MethodKind::Api,
                summary,
                selector: pol_evm::abi::selector(&evm_backend::signature(&api.name, &api.params)),
                layout: evm_backend::layout(&api.params),
                params: api.params.clone(),
            });
        }
    }
    for global in program.globals.iter().filter(|g| g.viewable) {
        let name = format!("view_{}", global.name);
        let mut summary = AccessSummary::default();
        summary.globals_read.insert(global.name.clone());
        methods.push(MethodSummary {
            name: name.clone(),
            phase: None,
            kind: MethodKind::View,
            summary,
            selector: pol_evm::abi::selector(&evm_backend::signature(&name, &[])),
            layout: Vec::new(),
            params: Vec::new(),
        });
    }
    let close = AccessSummary {
        reads_balance: true,
        reads_phase: true,
        transfers: vec![TransferSite { to: AddrPattern::Top, path: Vec::new() }],
        ..AccessSummary::default()
    };
    methods.push(MethodSummary {
        name: "closeContract".into(),
        phase: None,
        kind: MethodKind::Close,
        summary: close,
        selector: pol_evm::abi::selector("closeContract()"),
        layout: Vec::new(),
        params: Vec::new(),
    });

    let flow = ir::analyze_constructor(program);
    let constructor = summary_for_flow(program, &flow);
    ContractSummaries {
        name: program.name.clone(),
        constructor,
        methods,
        global_index: program
            .globals
            .iter()
            .enumerate()
            .map(|(i, g)| (g.name.clone(), i))
            .collect(),
        map_index: program.maps.iter().enumerate().map(|(i, m)| (m.name.clone(), i)).collect(),
    }
}

/// The 32-byte big-endian storage-slot word for a reserved/global slot.
fn slot_word(slot: u64) -> [u8; 32] {
    Word::from_u128(u128::from(slot)).to_be_bytes()
}

/// The word CALLDATALOAD observes at `offset` (zero-padded past the
/// end, exactly like the EVM).
fn calldata_word(data: &[u8], offset: usize) -> [u8; 32] {
    let mut word = [0u8; 32];
    for (i, b) in word.iter_mut().enumerate() {
        *b = data.get(offset + i).copied().unwrap_or(0);
    }
    word
}

impl ContractSummaries {
    /// Looks up a method by dispatch name.
    pub fn method(&self, name: &str) -> Option<&MethodSummary> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// The storage prefix claiming every cell of `contract` (EVM ⊤
    /// fallback for one contract).
    fn storage_prefix(contract: Address) -> Vec<u8> {
        encode_key(&StateKey::Storage(contract, [0u8; 32]))[..21].to_vec()
    }

    /// The prefix claiming every balance (⊤ transfer recipients).
    fn balance_prefix() -> Vec<u8> {
        encode_key(&StateKey::Balance(Address::ZERO))[..1].to_vec()
    }

    /// The prefix claiming every entry of one AVM map.
    fn box_prefix(app_id: u64, map: &str) -> Vec<u8> {
        let mut head = map.as_bytes().to_vec();
        head.push(b':');
        encode_key(&StateKey::AppBox(app_id, head))
    }

    /// Resolves an EVM call against the summaries: returns sound claims
    /// for the state keys the call may touch, or `None` when no sound
    /// claim can be made. The caller adds fee-settlement claims.
    ///
    /// Mirrors the generated dispatcher: the selector is the first four
    /// calldata bytes (zero-padded), an unknown selector reverts after
    /// reading only the code, and attached value moves before dispatch.
    pub fn resolve_evm_call(
        &self,
        contract: Address,
        sender: Address,
        value: u128,
        calldata: &[u8],
    ) -> Option<AccessClaims> {
        let mut claims = AccessClaims::default();
        claims.read(StateKey::Code(contract));
        if value > 0 {
            claims.read_write(StateKey::Balance(sender));
            claims.read_write(StateKey::Balance(contract));
        }
        let selector = {
            let w = calldata_word(calldata, 0);
            [w[0], w[1], w[2], w[3]]
        };
        let Some(method) = self.methods.iter().find(|m| m.selector == selector) else {
            return Some(claims); // unknown selector: dispatcher reverts
        };
        let s = &method.summary;
        let slot_key = |slot: u64| StateKey::Storage(contract, slot_word(slot));

        if matches!(method.kind, MethodKind::Close) {
            claims.read(slot_key(SLOT_PHASE));
            claims.read(slot_key(SLOT_CREATOR));
            claims.read_write(StateKey::Balance(contract));
            claims.read_write_prefix(Self::balance_prefix());
            return Some(claims);
        }
        if s.reads_phase {
            if s.writes_phase {
                claims.read_write(slot_key(SLOT_PHASE));
            } else {
                claims.read(slot_key(SLOT_PHASE));
            }
        }
        for g in &s.globals_read {
            if !s.globals_written.contains(g) {
                claims.read(slot_key(global_slot(*self.global_index.get(g)?)));
            }
        }
        for g in &s.globals_written {
            claims.read_write(slot_key(global_slot(*self.global_index.get(g)?)));
        }
        let param_word = |name: &str| -> Option<[u8; 32]> {
            let (_, _, off, _) = method.layout.iter().find(|(n, _, _, _)| n == name)?;
            Some(calldata_word(calldata, 4 + off))
        };
        for site in &s.maps {
            let idx = *self.map_index.get(&site.map)?;
            let key_word = match &site.key {
                KeyPattern::Const(k) => Some(Word::from_u128(u128::from(*k)).to_be_bytes()),
                KeyPattern::Param(p) => param_word(p),
                KeyPattern::Top => None,
            };
            match key_word {
                Some(word) => {
                    let mut preimage = [0u8; 64];
                    preimage[..32].copy_from_slice(&word);
                    preimage[32..].copy_from_slice(&slot_word(MAP_SLOT_BASE + idx as u64));
                    let key = StateKey::Storage(contract, keccak256(&preimage));
                    if site.write {
                        claims.read_write(key);
                    } else {
                        claims.read(key);
                    }
                }
                None => {
                    if site.write {
                        claims.read_write_prefix(Self::storage_prefix(contract));
                    } else {
                        claims.read_prefix(Self::storage_prefix(contract));
                    }
                }
            }
        }
        if s.reads_balance || !s.transfers.is_empty() {
            claims.read(StateKey::Balance(contract));
        }
        if !s.transfers.is_empty() {
            claims.read_write(StateKey::Balance(contract));
        }
        for site in &s.transfers {
            match &site.to {
                AddrPattern::Caller => claims.read_write(StateKey::Balance(sender)),
                AddrPattern::Param(p) => {
                    let word = param_word(p)?;
                    claims.read_write(StateKey::Balance(Word::from_be_bytes(&word).to_address()));
                }
                AddrPattern::Top => claims.read_write_prefix(Self::balance_prefix()),
            }
        }
        Some(claims)
    }

    /// Resolves an AVM application call against the summaries; the
    /// first app arg is the dispatch symbol and parameters follow in
    /// declaration order (`uint` args are 8-byte big-endian, addresses
    /// raw 20 bytes — see [`crate::backend::avm`]).
    pub fn resolve_app_call(
        &self,
        app_id: u64,
        sender: Address,
        payment: u64,
        args: &[Vec<u8>],
    ) -> Option<AccessClaims> {
        let mut claims = AccessClaims::default();
        claims.read(StateKey::AppProgram(app_id));
        let escrow = app_address(app_id);
        if payment > 0 {
            claims.read_write(StateKey::Balance(sender));
            claims.read_write(StateKey::Balance(escrow));
        }
        let Some(symbol) = args.first() else {
            return Some(claims); // missing dispatch arg: rejected
        };
        let method = self
            .methods
            .iter()
            .filter(|m| !matches!(m.kind, MethodKind::View)) // views are EVM-only entries
            .find(|m| m.name.as_bytes() == symbol.as_slice());
        let Some(method) = method else {
            return Some(claims); // unknown symbol: rejected
        };
        let s = &method.summary;
        let global_key = |name: &[u8]| StateKey::AppGlobal(app_id, name.to_vec());

        if matches!(method.kind, MethodKind::Close) {
            claims.read(global_key(avm_backend::KEY_PHASE));
            claims.read(global_key(avm_backend::KEY_CREATOR));
            claims.read_write(StateKey::Balance(escrow));
            claims.read_write_prefix(Self::balance_prefix());
            return Some(claims);
        }
        if s.reads_phase {
            if s.writes_phase {
                claims.read_write(global_key(avm_backend::KEY_PHASE));
            } else {
                claims.read(global_key(avm_backend::KEY_PHASE));
            }
        }
        for g in &s.globals_read {
            if !s.globals_written.contains(g) {
                claims.read(global_key(g.as_bytes()));
            }
        }
        for g in &s.globals_written {
            claims.read_write(global_key(g.as_bytes()));
        }
        let param_arg = |name: &str| -> Option<&[u8]> {
            let pos = method.params.iter().position(|(n, _)| n == name)?;
            args.get(1 + pos).map(Vec::as_slice)
        };
        for site in &s.maps {
            self.map_index.get(&site.map)?;
            let key_bytes: Option<[u8; 8]> = match &site.key {
                KeyPattern::Const(k) => Some(k.to_be_bytes()),
                // A key argument that is not the 8-byte uint encoding
                // makes the call's footprint unpredictable from here —
                // refuse to claim rather than widening.
                KeyPattern::Param(p) => Some(param_arg(p)?.try_into().ok()?),
                KeyPattern::Top => None,
            };
            match key_bytes {
                Some(kb) => {
                    let mut box_key = site.map.as_bytes().to_vec();
                    box_key.push(b':');
                    box_key.extend_from_slice(&kb);
                    let key = StateKey::AppBox(app_id, box_key);
                    if site.write {
                        claims.read_write(key);
                    } else {
                        claims.read(key);
                    }
                }
                None => {
                    let prefix = Self::box_prefix(app_id, &site.map);
                    if site.write {
                        claims.read_write_prefix(prefix);
                    } else {
                        claims.read_prefix(prefix);
                    }
                }
            }
        }
        if s.reads_balance || !s.transfers.is_empty() {
            claims.read(StateKey::Balance(escrow));
        }
        if !s.transfers.is_empty() {
            claims.read_write(StateKey::Balance(escrow));
        }
        for site in &s.transfers {
            match &site.to {
                AddrPattern::Caller => claims.read_write(StateKey::Balance(sender)),
                AddrPattern::Param(p) => {
                    let raw: [u8; 20] = param_arg(p)?.try_into().ok()?;
                    claims.read_write(StateKey::Balance(Address(raw)));
                }
                AddrPattern::Top => claims.read_write_prefix(Self::balance_prefix()),
            }
        }
        Some(claims)
    }
}

// ------------------------------------------------------- reporting --

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn key_pattern_label(p: &KeyPattern) -> String {
    match p {
        KeyPattern::Const(c) => format!("const:{c}"),
        KeyPattern::Param(name) => format!("param:{name}"),
        KeyPattern::Top => "top".to_string(),
    }
}

fn addr_pattern_label(p: &AddrPattern) -> String {
    match p {
        AddrPattern::Caller => "caller".to_string(),
        AddrPattern::Param(name) => format!("param:{name}"),
        AddrPattern::Top => "top".to_string(),
    }
}

fn summary_json(s: &AccessSummary, indent: &str) -> String {
    let list =
        |items: &BTreeSet<String>| items.iter().map(|g| json_str(g)).collect::<Vec<_>>().join(", ");
    let maps = s
        .maps
        .iter()
        .map(|m| {
            format!(
                "{{\"map\": {}, \"key\": {}, \"mode\": {}}}",
                json_str(&m.map),
                json_str(&key_pattern_label(&m.key)),
                json_str(if m.write { "write" } else { "read" }),
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let transfers = s
        .transfers
        .iter()
        .map(|t| json_str(&addr_pattern_label(&t.to)))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\n{indent}  \"globals_read\": [{}],\n{indent}  \"globals_written\": [{}],\n\
         {indent}  \"maps\": [{maps}],\n{indent}  \"transfers\": [{transfers}],\n\
         {indent}  \"reads_balance\": {},\n{indent}  \"reads_phase\": {},\n\
         {indent}  \"writes_phase\": {},\n{indent}  \"precise\": {}\n{indent}}}",
        list(&s.globals_read),
        list(&s.globals_written),
        s.reads_balance,
        s.reads_phase,
        s.writes_phase,
        s.is_precise(),
    )
}

impl ContractSummaries {
    /// Deterministic JSON rendering of the summaries (the
    /// `polc summaries --json` artifact).
    pub fn to_json(&self, file: &str, indent: &str) -> String {
        let methods = self
            .methods
            .iter()
            .map(|m| {
                format!(
                    "{indent}    {{\"name\": {}, \"phase\": {}, \"kind\": {}, \"summary\": {}}}",
                    json_str(&m.name),
                    m.phase.as_ref().map_or("null".to_string(), |p| json_str(p)),
                    json_str(match m.kind {
                        MethodKind::Api => "api",
                        MethodKind::View => "view",
                        MethodKind::Close => "close",
                    }),
                    summary_json(&m.summary, &format!("{indent}    ")),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{indent}{{\n{indent}  \"file\": {},\n{indent}  \"name\": {},\n\
             {indent}  \"constructor\": {},\n{indent}  \"methods\": [\n{methods}\n{indent}  ]\n{indent}}}",
            json_str(file),
            json_str(&self.name),
            summary_json(&self.constructor, &format!("{indent}  ")),
        )
    }

    /// Human-readable rendering (the `polc summaries` text output).
    pub fn render_text(&self) -> String {
        let mut out = format!("contract {}\n", self.name);
        for m in &self.methods {
            let s = &m.summary;
            let mut parts = Vec::new();
            if !s.globals_read.is_empty() {
                parts.push(format!(
                    "reads {{{}}}",
                    s.globals_read.iter().cloned().collect::<Vec<_>>().join(", ")
                ));
            }
            if !s.globals_written.is_empty() {
                parts.push(format!(
                    "writes {{{}}}",
                    s.globals_written.iter().cloned().collect::<Vec<_>>().join(", ")
                ));
            }
            for site in &s.maps {
                parts.push(format!(
                    "{} {}[{}]",
                    if site.write { "writes" } else { "reads" },
                    site.map,
                    key_pattern_label(&site.key),
                ));
            }
            for t in &s.transfers {
                parts.push(format!("transfers→{}", addr_pattern_label(&t.to)));
            }
            if s.reads_balance {
                parts.push("reads balance".into());
            }
            if s.writes_phase {
                parts.push("may advance phase".into());
            }
            let precision = if s.is_precise() { "precise" } else { "⊤" };
            out.push_str(&format!(
                "  {:<18} [{precision}] {}\n",
                m.name,
                if parts.is_empty() { "pure".to_string() } else { parts.join("; ") },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn pol_v1() -> Program {
        let src = include_str!("../../core/contracts/proof_of_location.pol");
        let program = parse(src).expect("parses");
        assert!(crate::check::check(&program).is_empty());
        program
    }

    #[test]
    fn proof_of_location_methods_are_precise() {
        let summaries = summarize(&pol_v1());
        for m in &summaries.methods {
            // closeContract is conservative by construction (it pays out
            // to the creator read from state) — every user method must
            // stay precise.
            if m.kind == MethodKind::Close {
                continue;
            }
            assert!(m.summary.is_precise(), "{} degraded: {:?}", m.name, m.summary.degradations());
        }
        let insert = summaries.method("insert_data").expect("api");
        assert!(insert.summary.writes_phase, "insert_data decrements availableSits");
        assert!(insert
            .summary
            .maps
            .iter()
            .any(|s| s.write && s.key == KeyPattern::Param("did".into())));
        let money = summaries.method("insert_money").expect("api");
        assert!(!money.summary.writes_phase, "insert_money cannot falsify toVerify > 0");
        assert!(money.summary.reads_balance, "returns the balance");
        let verify = summaries.method("verify").expect("api");
        assert!(verify.summary.writes_phase);
        assert!(verify
            .summary
            .transfers
            .iter()
            .all(|t| t.to == AddrPattern::Param("wallet".into())));
    }

    #[test]
    fn evm_resolution_pins_param_keyed_slots() {
        let program = pol_v1();
        let summaries = summarize(&program);
        let compiled = crate::backend::compile(&program).expect("compiles");
        let contract = Address([7u8; 20]);
        let sender = Address([9u8; 20]);
        let calldata = compiled
            .evm
            .encode_call(
                "insert_data",
                &[
                    crate::backend::AbiValue::Bytes(vec![1u8; 224]),
                    crate::backend::AbiValue::Word(42),
                ],
            )
            .expect("encodes");
        let claims = summaries.resolve_evm_call(contract, sender, 0, &calldata).expect("resolves");
        assert!(claims.is_exact(), "param-keyed method must resolve exactly: {claims:?}");
        // Distinct DIDs resolve to distinct map slots → calls commute.
        let other = compiled
            .evm
            .encode_call(
                "insert_data",
                &[
                    crate::backend::AbiValue::Bytes(vec![1u8; 224]),
                    crate::backend::AbiValue::Word(43),
                ],
            )
            .expect("encodes");
        let other_claims =
            summaries.resolve_evm_call(contract, Address([8u8; 20]), 0, &other).expect("resolves");
        // Both write availableSits/toVerify and the phase slot, so they
        // do NOT commute — but their map-slot claims must differ.
        assert_ne!(claims, other_claims);
        assert!(!claims.commutes_with(&other_claims), "both write the seat counters");

        // Unknown selectors revert after reading only the code.
        let unknown = summaries
            .resolve_evm_call(contract, sender, 0, &[0xde, 0xad, 0xbe, 0xef])
            .expect("resolves");
        assert!(unknown.writes.is_empty());
        assert_eq!(unknown.reads.len(), 1);
    }

    #[test]
    fn avm_resolution_pins_box_keys_and_rejects_malformed_args() {
        let summaries = summarize(&pol_v1());
        let sender = Address([9u8; 20]);
        let args = vec![b"insert_data".to_vec(), vec![1u8; 224], 42u64.to_be_bytes().to_vec()];
        let claims = summaries.resolve_app_call(5, sender, 0, &args).expect("resolves");
        assert!(claims.is_exact(), "{claims:?}");
        let pinned = claims.writes.iter().any(|c| {
            matches!(c, pol_ledger::KeyClaim::Exact(StateKey::AppBox(5, k))
                if k.starts_with(b"provers:"))
        });
        assert!(pinned, "box key must be pinned: {claims:?}");
        // A malformed (non-8-byte) key argument cannot be resolved.
        let bad = vec![b"insert_data".to_vec(), vec![1u8; 224], vec![1, 2, 3]];
        assert_eq!(summaries.resolve_app_call(5, sender, 0, &bad), None);
    }

    #[test]
    fn json_rendering_is_deterministic_and_marks_precision() {
        let summaries = summarize(&pol_v1());
        let a = summaries.to_json("x.pol", "");
        let b = summaries.to_json("x.pol", "");
        assert_eq!(a, b);
        assert!(a.contains("\"precise\": true"));
        assert!(a.contains("\"key\": \"param:did\""));
    }
}
