//! A blockchain-agnostic smart contract language.
//!
//! This crate is the Rust equivalent of the role Reach plays in the
//! paper: **one contract source, compiled to every supported chain**,
//! with a static verifier and a conservative cost analysis run before any
//! code is emitted.
//!
//! * [`ast`] — the contract model: one *creator* participant with
//!   constructor fields, *phases* of concurrently-callable *APIs*
//!   (Reach's `parallelReduce`), read-only *views*, key→commitment
//!   *maps*, and native-token transfers;
//! * [`check`] — the type checker;
//! * [`verify`] — the theorem verifier (token linearity, map cleanup,
//!   guarded transfers, …) run in both honest and dishonest participant
//!   modes, as Reach does ("Verifying when ALL participants are honest /
//!   when NO participants are honest", Fig. 2.11);
//! * [`analyze`] — the conservative cost analysis of Fig. 5.1 (per-chain
//!   deploy/call costs, state footprint, step counts);
//! * [`backend::evm`] — compiles to EVM init+runtime bytecode using the
//!   state-commitment storage layout (maps hold 32-byte commitments, raw
//!   data travels in calldata and logs);
//! * [`backend::avm`] — compiles to an AVM approval program using boxes
//!   for maps and inner transactions for payouts.
//!
//! # Examples
//!
//! ```
//! use pol_lang::ast::*;
//!
//! let program = Program::counter_example();
//! assert!(pol_lang::check::check(&program).is_empty());
//! let report = pol_lang::verify::verify(&program);
//! assert!(report.failures.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod analyze;
pub mod ast;
pub mod backend;
pub mod check;
pub mod dbm;
pub mod diag;
pub mod gas;
pub mod ir;
pub mod lint;
pub mod parse;
pub mod pretty;
pub mod verify;
pub mod xcontract;

pub use ast::Program;
pub use diag::{Diagnostic, Severity, Span};
pub use parse::{parse, ParseError};

fn join_diags(diags: &[Diagnostic]) -> String {
    diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("; ")
}

/// Errors raised by the compiler pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// The program failed type checking.
    TypeErrors(Vec<Diagnostic>),
    /// The program failed verification.
    VerificationFailed(Vec<Diagnostic>),
    /// An error-severity lint diagnostic fired.
    LintErrors(Vec<Diagnostic>),
    /// Emitted bytecode failed post-emission verification or the cost
    /// cross-check against the conservative analysis bound.
    BytecodeRejected(Vec<Diagnostic>),
    /// A backend limitation was hit.
    Backend(String),
}

impl LangError {
    /// The structured diagnostics behind this error, when it carries any.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        match self {
            LangError::TypeErrors(d)
            | LangError::VerificationFailed(d)
            | LangError::LintErrors(d)
            | LangError::BytecodeRejected(d) => d,
            LangError::Backend(_) => &[],
        }
    }
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LangError::TypeErrors(errs) => write!(f, "type errors: {}", join_diags(errs)),
            LangError::VerificationFailed(fails) => {
                write!(f, "verification failed: {}", join_diags(fails))
            }
            LangError::LintErrors(errs) => write!(f, "lint errors: {}", join_diags(errs)),
            LangError::BytecodeRejected(errs) => {
                write!(f, "bytecode rejected: {}", join_diags(errs))
            }
            LangError::Backend(msg) => write!(f, "backend error: {msg}"),
        }
    }
}

impl std::error::Error for LangError {}
