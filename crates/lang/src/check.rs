//! The type checker.
//!
//! Every rejection is a structured [`Diagnostic`] carrying an `E…`
//! code and, for parsed programs, the byte span of the offending
//! declaration or statement.

use crate::ast::{BinOp, Expr, GlobalInit, Program, Stmt, Ty};
use crate::diag::{Diagnostic, NodePath, Owner, Span};

/// Scope of one checking pass: the parameters in scope and whether
/// globals may be referenced.
struct Ctx<'p> {
    program: &'p Program,
    params: &'p [(String, Ty)],
    allow_params: bool,
    /// Span attributed to diagnostics raised while checking the current
    /// statement or expression.
    at: Span,
    errors: Vec<Diagnostic>,
}

/// Type-checks a program, returning all diagnostics (empty = well typed).
pub fn check(program: &Program) -> Vec<Diagnostic> {
    let mut errors = Vec::new();

    // Globals: unique names, valid initialisers. Duplicates point at the
    // later declaration, with a note at the original.
    for (i, g) in program.globals.iter().enumerate() {
        if let Some(first) = program.globals[..i].iter().position(|o| o.name == g.name) {
            errors.push(
                Diagnostic::error("E0001", format!("duplicate global {:?}", g.name))
                    .at(program.spans.get(&NodePath::Global(i)))
                    .note(program.spans.get(&NodePath::Global(first)), "first declared here")
                    .suggest("rename one of the declarations"),
            );
        }
        let at = program.spans.get(&NodePath::Global(i));
        match &g.init {
            GlobalInit::FromField(field) => match program.field_ty(field) {
                None => errors.push(
                    Diagnostic::error(
                        "E0002",
                        format!("global {:?} initialised from unknown field {:?}", g.name, field),
                    )
                    .at(at),
                ),
                Some(ft) if ft != g.ty => errors.push(
                    Diagnostic::error(
                        "E0003",
                        format!(
                            "global {:?} has type {:?} but field {:?} has {:?}",
                            g.name, g.ty, field, ft
                        ),
                    )
                    .at(at),
                ),
                Some(_) => {}
            },
            GlobalInit::Const(_) => {
                if g.ty != Ty::UInt {
                    errors.push(
                        Diagnostic::error(
                            "E0004",
                            format!("constant-initialised global {:?} must be UInt", g.name),
                        )
                        .at(at),
                    );
                }
            }
            GlobalInit::CreatorAddress => {
                if g.ty != Ty::Address {
                    errors.push(
                        Diagnostic::error(
                            "E0005",
                            format!("creator-address global {:?} must be Address", g.name),
                        )
                        .at(at),
                    );
                }
            }
        }
    }
    for (i, m) in program.maps.iter().enumerate() {
        if let Some(first) = program.maps[..i].iter().position(|o| o.name == m.name) {
            errors.push(
                Diagnostic::error("E0006", format!("duplicate map {:?}", m.name))
                    .at(program.spans.get(&NodePath::Map(i)))
                    .note(program.spans.get(&NodePath::Map(first)), "first declared here")
                    .suggest("rename one of the declarations"),
            );
        }
        if m.value_bytes == 0 {
            errors.push(
                Diagnostic::error("E0007", format!("map {:?} has zero-size values", m.name))
                    .at(program.spans.get(&NodePath::Map(i))),
            );
        }
    }

    // Constructor body: creator fields in scope.
    {
        let mut ctx = Ctx {
            program,
            params: &program.creator.fields,
            allow_params: true,
            at: Span::DUMMY,
            errors: Vec::new(),
        };
        check_block(&mut ctx, Owner::Constructor, &mut Vec::new(), &program.constructor);
        errors.extend(ctx.errors);
    }

    if program.phases.is_empty() {
        errors.push(
            Diagnostic::error("E0008", "program has no phases")
                .at(program.spans.get(&NodePath::ContractName)),
        );
    }

    let mut api_sites: std::collections::HashMap<&str, (usize, usize)> =
        std::collections::HashMap::new();
    for (phase_idx, phase) in program.phases.iter().enumerate() {
        // Phase conditions range over globals only.
        let no_params: Vec<(String, Ty)> = Vec::new();
        let mut ctx = Ctx {
            program,
            params: &no_params,
            allow_params: false,
            at: program.spans.get(&NodePath::PhaseCond(phase_idx)),
            errors: Vec::new(),
        };
        ctx.expect(&phase.while_cond, Ty::Bool, "phase condition");
        ctx.at = program.spans.get(&NodePath::Invariant(phase_idx));
        ctx.expect(&phase.invariant, Ty::Bool, "phase invariant");
        errors.extend(ctx.errors);

        for (api_idx, api) in phase.apis.iter().enumerate() {
            let api_span = program.spans.get(&NodePath::Api { phase: phase_idx, api: api_idx });
            match api_sites.entry(api.name.as_str()) {
                std::collections::hash_map::Entry::Occupied(first) => {
                    let &(fp, fa) = first.get();
                    errors.push(
                        Diagnostic::error("E0009", format!("duplicate api {:?}", api.name))
                            .at(api_span)
                            .note(
                                program.spans.get(&NodePath::Api { phase: fp, api: fa }),
                                "first declared here",
                            )
                            .suggest("api names are the dispatch symbols and must be unique"),
                    );
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert((phase_idx, api_idx));
                }
            }
            let mut ctx = Ctx {
                program,
                params: &api.params,
                allow_params: true,
                at: api_span,
                errors: Vec::new(),
            };
            if let Some(pay) = &api.pay {
                ctx.at = program.spans.get(&NodePath::ApiPay { phase: phase_idx, api: api_idx });
                ctx.expect(pay, Ty::UInt, "pay amount");
            }
            let owner = Owner::Api { phase: phase_idx as u32, api: api_idx as u32 };
            check_block(&mut ctx, owner, &mut Vec::new(), &api.body);
            ctx.at = program.spans.get(&NodePath::ApiReturns { phase: phase_idx, api: api_idx });
            ctx.expect(&api.returns, Ty::UInt, "api return");
            errors.extend(ctx.errors.into_iter().map(|mut d| {
                d.message = format!("api {:?}: {}", api.name, d.message);
                d
            }));
        }
    }
    errors
}

/// Checks every statement of a body, pointing `ctx.at` at each
/// statement's span before descending so expression-level diagnostics
/// land on the right source line.
fn check_block(ctx: &mut Ctx<'_>, owner: Owner, prefix: &mut Vec<u32>, stmts: &[Stmt]) {
    for (i, stmt) in stmts.iter().enumerate() {
        prefix.push(i as u32);
        ctx.at = ctx.program.spans.get(&NodePath::Stmt(owner, prefix.clone()));
        ctx.check_stmt_shallow(stmt);
        if let Stmt::If { then, otherwise, .. } = stmt {
            prefix.push(0);
            check_block(ctx, owner, prefix, then);
            prefix.pop();
            prefix.push(1);
            check_block(ctx, owner, prefix, otherwise);
            prefix.pop();
        }
        prefix.pop();
    }
}

impl Ctx<'_> {
    fn err(&mut self, code: &'static str, message: impl Into<String>) {
        self.errors.push(Diagnostic::error(code, message).at(self.at));
    }

    /// Checks one statement without descending into `If` arms (the
    /// walker does that with the correct span context).
    fn check_stmt_shallow(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Require(cond) => self.expect(cond, Ty::Bool, "require"),
            Stmt::GlobalSet { name, value } => match self.global_ty(name) {
                None => self.err("E0010", format!("assignment to unknown global {name:?}")),
                Some(Ty::Bytes(_)) => {
                    if let Some(ty) = self.infer(value) {
                        if ty.is_word() {
                            self.err(
                                "E0017",
                                format!("byte global {name:?} must be set from byte data"),
                            );
                        }
                    }
                }
                Some(ty) => self.expect(value, ty, "global assignment"),
            },
            Stmt::MapSet { map, key, value } => {
                if self.program.map_index(map).is_none() {
                    self.err("E0013", format!("unknown map {map:?}"));
                }
                self.expect(key, Ty::UInt, "map key");
                if value.is_empty() {
                    self.err("E0018", format!("map {map:?} set with empty value"));
                }
                for part in value {
                    let _ = self.infer(part); // any typed expr is storable
                }
            }
            Stmt::MapDelete { map, key } => {
                if self.program.map_index(map).is_none() {
                    self.err("E0013", format!("unknown map {map:?}"));
                }
                self.expect(key, Ty::UInt, "map key");
            }
            Stmt::Transfer { to, amount } => {
                if self.infer(to) != Some(Ty::Address) {
                    self.err("E0020", "transfer recipient must be an Address");
                }
                self.expect(amount, Ty::UInt, "transfer amount");
            }
            Stmt::If { cond, .. } => self.expect(cond, Ty::Bool, "if condition"),
            Stmt::Log(parts) => {
                for part in parts {
                    let _ = self.infer(part);
                }
            }
        }
    }

    fn global_ty(&self, name: &str) -> Option<Ty> {
        self.program.globals.iter().find(|g| g.name == name).map(|g| g.ty)
    }

    fn expect(&mut self, expr: &Expr, want: Ty, what: &str) {
        match self.infer(expr) {
            Some(got) if got == want => {}
            Some(got) => self.err("E0014", format!("{what}: expected {want:?}, got {got:?}")),
            None => {} // error already recorded
        }
    }

    fn infer(&mut self, expr: &Expr) -> Option<Ty> {
        match expr {
            Expr::UInt(_) => Some(Ty::UInt),
            Expr::Param(name) => {
                if !self.allow_params {
                    self.err("E0012", format!("parameter {name:?} referenced outside an api body"));
                    return None;
                }
                match self.params.iter().find(|(n, _)| n == name) {
                    Some((_, ty)) => Some(*ty),
                    None => {
                        self.err("E0011", format!("unknown parameter {name:?}"));
                        None
                    }
                }
            }
            Expr::Global(name) => match self.global_ty(name) {
                Some(ty) => Some(ty),
                None => {
                    self.err("E0010", format!("unknown global {name:?}"));
                    None
                }
            },
            Expr::Caller => Some(Ty::Address),
            Expr::Balance => Some(Ty::UInt),
            Expr::MapGet { map, key } | Expr::MapContains { map, key } => {
                if self.program.map_index(map).is_none() {
                    self.err("E0013", format!("unknown map {map:?}"));
                }
                self.expect(key, Ty::UInt, "map key");
                match expr {
                    Expr::MapGet { .. } => Some(Ty::Bytes(32)),
                    _ => Some(Ty::Bool),
                }
            }
            Expr::Hash(parts) => {
                if parts.is_empty() {
                    self.err("E0019", "hash of nothing");
                }
                for part in parts {
                    let _ = self.infer(part);
                }
                Some(Ty::Bytes(32))
            }
            Expr::Bin(op, lhs, rhs) => {
                let lt = self.infer(lhs)?;
                let rt = self.infer(rhs)?;
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                        if lt != Ty::UInt || rt != Ty::UInt {
                            self.err("E0016", format!("{op:?} needs UInt operands"));
                            None
                        } else {
                            Some(Ty::UInt)
                        }
                    }
                    BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => {
                        if lt != Ty::UInt || rt != Ty::UInt {
                            self.err("E0016", format!("{op:?} needs UInt operands"));
                            None
                        } else {
                            Some(Ty::Bool)
                        }
                    }
                    BinOp::Eq | BinOp::Ne => {
                        if lt != rt {
                            self.err("E0015", format!("{op:?} operands differ: {lt:?} vs {rt:?}"));
                            None
                        } else {
                            Some(Ty::Bool)
                        }
                    }
                    BinOp::And | BinOp::Or => {
                        if lt != Ty::Bool || rt != Ty::Bool {
                            self.err("E0016", format!("{op:?} needs Bool operands"));
                            None
                        } else {
                            Some(Ty::Bool)
                        }
                    }
                }
            }
            Expr::Not(inner) => {
                self.expect(inner, Ty::Bool, "not");
                Some(Ty::Bool)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    #[test]
    fn counter_is_well_typed() {
        assert!(check(&Program::counter_example()).is_empty());
    }

    #[test]
    fn unknown_global_reported() {
        let mut p = Program::counter_example();
        p.phases[0].apis[0]
            .body
            .push(Stmt::GlobalSet { name: "nope".into(), value: Expr::UInt(1) });
        let errs = check(&p);
        assert!(errs.iter().any(|e| e.message.contains("unknown global \"nope\"")), "{errs:?}");
        assert!(errs.iter().all(|e| e.is_error()));
    }

    #[test]
    fn arithmetic_on_bool_rejected() {
        let mut p = Program::counter_example();
        p.phases[0].apis[0].body.push(Stmt::Require(Expr::Bin(
            BinOp::Add,
            Box::new(Expr::UInt(1)),
            Box::new(Expr::UInt(2)),
        )));
        let errs = check(&p);
        assert!(errs.iter().any(|e| e.message.contains("expected Bool")), "{errs:?}");
    }

    #[test]
    fn phase_condition_cannot_use_params() {
        let mut p = Program::counter_example();
        p.phases[0].while_cond = Expr::gt(Expr::param("by"), Expr::UInt(0));
        let errs = check(&p);
        assert!(errs.iter().any(|e| e.message.contains("outside an api body")), "{errs:?}");
    }

    #[test]
    fn eq_type_mismatch_reported() {
        let mut p = Program::counter_example();
        p.phases[0].apis[0].body.push(Stmt::Require(Expr::eq(Expr::Caller, Expr::UInt(0))));
        let errs = check(&p);
        assert!(errs.iter().any(|e| e.message.contains("operands differ")), "{errs:?}");
    }

    #[test]
    fn missing_phase_reported() {
        let mut p = Program::counter_example();
        p.phases.clear();
        assert!(check(&p).iter().any(|e| e.message.contains("no phases")));
    }

    #[test]
    fn duplicate_api_names_reported() {
        let mut p = Program::counter_example();
        let api = p.phases[0].apis[0].clone();
        p.phases[0].apis.push(api);
        let errs = check(&p);
        assert!(errs.iter().any(|e| e.message.contains("duplicate api") && e.code == "E0009"));
    }

    #[test]
    fn duplicate_names_report_both_spans() {
        let src = r"
            contract dup {
                participant P { cap: uint }
                global left: uint = field(cap);
                global left: uint = 0;
                phase p while left > 0 invariant left >= 0 {
                    api f() -> left { left = left - 1; }
                }
            }
        ";
        let p = crate::parse::parse(src).unwrap();
        let errs = check(&p);
        let dup = errs.iter().find(|e| e.code == "E0001").expect("duplicate reported");
        // Primary span: the second declaration; note span: the first.
        assert_eq!(&src[dup.span.start..dup.span.end], "left");
        assert_eq!(dup.notes.len(), 1);
        let note = &dup.notes[0];
        assert_eq!(&src[note.span.start..note.span.end], "left");
        assert!(note.span.start < dup.span.start, "note points at the earlier declaration");
    }
}
