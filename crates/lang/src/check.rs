//! The type checker.

use crate::ast::{BinOp, Expr, GlobalInit, Program, Stmt, Ty};

/// Scope of one checking pass: the parameters in scope and whether
/// globals may be referenced.
struct Ctx<'p> {
    program: &'p Program,
    params: &'p [(String, Ty)],
    allow_params: bool,
    errors: Vec<String>,
}

/// Type-checks a program, returning all diagnostics (empty = well typed).
pub fn check(program: &Program) -> Vec<String> {
    let mut errors = Vec::new();

    // Globals: unique names, valid initialisers.
    for (i, g) in program.globals.iter().enumerate() {
        if program.globals.iter().skip(i + 1).any(|o| o.name == g.name) {
            errors.push(format!("duplicate global {:?}", g.name));
        }
        match &g.init {
            GlobalInit::FromField(field) => match program.field_ty(field) {
                None => errors.push(format!(
                    "global {:?} initialised from unknown field {:?}",
                    g.name, field
                )),
                Some(ft) if ft != g.ty => errors.push(format!(
                    "global {:?} has type {:?} but field {:?} has {:?}",
                    g.name, g.ty, field, ft
                )),
                Some(_) => {}
            },
            GlobalInit::Const(_) => {
                if g.ty != Ty::UInt {
                    errors.push(format!("constant-initialised global {:?} must be UInt", g.name));
                }
            }
            GlobalInit::CreatorAddress => {
                if g.ty != Ty::Address {
                    errors.push(format!("creator-address global {:?} must be Address", g.name));
                }
            }
        }
    }
    for (i, m) in program.maps.iter().enumerate() {
        if program.maps.iter().skip(i + 1).any(|o| o.name == m.name) {
            errors.push(format!("duplicate map {:?}", m.name));
        }
        if m.value_bytes == 0 {
            errors.push(format!("map {:?} has zero-size values", m.name));
        }
    }

    // Constructor body: creator fields in scope.
    {
        let mut ctx = Ctx {
            program,
            params: &program.creator.fields,
            allow_params: true,
            errors: Vec::new(),
        };
        for stmt in &program.constructor {
            ctx.check_stmt(stmt);
        }
        errors.extend(ctx.errors);
    }

    if program.phases.is_empty() {
        errors.push("program has no phases".into());
    }

    let mut api_names = std::collections::HashSet::new();
    for phase in &program.phases {
        // Phase conditions range over globals only.
        let no_params: Vec<(String, Ty)> = Vec::new();
        let mut ctx = Ctx { program, params: &no_params, allow_params: false, errors: Vec::new() };
        ctx.expect(&phase.while_cond, Ty::Bool, "phase condition");
        ctx.expect(&phase.invariant, Ty::Bool, "phase invariant");
        errors.extend(ctx.errors);

        for api in &phase.apis {
            if !api_names.insert(api.name.clone()) {
                errors.push(format!("duplicate api {:?}", api.name));
            }
            let mut ctx =
                Ctx { program, params: &api.params, allow_params: true, errors: Vec::new() };
            if let Some(pay) = &api.pay {
                ctx.expect(pay, Ty::UInt, "pay amount");
            }
            for stmt in &api.body {
                ctx.check_stmt(stmt);
            }
            ctx.expect(&api.returns, Ty::UInt, "api return");
            errors.extend(ctx.errors.into_iter().map(|e| format!("api {:?}: {e}", api.name)));
        }
    }
    errors
}

impl Ctx<'_> {
    fn check_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Require(cond) => self.expect(cond, Ty::Bool, "require"),
            Stmt::GlobalSet { name, value } => match self.global_ty(name) {
                None => self.errors.push(format!("assignment to unknown global {name:?}")),
                Some(Ty::Bytes(_)) => {
                    if let Some(ty) = self.infer(value) {
                        if ty.is_word() {
                            self.errors
                                .push(format!("byte global {name:?} must be set from byte data"));
                        }
                    }
                }
                Some(ty) => self.expect(value, ty, "global assignment"),
            },
            Stmt::MapSet { map, key, value } => {
                if self.program.map_index(map).is_none() {
                    self.errors.push(format!("unknown map {map:?}"));
                }
                self.expect(key, Ty::UInt, "map key");
                if value.is_empty() {
                    self.errors.push(format!("map {map:?} set with empty value"));
                }
                for part in value {
                    let _ = self.infer(part); // any typed expr is storable
                }
            }
            Stmt::MapDelete { map, key } => {
                if self.program.map_index(map).is_none() {
                    self.errors.push(format!("unknown map {map:?}"));
                }
                self.expect(key, Ty::UInt, "map key");
            }
            Stmt::Transfer { to, amount } => {
                if self.infer(to) != Some(Ty::Address) {
                    self.errors.push("transfer recipient must be an Address".into());
                }
                self.expect(amount, Ty::UInt, "transfer amount");
            }
            Stmt::If { cond, then, otherwise } => {
                self.expect(cond, Ty::Bool, "if condition");
                for s in then.iter().chain(otherwise) {
                    self.check_stmt(s);
                }
            }
            Stmt::Log(parts) => {
                for part in parts {
                    let _ = self.infer(part);
                }
            }
        }
    }

    fn global_ty(&self, name: &str) -> Option<Ty> {
        self.program.globals.iter().find(|g| g.name == name).map(|g| g.ty)
    }

    fn expect(&mut self, expr: &Expr, want: Ty, what: &str) {
        match self.infer(expr) {
            Some(got) if got == want => {}
            Some(got) => self.errors.push(format!("{what}: expected {want:?}, got {got:?}")),
            None => {} // error already recorded
        }
    }

    fn infer(&mut self, expr: &Expr) -> Option<Ty> {
        match expr {
            Expr::UInt(_) => Some(Ty::UInt),
            Expr::Param(name) => {
                if !self.allow_params {
                    self.errors.push(format!("parameter {name:?} referenced outside an api body"));
                    return None;
                }
                match self.params.iter().find(|(n, _)| n == name) {
                    Some((_, ty)) => Some(*ty),
                    None => {
                        self.errors.push(format!("unknown parameter {name:?}"));
                        None
                    }
                }
            }
            Expr::Global(name) => match self.global_ty(name) {
                Some(ty) => Some(ty),
                None => {
                    self.errors.push(format!("unknown global {name:?}"));
                    None
                }
            },
            Expr::Caller => Some(Ty::Address),
            Expr::Balance => Some(Ty::UInt),
            Expr::MapGet { map, key } | Expr::MapContains { map, key } => {
                if self.program.map_index(map).is_none() {
                    self.errors.push(format!("unknown map {map:?}"));
                }
                self.expect(key, Ty::UInt, "map key");
                match expr {
                    Expr::MapGet { .. } => Some(Ty::Bytes(32)),
                    _ => Some(Ty::Bool),
                }
            }
            Expr::Hash(parts) => {
                if parts.is_empty() {
                    self.errors.push("hash of nothing".into());
                }
                for part in parts {
                    let _ = self.infer(part);
                }
                Some(Ty::Bytes(32))
            }
            Expr::Bin(op, lhs, rhs) => {
                let lt = self.infer(lhs)?;
                let rt = self.infer(rhs)?;
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                        if lt != Ty::UInt || rt != Ty::UInt {
                            self.errors.push(format!("{op:?} needs UInt operands"));
                            None
                        } else {
                            Some(Ty::UInt)
                        }
                    }
                    BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => {
                        if lt != Ty::UInt || rt != Ty::UInt {
                            self.errors.push(format!("{op:?} needs UInt operands"));
                            None
                        } else {
                            Some(Ty::Bool)
                        }
                    }
                    BinOp::Eq | BinOp::Ne => {
                        if lt != rt {
                            self.errors.push(format!("{op:?} operands differ: {lt:?} vs {rt:?}"));
                            None
                        } else {
                            Some(Ty::Bool)
                        }
                    }
                    BinOp::And | BinOp::Or => {
                        if lt != Ty::Bool || rt != Ty::Bool {
                            self.errors.push(format!("{op:?} needs Bool operands"));
                            None
                        } else {
                            Some(Ty::Bool)
                        }
                    }
                }
            }
            Expr::Not(inner) => {
                self.expect(inner, Ty::Bool, "not");
                Some(Ty::Bool)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    #[test]
    fn counter_is_well_typed() {
        assert!(check(&Program::counter_example()).is_empty());
    }

    #[test]
    fn unknown_global_reported() {
        let mut p = Program::counter_example();
        p.phases[0].apis[0]
            .body
            .push(Stmt::GlobalSet { name: "nope".into(), value: Expr::UInt(1) });
        let errs = check(&p);
        assert!(errs.iter().any(|e| e.contains("unknown global \"nope\"")), "{errs:?}");
    }

    #[test]
    fn arithmetic_on_bool_rejected() {
        let mut p = Program::counter_example();
        p.phases[0].apis[0].body.push(Stmt::Require(Expr::Bin(
            BinOp::Add,
            Box::new(Expr::UInt(1)),
            Box::new(Expr::UInt(2)),
        )));
        let errs = check(&p);
        assert!(errs.iter().any(|e| e.contains("expected Bool")), "{errs:?}");
    }

    #[test]
    fn phase_condition_cannot_use_params() {
        let mut p = Program::counter_example();
        p.phases[0].while_cond = Expr::gt(Expr::param("by"), Expr::UInt(0));
        let errs = check(&p);
        assert!(errs.iter().any(|e| e.contains("outside an api body")), "{errs:?}");
    }

    #[test]
    fn eq_type_mismatch_reported() {
        let mut p = Program::counter_example();
        p.phases[0].apis[0].body.push(Stmt::Require(Expr::eq(Expr::Caller, Expr::UInt(0))));
        let errs = check(&p);
        assert!(errs.iter().any(|e| e.contains("operands differ")), "{errs:?}");
    }

    #[test]
    fn missing_phase_reported() {
        let mut p = Program::counter_example();
        p.phases.clear();
        assert!(check(&p).iter().any(|e| e.contains("no phases")));
    }

    #[test]
    fn duplicate_api_names_reported() {
        let mut p = Program::counter_example();
        let api = p.phases[0].apis[0].clone();
        p.phases[0].apis.push(api);
        assert!(check(&p).iter().any(|e| e.contains("duplicate api")));
    }
}
