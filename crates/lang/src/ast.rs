//! The contract model.
//!
//! A program has the Reach shape the paper's contract uses (§4.1):
//!
//! 1. a single **creator** participant publishes the constructor fields,
//!    which initialise the globals;
//! 2. one or more **phases** run in order; within a phase the listed
//!    **APIs** may be called concurrently (Reach's `parallelReduce`)
//!    while the phase condition holds;
//! 3. once every phase has ended, anyone may `closeContract`, which
//!    returns the remaining balance to the creator (discharging the
//!    token-linearity theorem).

/// Value types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// Unsigned 64-bit integer (`UInt` in Reach).
    UInt,
    /// Fixed-capacity byte string.
    Bytes(usize),
    /// An account address.
    Address,
    /// A boolean.
    Bool,
}

impl Ty {
    /// Whether the type is word-sized (fits a single VM stack slot).
    pub fn is_word(&self) -> bool {
        !matches!(self, Ty::Bytes(_))
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Less-than.
    Lt,
    /// Greater-than.
    Gt,
    /// Less-or-equal.
    Le,
    /// Greater-or-equal.
    Ge,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Logical and.
    And,
    /// Logical or.
    Or,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// An integer literal.
    UInt(u64),
    /// An API or constructor parameter, by name.
    Param(String),
    /// A global, by name.
    Global(String),
    /// The calling account.
    Caller,
    /// The contract's own balance.
    Balance,
    /// The stored commitment for `map[key]` (32-byte value; zero when
    /// absent).
    MapGet {
        /// Map name.
        map: String,
        /// Key expression (UInt).
        key: Box<Expr>,
    },
    /// Whether `map[key]` holds an entry.
    MapContains {
        /// Map name.
        map: String,
        /// Key expression (UInt).
        key: Box<Expr>,
    },
    /// Keccak-256 over the concatenation of the listed expressions
    /// (byte params are hashed raw; word expressions as 32-byte words on
    /// the EVM and 8-byte words on the AVM).
    Hash(Vec<Expr>),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
}

impl Expr {
    /// `a == b` convenience.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Eq, Box::new(a), Box::new(b))
    }

    /// `a > b` convenience.
    pub fn gt(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Gt, Box::new(a), Box::new(b))
    }

    /// `a >= b` convenience.
    pub fn ge(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Ge, Box::new(a), Box::new(b))
    }

    /// `a - b` convenience.
    #[allow(clippy::should_implement_trait)] // DSL constructor, not std::ops
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(a), Box::new(b))
    }

    /// Global reference convenience.
    pub fn global(name: &str) -> Expr {
        Expr::Global(name.to_string())
    }

    /// Parameter reference convenience.
    pub fn param(name: &str) -> Expr {
        Expr::Param(name.to_string())
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Abort (revert / reject) unless the condition holds.
    Require(Expr),
    /// Assign a global.
    GlobalSet {
        /// Global name.
        name: String,
        /// New value.
        value: Expr,
    },
    /// Store `map[key] = commit(value ‖ …)`, logging the raw bytes.
    MapSet {
        /// Map name.
        map: String,
        /// Key expression (UInt).
        key: Expr,
        /// Concatenated value parts.
        value: Vec<Expr>,
    },
    /// Delete `map[key]`.
    MapDelete {
        /// Map name.
        map: String,
        /// Key expression (UInt).
        key: Expr,
    },
    /// Pay out of the contract balance.
    Transfer {
        /// Recipient (Address-typed expression).
        to: Expr,
        /// Amount in base units.
        amount: Expr,
    },
    /// Conditional execution.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then: Vec<Stmt>,
        /// Else-branch.
        otherwise: Vec<Stmt>,
    },
    /// Emit an event with the given payload parts.
    Log(Vec<Expr>),
}

/// How a global is initialised at deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GlobalInit {
    /// From a creator constructor field of the same type.
    FromField(String),
    /// A constant.
    Const(u64),
    /// The deployer's address.
    CreatorAddress,
}

/// A global state cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDecl {
    /// Name.
    pub name: String,
    /// Type (byte-typed globals store commitments).
    pub ty: Ty,
    /// Initialiser.
    pub init: GlobalInit,
    /// Whether a read-only view is exposed for it.
    pub viewable: bool,
}

/// A key → commitment map (Reach `Map`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapDecl {
    /// Name.
    pub name: String,
    /// Declared capacity of the raw value in bytes (pre-commitment).
    pub value_bytes: usize,
}

/// An API: a function callable while its phase is active.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Api {
    /// Function name (also the dispatch symbol).
    pub name: String,
    /// Parameters.
    pub params: Vec<(String, Ty)>,
    /// Payment this call must attach: `None` forbids value, `Some(e)`
    /// requires the attached value to equal `e`.
    pub pay: Option<Expr>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Returned expression (UInt-typed).
    pub returns: Expr,
}

/// A phase: a `parallelReduce` round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Name (documentation only).
    pub name: String,
    /// Condition keeping the phase alive, over globals; re-evaluated
    /// after every API call, advancing to the next phase when false.
    pub while_cond: Expr,
    /// Invariant the verifier checks is preserved by every API.
    pub invariant: Expr,
    /// APIs callable during the phase.
    pub apis: Vec<Api>,
}

/// The creator participant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Participant {
    /// Participant name.
    pub name: String,
    /// Constructor fields published at deployment.
    pub fields: Vec<(String, Ty)>,
}

/// A full contract program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Contract name.
    pub name: String,
    /// The deploying participant.
    pub creator: Participant,
    /// Statements run at deployment (after globals are initialised),
    /// with the constructor fields in scope as parameters.
    pub constructor: Vec<Stmt>,
    /// Global state.
    pub globals: Vec<GlobalDecl>,
    /// Maps.
    pub maps: Vec<MapDecl>,
    /// Ordered phases.
    pub phases: Vec<Phase>,
    /// Source spans for diagnostics; empty for builder-built programs.
    /// Excluded from equality so parsed and hand-built ASTs compare
    /// structurally.
    pub spans: crate::diag::SpanTable,
}

impl PartialEq for Program {
    fn eq(&self, other: &Program) -> bool {
        self.name == other.name
            && self.creator == other.creator
            && self.constructor == other.constructor
            && self.globals == other.globals
            && self.maps == other.maps
            && self.phases == other.phases
    }
}

impl Eq for Program {}

impl Program {
    /// Looks up a global's declaration index.
    pub fn global_index(&self, name: &str) -> Option<usize> {
        self.globals.iter().position(|g| g.name == name)
    }

    /// Looks up a map's declaration index.
    pub fn map_index(&self, name: &str) -> Option<usize> {
        self.maps.iter().position(|m| m.name == name)
    }

    /// Finds a constructor field's type.
    pub fn field_ty(&self, name: &str) -> Option<Ty> {
        self.creator.fields.iter().find(|(n, _)| n == name).map(|(_, t)| *t)
    }

    /// All APIs across phases, with their phase index.
    pub fn all_apis(&self) -> impl Iterator<Item = (usize, &Api)> {
        self.phases.iter().enumerate().flat_map(|(i, p)| p.apis.iter().map(move |a| (i, a)))
    }

    /// A tiny sample program used by documentation and smoke tests: a
    /// counter anyone may bump a fixed number of times.
    pub fn counter_example() -> Program {
        Program {
            name: "counter".into(),
            creator: Participant {
                name: "Creator".into(),
                fields: vec![("limit".into(), Ty::UInt)],
            },
            constructor: vec![],
            globals: vec![
                GlobalDecl {
                    name: "remaining".into(),
                    ty: Ty::UInt,
                    init: GlobalInit::FromField("limit".into()),
                    viewable: true,
                },
                GlobalDecl {
                    name: "count".into(),
                    ty: Ty::UInt,
                    init: GlobalInit::Const(0),
                    viewable: true,
                },
            ],
            maps: vec![],
            phases: vec![Phase {
                name: "counting".into(),
                while_cond: Expr::gt(Expr::global("remaining"), Expr::UInt(0)),
                invariant: Expr::ge(Expr::global("remaining"), Expr::UInt(0)),
                apis: vec![Api {
                    name: "bump".into(),
                    params: vec![("by".into(), Ty::UInt)],
                    pay: None,
                    body: vec![
                        Stmt::Require(Expr::gt(Expr::param("by"), Expr::UInt(0))),
                        Stmt::GlobalSet {
                            name: "count".into(),
                            value: Expr::Bin(
                                BinOp::Add,
                                Box::new(Expr::global("count")),
                                Box::new(Expr::param("by")),
                            ),
                        },
                        Stmt::GlobalSet {
                            name: "remaining".into(),
                            value: Expr::sub(Expr::global("remaining"), Expr::UInt(1)),
                        },
                    ],
                    returns: Expr::global("remaining"),
                }],
            }],
            spans: Default::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups() {
        let p = Program::counter_example();
        assert_eq!(p.global_index("count"), Some(1));
        assert_eq!(p.global_index("missing"), None);
        assert_eq!(p.field_ty("limit"), Some(Ty::UInt));
        assert_eq!(p.all_apis().count(), 1);
    }

    #[test]
    fn word_types() {
        assert!(Ty::UInt.is_word());
        assert!(Ty::Address.is_word());
        assert!(!Ty::Bytes(32).is_word());
    }
}
