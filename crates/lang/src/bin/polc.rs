//! `polc` — the contract linting / diagnostics front end.
//!
//! ```text
//! polc lint [--no-relational] <file.pol>...
//!                           run the checker, verifier and dataflow
//!                           lints; render rustc-style diagnostics.
//!                           When a sibling `<file>.pol.expected`
//!                           golden exists, compare against it instead
//!                           of gating on severity.
//! polc verify [--no-relational] [--json <path>] <file.pol>...
//!                           run the theorem verifier per file, then
//!                           the cross-contract system analysis over
//!                           all files together; print both reports
//!                           and optionally write solver statistics as
//!                           JSON.
//! polc summaries [--json <path>] <file.pol>...
//!                           run the access-summary analysis and print
//!                           each method's inferred read/write footprint
//!                           (globals, map-key patterns, transfers,
//!                           phase effects); optionally write the
//!                           machine-readable form as JSON.
//! polc gas [--json <path>] <file.pol>...
//!                           run the static worst-case gas pass and
//!                           print each method's certified bound for
//!                           both backends (EVM affine-in-calldata,
//!                           AVM opcode budget); optionally write the
//!                           machine-readable form as JSON.
//! polc codes                print the diagnostic-code registry as
//!                           markdown (published to
//!                           results/lint_codes.md by CI).
//! ```
//!
//! `--no-relational` disables the difference-logic zone domain, leaving
//! only the syntactic matchers and the interval domain — useful for
//! comparing what the relational layer buys.
//!
//! Exit status: 0 when every file is clean (or matches its golden),
//! 1 when an error-severity diagnostic fires (or a golden mismatches),
//! 2 on usage or I/O errors.

use pol_lang::diag::{Diagnostic, Span};
use pol_lang::{lint, pretty, xcontract};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let relational = !take_flag(&mut args, "--no-relational");
    let json_path = take_value(&mut args, "--json");
    match args.split_first() {
        Some((cmd, rest)) if cmd == "lint" && !rest.is_empty() => lint_files(rest, relational),
        Some((cmd, rest)) if cmd == "verify" && !rest.is_empty() => {
            verify_files(rest, relational, json_path.as_deref())
        }
        Some((cmd, rest)) if cmd == "summaries" && !rest.is_empty() => {
            summarize_files(rest, json_path.as_deref())
        }
        Some((cmd, rest)) if cmd == "gas" && !rest.is_empty() => {
            gas_files(rest, json_path.as_deref())
        }
        Some((cmd, rest)) if cmd == "codes" && rest.is_empty() => {
            print!("{}", lint::codes_markdown());
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: polc lint [--no-relational] <file.pol>...\n\
                 \x20      polc verify [--no-relational] [--json <path>] <file.pol>...\n\
                 \x20      polc summaries [--json <path>] <file.pol>...\n\
                 \x20      polc gas [--json <path>] <file.pol>...\n\
                 \x20      polc codes"
            );
            ExitCode::from(2)
        }
    }
}

/// Removes `flag` from `args`; returns whether it was present.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

/// Removes `flag <value>` from `args`; returns the value when present.
fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let idx = args.iter().position(|a| a == flag)?;
    if idx + 1 >= args.len() {
        return None;
    }
    let value = args.remove(idx + 1);
    args.remove(idx);
    Some(value)
}

fn lint_files(files: &[String], relational: bool) -> ExitCode {
    let mut failed = false;
    for file in files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("polc: cannot read {file}: {e}");
                return ExitCode::from(2);
            }
        };
        let diags = diagnose(&source, relational);
        let rendered = pretty::render_diagnostics(&diags, &source, file);
        if !rendered.is_empty() {
            print!("{rendered}");
        }
        let golden_path = format!("{file}.expected");
        match std::fs::read_to_string(&golden_path) {
            Ok(golden) => {
                let got = canonical(&diags, &source);
                let want: Vec<String> =
                    golden.lines().filter(|l| !l.trim().is_empty()).map(str::to_string).collect();
                if got != want {
                    failed = true;
                    eprintln!("polc: {file}: diagnostics do not match {golden_path}");
                    eprintln!("  expected:");
                    for line in &want {
                        eprintln!("    {line}");
                    }
                    eprintln!("  got:");
                    for line in &got {
                        eprintln!("    {line}");
                    }
                } else {
                    println!("polc: {file}: matches golden ({} diagnostic(s))", diags.len());
                }
            }
            Err(_) => {
                if diags.iter().any(Diagnostic::is_error) {
                    failed = true;
                } else {
                    println!("polc: {file}: clean ({} warning(s))", diags.len());
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Runs the access-summary analysis over each file and prints the
/// per-method footprints; `--json` additionally writes the
/// deterministic machine-readable form (the CI artifact).
fn summarize_files(files: &[String], json_path: Option<&str>) -> ExitCode {
    let mut rendered = Vec::new();
    for file in files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("polc: cannot read {file}: {e}");
                return ExitCode::from(2);
            }
        };
        let program = match pol_lang::parse::parse(&source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("polc: {file}:{}:{}: {}", e.line, e.col, e.message);
                return ExitCode::from(2);
            }
        };
        let type_errors = pol_lang::check::check(&program);
        if !type_errors.is_empty() {
            for d in &type_errors {
                eprintln!("polc: {file}: {d}");
            }
            return ExitCode::FAILURE;
        }
        let summaries = pol_lang::access::summarize(&program);
        println!("== {file} ==");
        print!("{}", summaries.render_text());
        println!();
        rendered.push(summaries.to_json(file, "    "));
    }
    if let Some(path) = json_path {
        let json = format!("{{\n  \"contracts\": [\n{}\n  ]\n}}\n", rendered.join(",\n"));
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("polc: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

/// Runs the static gas-certificate pass over each file and prints the
/// per-method worst-case bounds; `--json` additionally writes the
/// deterministic machine-readable form (the CI artifact).
fn gas_files(files: &[String], json_path: Option<&str>) -> ExitCode {
    let mut rendered = Vec::new();
    for file in files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("polc: cannot read {file}: {e}");
                return ExitCode::from(2);
            }
        };
        let program = match pol_lang::parse::parse(&source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("polc: {file}:{}:{}: {}", e.line, e.col, e.message);
                return ExitCode::from(2);
            }
        };
        let type_errors = pol_lang::check::check(&program);
        if !type_errors.is_empty() {
            for d in &type_errors {
                eprintln!("polc: {file}: {d}");
            }
            return ExitCode::FAILURE;
        }
        let bounds = match pol_lang::gas::certify(&program) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("polc: {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("== {file} ==");
        print!("{}", bounds.render_text());
        println!();
        rendered.push(bounds.to_json(file, "    "));
    }
    if let Some(path) = json_path {
        let json = format!("{{\n  \"contracts\": [\n{}\n  ]\n}}\n", rendered.join(",\n"));
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("polc: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

/// Per-file theorem verification plus the cross-contract system pass.
fn verify_files(files: &[String], relational: bool, json_path: Option<&str>) -> ExitCode {
    let mut failed = false;
    let mut programs = Vec::new();
    for file in files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("polc: cannot read {file}: {e}");
                return ExitCode::from(2);
            }
        };
        let program = match pol_lang::parse::parse(&source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("polc: {file}:{}:{}: {}", e.line, e.col, e.message);
                return ExitCode::from(2);
            }
        };
        let type_errors = pol_lang::check::check(&program);
        if !type_errors.is_empty() {
            for d in &type_errors {
                eprintln!("polc: {file}: {d}");
            }
            return ExitCode::FAILURE;
        }
        programs.push((file.clone(), program));
    }

    let mut contract_lines = Vec::new();
    let mut reports = Vec::new();
    for (file, program) in &programs {
        let report = pol_lang::verify::verify_with(program, relational);
        println!("== {file} ({}) ==", program.name);
        println!("{report}");
        println!();
        if !report.ok() {
            failed = true;
        }
        contract_lines.push(format!(
            "    {{\"file\": \"{file}\", \"name\": \"{}\", \"theorems_checked\": {}, \
             \"failures\": {}, \"relational\": {{\"constraints\": {}, \"closures\": {}, \
             \"discharged\": {}}}}}",
            program.name,
            report.theorems_checked,
            report.failures.len(),
            report.zone_stats.constraints,
            report.zone_stats.closures,
            report.relationally_discharged,
        ));
        reports.push(report);
    }

    // Compile the clean programs so the system pass can cross-check the
    // artifacts against the declared layouts (X0502); programs that
    // fail verification still join the system with source-only checks.
    let compiled: Vec<Option<pol_lang::backend::CompiledContract>> = programs
        .iter()
        .zip(&reports)
        .map(|((_, p), r)| if r.ok() { pol_lang::backend::compile(p).ok() } else { None })
        .collect();
    let members: Vec<xcontract::SystemMember<'_>> = programs
        .iter()
        .zip(&compiled)
        .map(|((_, p), c)| xcontract::SystemMember::new(p, c.as_ref()))
        .collect();
    let system = xcontract::analyze_system(&members);
    println!("== system ==");
    println!("{system}");
    for d in &system.diagnostics {
        println!("  {d}");
    }
    if !system.ok() {
        failed = true;
    }

    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"contracts\": [\n{}\n  ],\n  \"system\": {{\"contracts\": {}, \
             \"edges\": {}, \"transfer_sites\": {}, \"conserved\": {}, \
             \"relationally_proved\": {}, \"aggregate_conserved\": {}, \
             \"constraints\": {}, \"closures\": {}, \"failures\": {}}}\n}}\n",
            contract_lines.join(",\n"),
            system.contracts,
            system.edges.len(),
            system.transfer_edges,
            system.conserved_transfers,
            system.relationally_proved,
            system.aggregate_conserved,
            system.zone_stats.constraints,
            system.zone_stats.closures,
            system.diagnostics.iter().filter(|d| d.is_error()).count(),
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("polc: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The full source-level pipeline: parse → type check → verify + lint.
fn diagnose(source: &str, relational: bool) -> Vec<Diagnostic> {
    let program = match pol_lang::parse::parse(source) {
        Ok(p) => p,
        Err(e) => {
            let start = byte_offset(source, e.line, e.col);
            return vec![Diagnostic::error("P0001", e.message).at(Span::new(start, start + 1))];
        }
    };
    let type_errors = pol_lang::check::check(&program);
    if !type_errors.is_empty() {
        return type_errors;
    }
    let mut diags = pol_lang::verify::verify_with(&program, relational).failures;
    diags.extend(lint::lint_with(&program, relational));
    diags
}

/// One stable line per diagnostic for golden comparison:
/// `severity[CODE] line:col message`.
fn canonical(diags: &[Diagnostic], source: &str) -> Vec<String> {
    diags
        .iter()
        .map(|d| {
            let pos = match d.span.line_col(source) {
                Some((line, col)) => format!("{line}:{col}"),
                None => "-".to_string(),
            };
            format!("{}[{}] {pos} {}", d.severity, d.code, d.message)
        })
        .collect()
}

fn byte_offset(source: &str, line: usize, col: usize) -> usize {
    let mut offset = 0;
    for (i, l) in source.lines().enumerate() {
        if i + 1 == line {
            return offset + (col - 1).min(l.len());
        }
        offset += l.len() + 1;
    }
    source.len().saturating_sub(1)
}
