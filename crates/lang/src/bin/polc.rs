//! `polc` — the contract linting / diagnostics front end.
//!
//! ```text
//! polc lint <file.pol>...   run the checker, verifier and dataflow
//!                           lints; render rustc-style diagnostics.
//!                           When a sibling `<file>.pol.expected`
//!                           golden exists, compare against it instead
//!                           of gating on severity.
//! polc codes                print the diagnostic-code registry as
//!                           markdown (published to
//!                           results/lint_codes.md by CI).
//! ```
//!
//! Exit status: 0 when every file is clean (or matches its golden),
//! 1 when an error-severity diagnostic fires (or a golden mismatches),
//! 2 on usage or I/O errors.

use pol_lang::diag::{Diagnostic, Span};
use pol_lang::{lint, pretty};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "lint" && !rest.is_empty() => lint_files(rest),
        Some((cmd, rest)) if cmd == "codes" && rest.is_empty() => {
            print!("{}", lint::codes_markdown());
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: polc lint <file.pol>...  |  polc codes");
            ExitCode::from(2)
        }
    }
}

fn lint_files(files: &[String]) -> ExitCode {
    let mut failed = false;
    for file in files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("polc: cannot read {file}: {e}");
                return ExitCode::from(2);
            }
        };
        let diags = diagnose(&source);
        let rendered = pretty::render_diagnostics(&diags, &source, file);
        if !rendered.is_empty() {
            print!("{rendered}");
        }
        let golden_path = format!("{file}.expected");
        match std::fs::read_to_string(&golden_path) {
            Ok(golden) => {
                let got = canonical(&diags, &source);
                let want: Vec<String> =
                    golden.lines().filter(|l| !l.trim().is_empty()).map(str::to_string).collect();
                if got != want {
                    failed = true;
                    eprintln!("polc: {file}: diagnostics do not match {golden_path}");
                    eprintln!("  expected:");
                    for line in &want {
                        eprintln!("    {line}");
                    }
                    eprintln!("  got:");
                    for line in &got {
                        eprintln!("    {line}");
                    }
                } else {
                    println!("polc: {file}: matches golden ({} diagnostic(s))", diags.len());
                }
            }
            Err(_) => {
                if diags.iter().any(Diagnostic::is_error) {
                    failed = true;
                } else {
                    println!("polc: {file}: clean ({} warning(s))", diags.len());
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The full source-level pipeline: parse → type check → verify + lint.
fn diagnose(source: &str) -> Vec<Diagnostic> {
    let program = match pol_lang::parse::parse(source) {
        Ok(p) => p,
        Err(e) => {
            let start = byte_offset(source, e.line, e.col);
            return vec![Diagnostic::error("P0001", e.message).at(Span::new(start, start + 1))];
        }
    };
    let type_errors = pol_lang::check::check(&program);
    if !type_errors.is_empty() {
        return type_errors;
    }
    let mut diags = pol_lang::verify::verify(&program).failures;
    diags.extend(lint::lint(&program));
    diags
}

/// One stable line per diagnostic for golden comparison:
/// `severity[CODE] line:col message`.
fn canonical(diags: &[Diagnostic], source: &str) -> Vec<String> {
    diags
        .iter()
        .map(|d| {
            let pos = match d.span.line_col(source) {
                Some((line, col)) => format!("{line}:{col}"),
                None => "-".to_string(),
            };
            format!("{}[{}] {pos} {}", d.severity, d.code, d.message)
        })
        .collect()
}

fn byte_offset(source: &str, line: usize, col: usize) -> usize {
    let mut offset = 0;
    for (i, l) in source.lines().enumerate() {
        if i + 1 == line {
            return offset + (col - 1).min(l.len());
        }
        offset += l.len() + 1;
    }
    source.len().saturating_sub(1)
}
