//! Static worst-case gas certificates: the `polc gas` cost-bound pass.
//!
//! For every dispatchable method of a contract (constructor, phase
//! APIs, generated `view_*` accessors, `closeContract`) this module
//! derives a **sound worst-case gas certificate** for both backends by
//! abstract interpretation over the lowered CFG ([`crate::ir`]):
//!
//! * the cost walker mirrors the code generators' emission
//!   ([`crate::backend::evm`], [`crate::backend::avm`]) op for op, so
//!   per-path costs are exact for everything the compilers produce;
//! * path costs are **maximised over the branch DAG** — the language is
//!   loop-free and blocks are topologically ordered, so the longest
//!   path is one reverse sweep;
//! * branches the interval/zone domains prove dead are pruned, and a
//!   phase the domains prove cannot end drops the phase-writeback arm —
//!   the same narrowing [`crate::access`] uses;
//! * EVM certificates price storage and account accesses *cold* (the
//!   worst case for a fresh transaction), charge linear memory
//!   expansion once at the frame's peak, and are affine in calldata
//!   length: `21000 + 4·len + 12·nonzero + exec`, reported as
//!   [`GasBound::Affine`]. AVM certificates are opcode-budget constants
//!   ([`GasBound::Const`]).
//!
//! Two cost models share the walker. [`EvmModel::Cold`] prices ops the
//! way [`pol_evm`]'s interpreter worst case does and yields the runtime
//! certificates consumed by the executor's scheduler seeding and
//! `pol-node` admission. [`EvmModel::Verifier`] prices every op exactly
//! like [`pol_evm::verifier::conservative_op_gas`] at a fixed payload
//! width and skips memory accounting, so the *unpruned* bound can be
//! sandwiched between the bytecode verifier's observed worst path and
//! the straight-line bound — the two-sided X0401/X0402 gate in
//! [`crate::backend`].

use crate::ast::{Api, Expr, GlobalInit, Program, Ty};
use crate::backend::evm as evm_backend;
use crate::ir::{self, BodyAnalysis, Cfg, Inst, Term};
use crate::LangError;
use pol_evm::gas as evm_gas;
use pol_evm::opcode::Op;
use pol_evm::verifier::conservative_op_gas;
use std::collections::HashMap;

/// Block gas budget certificates are linted against (L0008): an API
/// whose proven worst case cannot fit in one block is unschedulable.
pub const DEFAULT_BLOCK_GAS_BUDGET: u64 = 30_000_000;

/// A proven worst-case cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GasBound {
    /// A constant bound (AVM opcode budgets).
    Const(u64),
    /// Affine in the call payload: worst case is
    /// `base + per_byte · max_bytes`, where `base` already prices every
    /// payload byte at the zero-byte intrinsic rate and `per_byte` is
    /// the nonzero-byte surcharge.
    Affine {
        /// Execution worst case plus the all-zero-byte intrinsic.
        base: u64,
        /// Intrinsic surcharge per nonzero payload byte.
        per_byte: u64,
        /// Honest payload width (selector + padded parameters).
        max_bytes: u64,
    },
    /// No bound could be proven (⊤). Never produced for compilable
    /// contracts — kept as the lattice top so downstream consumers
    /// (lint L0008, the runtime registries) handle it explicitly.
    Top,
}

impl GasBound {
    /// The scalar worst case, `None` for ⊤.
    pub fn worst_case(&self) -> Option<u64> {
        match self {
            GasBound::Const(c) => Some(*c),
            GasBound::Affine { base, per_byte, max_bytes } => {
                Some(base.saturating_add(per_byte.saturating_mul(*max_bytes)))
            }
            GasBound::Top => None,
        }
    }

    /// Whether the bound degraded to ⊤.
    pub fn is_top(&self) -> bool {
        matches!(self, GasBound::Top)
    }
}

// ------------------------------------------------------ EVM walker --

/// Memory scratch area for slot derivation (mirrors the backend).
const SCRATCH: u64 = 0x00;
/// Memory base for staging byte payloads (mirrors the backend).
const STAGING: u64 = 0x80;

/// How the walker prices individual ops.
#[derive(Debug, Clone, Copy)]
enum EvmModel {
    /// Interpreter worst case: cold storage/account charges, real
    /// payload sizes, linear memory expansion at the frame peak.
    Cold,
    /// Bytecode-verifier mirror: every op charged
    /// [`conservative_op_gas`] at this payload width, no memory
    /// accounting. Used only for the two-sided bytecode cross-check.
    Verifier {
        /// The `payload_bytes` the verifier was configured with.
        payload: u64,
    },
}

/// Mirrors the EVM backend's emission, summing gas instead of bytes.
struct EvmWalk<'p> {
    program: &'p Program,
    /// name → (ty, offset, padded len), as laid out by the backend.
    params: HashMap<String, (Ty, u64, u64)>,
    /// Constructor parameters live in the code tail (`CODECOPY`),
    /// API parameters in calldata.
    code_args: bool,
    staging_top: u64,
    model: EvmModel,
    /// Highest memory offset any op touches (frame peak).
    mem_hi: u64,
}

impl<'p> EvmWalk<'p> {
    fn new(
        program: &'p Program,
        params: &[(String, Ty)],
        code_args: bool,
        model: EvmModel,
    ) -> EvmWalk<'p> {
        let mut map = HashMap::new();
        for (name, ty, off, len) in evm_backend::layout(params) {
            map.insert(name, (ty, off as u64, len as u64));
        }
        let staging_top = STAGING + map.values().map(|(_, _, len)| *len).sum::<u64>();
        EvmWalk { program, params: map, code_args, staging_top, model, mem_hi: 0 }
    }

    fn touch(&mut self, hi: u64) {
        self.mem_hi = self.mem_hi.max(hi);
    }

    /// A non-dynamic op (both models charge its base cost; the verifier
    /// model routes through [`conservative_op_gas`] so the numbers can
    /// never drift apart).
    fn plain(&self, op: Op) -> u64 {
        match self.model {
            EvmModel::Cold => op.base_gas(),
            EvmModel::Verifier { payload } => conservative_op_gas(op, payload),
        }
    }

    fn push(&self) -> u64 {
        self.plain(Op::Push1)
    }

    fn sload(&self) -> u64 {
        match self.model {
            EvmModel::Cold => evm_gas::G_COLDSLOAD,
            EvmModel::Verifier { payload } => conservative_op_gas(Op::SLoad, payload),
        }
    }

    fn sstore(&self) -> u64 {
        match self.model {
            EvmModel::Cold => evm_gas::G_SSET + evm_gas::G_COLDSLOAD,
            EvmModel::Verifier { payload } => conservative_op_gas(Op::SStore, payload),
        }
    }

    fn call_op(&self) -> u64 {
        match self.model {
            EvmModel::Cold => {
                evm_gas::G_COLDACCOUNTACCESS + evm_gas::G_CALLVALUE - evm_gas::G_CALLSTIPEND
            }
            EvmModel::Verifier { payload } => conservative_op_gas(Op::Call, payload),
        }
    }

    fn keccak(&mut self, at: u64, size: u64) -> u64 {
        self.touch(at + size);
        match self.model {
            EvmModel::Cold => {
                evm_gas::G_KECCAK256 + evm_gas::G_KECCAK256WORD * evm_gas::words(size as usize)
            }
            EvmModel::Verifier { payload } => conservative_op_gas(Op::Keccak256, payload),
        }
    }

    fn log(&mut self, topics: u64, at: u64, size: u64) -> u64 {
        self.touch(at + size);
        let op = if topics == 0 { Op::Log0 } else { Op::Log1 };
        match self.model {
            EvmModel::Cold => {
                evm_gas::G_LOG + evm_gas::G_LOGTOPIC * topics + evm_gas::G_LOGDATA * size
            }
            EvmModel::Verifier { payload } => conservative_op_gas(op, payload),
        }
    }

    fn copy(&mut self, op: Op, at: u64, size: u64) -> u64 {
        self.touch(at + size);
        match self.model {
            EvmModel::Cold => evm_gas::G_VERYLOW + evm_gas::G_COPY * evm_gas::words(size as usize),
            EvmModel::Verifier { payload } => conservative_op_gas(op, payload),
        }
    }

    fn mstore(&mut self, at: u64) -> u64 {
        self.touch(at + 32);
        self.plain(Op::MStore)
    }

    /// `IsZero; PUSH label; JUMPI` — the `require_top` sequence.
    fn require_top(&self) -> u64 {
        self.plain(Op::IsZero) + self.push() + self.plain(Op::JumpI)
    }

    /// `JUMPDEST; PUSH 0; PUSH 0; REVERT` — the shared revert tail a
    /// failing require lands on.
    fn revert_tail(&self) -> u64 {
        self.plain(Op::JumpDest) + 2 * self.push() + self.plain(Op::Revert)
    }

    /// Mirrors `emit_expr` (word context).
    fn expr(&mut self, e: &Expr) -> u64 {
        match e {
            Expr::UInt(_) => self.push(),
            Expr::Param(_) => {
                if self.code_args {
                    // PUSH 32; PUSH off; PUSH scratch; CODECOPY;
                    // PUSH scratch; MLOAD
                    let copy = self.copy(Op::CodeCopy, SCRATCH, 32);
                    self.touch(SCRATCH + 32);
                    3 * self.push() + copy + self.push() + self.plain(Op::MLoad)
                } else {
                    self.push() + self.plain(Op::CallDataLoad)
                }
            }
            Expr::Global(_) => self.push() + self.sload(),
            Expr::Caller => self.plain(Op::Caller),
            Expr::Balance => self.plain(Op::SelfBalance),
            Expr::MapGet { key, .. } => self.map_slot(key) + self.sload(),
            Expr::MapContains { key, .. } => {
                self.map_slot(key) + self.sload() + 2 * self.plain(Op::IsZero)
            }
            Expr::Hash(parts) => self.hash_of(parts),
            Expr::Bin(op, lhs, rhs) => {
                use crate::ast::BinOp;
                let operands = self.expr(rhs) + self.expr(lhs);
                operands
                    + match op {
                        BinOp::Add => self.plain(Op::Add),
                        BinOp::Sub => self.plain(Op::Sub),
                        BinOp::Mul => self.plain(Op::Mul),
                        BinOp::Div => self.plain(Op::Div),
                        BinOp::Lt => self.plain(Op::Lt),
                        BinOp::Gt => self.plain(Op::Gt),
                        BinOp::Le => self.plain(Op::Gt) + self.plain(Op::IsZero),
                        BinOp::Ge => self.plain(Op::Lt) + self.plain(Op::IsZero),
                        BinOp::Eq => self.plain(Op::Eq),
                        BinOp::Ne => self.plain(Op::Eq) + self.plain(Op::IsZero),
                        BinOp::And => self.plain(Op::And),
                        BinOp::Or => self.plain(Op::Or),
                    }
            }
            Expr::Not(inner) => self.expr(inner) + self.plain(Op::IsZero),
        }
    }

    /// Mirrors `emit_map_slot`: key, two scratch stores, keccak(64).
    fn map_slot(&mut self, key: &Expr) -> u64 {
        let k = self.expr(key);
        let stores =
            self.push() + self.mstore(SCRATCH) + 2 * self.push() + self.mstore(SCRATCH + 32);
        let hash = 2 * self.push() + self.keccak(SCRATCH, 64);
        k + stores + hash
    }

    /// Mirrors `stage`: returns `(gas, base, total_len)`.
    fn stage(&mut self, parts: &[Expr]) -> (u64, u64, u64) {
        let base = self.staging_top;
        let mut cursor = base;
        let mut gas = 0u64;
        for part in parts {
            if let Expr::Param(name) = part {
                let byte_param = self
                    .params
                    .get(name.as_str())
                    .map(|(ty, _, len)| (!ty.is_word()).then_some(*len))
                    .unwrap_or(None);
                if let Some(len) = byte_param {
                    let op = if self.code_args { Op::CodeCopy } else { Op::CallDataCopy };
                    gas += 3 * self.push() + self.copy(op, cursor, len);
                    cursor += len;
                    continue;
                }
            }
            gas += self.expr(part) + self.push() + self.mstore(cursor);
            cursor += 32;
        }
        (gas, base, cursor - base)
    }

    /// Stage + `PUSH len; PUSH base; KECCAK256` (the `Hash` expression
    /// and byte-global commitments).
    fn hash_of(&mut self, parts: &[Expr]) -> u64 {
        let (gas, base, len) = self.stage(parts);
        gas + 2 * self.push() + self.keccak(base, len)
    }

    /// Mirrors `emit_stmt` for the straight-line instructions.
    fn inst(&mut self, inst: &Inst) -> u64 {
        match inst {
            Inst::Set { name, value, .. } => {
                let idx = self.program.global_index(name).expect("checked");
                let v = if self.program.globals[idx].ty.is_word() {
                    self.expr(value)
                } else {
                    self.hash_of(std::slice::from_ref(value))
                };
                v + self.push() + self.sstore()
            }
            Inst::MapPut { key, value, .. } => {
                let commit = self.hash_of(value);
                let (_, base, len) = {
                    // Re-derive the staging extent for the LOG1 payload
                    // without double-charging: stage() is deterministic.
                    let base = self.staging_top;
                    let len: u64 = value
                        .iter()
                        .map(|p| match p {
                            Expr::Param(name) => self
                                .params
                                .get(name.as_str())
                                .filter(|(ty, _, _)| !ty.is_word())
                                .map_or(32, |(_, _, len)| *len),
                            _ => 32,
                        })
                        .sum();
                    (0u64, base, len)
                };
                let store = self.map_slot(key) + self.sstore();
                let log = self.expr(key) + 2 * self.push() + self.log(1, base, len);
                commit + store + log
            }
            Inst::MapDel { key, .. } => self.push() + self.map_slot(key) + self.sstore(),
            Inst::Transfer { to, amount, .. } => {
                4 * self.push()
                    + self.expr(amount)
                    + self.expr(to)
                    + self.push()
                    + self.call_op()
                    + self.plain(Op::Pop)
            }
            Inst::Emit { parts, .. } => {
                let (gas, base, len) = self.stage(parts);
                gas + 2 * self.push() + self.log(0, base, len)
            }
        }
    }
}

// -------------------------------------------------- DAG max-path DP --

/// For each block ending in `Goto`, whether that goto is the *then*-side
/// exit of its `if`: the backends emit a real jump there (`PUSH; JUMP`
/// on the EVM, `b` on the AVM) while the else side falls through into
/// the bound join label.
fn goto_is_then_side(cfg: &Cfg) -> Vec<bool> {
    let n = cfg.blocks.len();
    // Syntactic reachability (reach[b] includes b itself). Edges only
    // point forward, so one reverse sweep suffices.
    let mut reach = vec![vec![false; n]; n];
    for b in (0..n).rev() {
        reach[b][b] = true;
        for s in cfg.successors(b) {
            // Successors always have higher indices, so reach[s] is final.
            let src = reach[s].clone();
            for (dst, got) in reach[b].iter_mut().zip(src.iter()) {
                *dst |= *got;
            }
        }
    }
    // Each `if` contributes one Branch whose join is the first common
    // descendant of its arms (blocks are topological, and the builder
    // allocates the join after both arm interiors).
    let mut branches = Vec::new();
    for blk in &cfg.blocks {
        if let Term::Branch { then_b, else_b, .. } = blk.term {
            let join = (0..n).find(|&j| reach[then_b][j] && reach[else_b][j]);
            branches.push((then_b, else_b, join));
        }
    }
    let mut then_side = vec![false; n];
    for (p, blk) in cfg.blocks.iter().enumerate() {
        if let Term::Goto(t) = blk.term {
            for &(then_b, else_b, join) in &branches {
                if join == Some(t) && reach[then_b][p] && !reach[else_b][p] {
                    then_side[p] = true;
                    break;
                }
            }
        }
    }
    then_side
}

/// Which blocks the EVM backend binds a label at (they start with a
/// `JUMPDEST`): else arms and if-joins.
fn evm_jump_targets(cfg: &Cfg) -> Vec<bool> {
    let mut jd = vec![false; cfg.blocks.len()];
    for blk in &cfg.blocks {
        match blk.term {
            Term::Branch { else_b, .. } => jd[else_b] = true,
            Term::Goto(t) => jd[t] = true,
            _ => {}
        }
    }
    jd
}

/// Longest-path sweep over the body DAG under the EVM cost model.
/// `ret_cost` is charged at the body's `Return` exit (the method
/// epilogue); failing requires land on the shared revert tail.
fn evm_body_max(w: &mut EvmWalk<'_>, flow: &BodyAnalysis, prune: bool, ret_cost: u64) -> Vec<u64> {
    let cfg = &flow.cfg;
    let n = cfg.blocks.len();
    let then_side = goto_is_then_side(cfg);
    let jd = evm_jump_targets(cfg);
    let mut down = vec![0u64; n];
    for b in (0..n).rev() {
        if prune && !flow.reachable(b) {
            continue;
        }
        let mut gas: u64 = cfg.blocks[b].insts.iter().map(|i| w.inst(i)).sum();
        let enter = |x: usize, w: &EvmWalk<'_>| if jd[x] { w.plain(Op::JumpDest) } else { 0 };
        gas += match &cfg.blocks[b].term {
            Term::Goto(t) => {
                let jump = if then_side[b] { w.push() + w.plain(Op::Jump) } else { 0 };
                jump + enter(*t, w) + down[*t]
            }
            Term::Require { cond, next, .. } => {
                let check = w.expr(cond) + w.require_top();
                let fail = w.revert_tail();
                if prune && !flow.reachable(*next) {
                    check + fail
                } else {
                    check + fail.max(down[*next])
                }
            }
            Term::Branch { cond, then_b, else_b, .. } => {
                let check = w.expr(cond) + w.require_top();
                let mut arms = Vec::new();
                if !prune || flow.reachable(*then_b) {
                    arms.push(down[*then_b]);
                }
                if !prune || flow.reachable(*else_b) {
                    arms.push(enter(*else_b, w) + down[*else_b]);
                }
                check + arms.into_iter().max().unwrap_or(0)
            }
            Term::Return => ret_cost,
        };
        down[b] = gas;
    }
    down
}

/// Whether the phase-advance writeback is reachable: `false` only when
/// the interval/zone state at the body's exit proves the `while`
/// condition still holds (the phase cannot end on this call).
fn phase_can_advance(flow: &BodyAnalysis, while_cond: &Expr, prune: bool) -> bool {
    if !prune {
        return true;
    }
    let ret_block = flow
        .cfg
        .blocks
        .iter()
        .position(|b| matches!(b.term, Term::Return))
        .filter(|&b| flow.reachable(b));
    match ret_block.and_then(|b| flow.term_env(b)) {
        Some(env) => env.interval_of(while_cond).lo == 0,
        None => true,
    }
}

/// Cost of one compiled API *fragment* (phase check, while require,
/// payment check, body, phase advance, return — plus the revert tail on
/// failing paths), maximised over the branch DAG. Returns the gas and
/// the frame's peak memory offset. Excludes dispatch, intrinsic gas and
/// memory expansion; [`certify`] adds those for runtime certificates.
fn evm_api_fragment_cost(
    program: &Program,
    phase_idx: usize,
    api: &Api,
    flow: &BodyAnalysis,
    model: EvmModel,
    prune: bool,
) -> (u64, u64) {
    let phase = &program.phases[phase_idx];
    let mut w = EvmWalk::new(program, &api.params, false, model);

    // require _phase == phase_idx
    let phase_check = w.push() + w.sload() + w.push() + w.plain(Op::Eq) + w.require_top();

    // Epilogue charged at the body's Return exit.
    let advance = phase_can_advance(flow, &phase.while_cond, prune);
    let ret_cost = {
        let we = w.expr(&phase.while_cond);
        let keep = w.push() + w.plain(Op::JumpI) + w.plain(Op::JumpDest);
        let adv = w.push()
            + w.plain(Op::JumpI)
            + w.push()
            + w.sload()
            + w.push()
            + w.plain(Op::Add)
            + w.push()
            + w.sstore()
            + w.plain(Op::JumpDest);
        let arms = if advance { keep.max(adv) } else { keep };
        let ret_seq =
            w.expr(&api.returns) + w.push() + w.mstore(0) + 2 * w.push() + w.plain(Op::Return);
        we + arms + ret_seq
    };

    let down = evm_body_max(&mut w, flow, prune, ret_cost);

    // Entry block: `require while_cond` with the payment check wedged
    // between it and the body (the backend emits them in that order).
    let body = match &flow.cfg.blocks[0].term {
        Term::Require { cond, next, .. } => {
            let check = w.expr(cond) + w.require_top();
            let fail = w.revert_tail();
            if prune && !flow.reachable(*next) {
                check + fail
            } else {
                let pay = match &api.pay {
                    Some(pay) => {
                        w.expr(pay) + w.plain(Op::CallValue) + w.plain(Op::Eq) + w.require_top()
                    }
                    None => w.plain(Op::CallValue) + w.plain(Op::IsZero) + w.require_top(),
                };
                check + fail.max(pay + down[*next])
            }
        }
        // Defensive: lower_api always emits the entry require.
        _ => down[0],
    };
    (phase_check + body, w.mem_hi)
}

/// Runtime-dispatcher cost up to and including the bound entry of the
/// `i`-th dispatch entry: selector preamble, `i + 1` comparison probes,
/// the entry's `JUMPDEST; POP`.
fn evm_dispatch_cost(entry_idx: usize) -> u64 {
    let preamble = Op::Push1.base_gas() * 2
        + Op::CallDataLoad.base_gas()
        + Op::Swap1.base_gas()
        + Op::Div.base_gas();
    // DUP1; PUSH selector; EQ; PUSH label; JUMPI
    let probe =
        Op::Dup1.base_gas() + 2 * Op::Push1.base_gas() + Op::Eq.base_gas() + Op::JumpI.base_gas();
    let enter = Op::JumpDest.base_gas() + Op::Pop.base_gas();
    preamble + probe * (entry_idx as u64 + 1) + enter
}

/// Frame memory expansion at peak `mem_hi` (linear model, charged once).
fn mem_expansion(mem_hi: u64) -> u64 {
    evm_gas::G_MEMORY * evm_gas::words(mem_hi as usize)
}

/// The affine full-transaction bound for an EVM entry with execution
/// worst case `exec` and honest payload `max_bytes` (selector + padded
/// parameters, or init code for deployments).
fn evm_affine(exec: u64, max_bytes: u64, create: bool) -> GasBound {
    let create_gas = if create { evm_gas::G_TXCREATE } else { 0 };
    GasBound::Affine {
        base: evm_gas::G_TRANSACTION + create_gas + evm_gas::G_TXDATAZERO * max_bytes + exec,
        per_byte: evm_gas::G_TXDATANONZERO - evm_gas::G_TXDATAZERO,
        max_bytes,
    }
}

// ------------------------------------------------------ AVM walker --

/// Cost of one AVM op class (mirrors [`pol_avm::cost::op_cost`]).
const A_OP: u64 = 1;
const A_KECCAK: u64 = 130;
const A_BOX: u64 = 10;
const A_INNER_PAY: u64 = 20;

/// Mirrors the AVM backend's emission, summing opcode budget.
struct AvmWalk<'p> {
    program: &'p Program,
    /// Parameter name → type (TxnArg indices don't affect cost).
    params: HashMap<String, Ty>,
}

impl<'p> AvmWalk<'p> {
    fn new(program: &'p Program, params: &[(String, Ty)]) -> AvmWalk<'p> {
        AvmWalk { program, params: params.iter().cloned().collect() }
    }

    fn box_key(&self, key: &Expr) -> u64 {
        // PushBytes prefix; key; Itob; Concat
        A_OP + self.expr(key) + 2 * A_OP
    }

    fn concat(&self, parts: &[Expr]) -> u64 {
        let joins = parts.len().saturating_sub(1) as u64 * A_OP;
        parts.iter().map(|p| self.bytes(p)).sum::<u64>() + joins
    }

    /// Mirrors `emit_bytes`.
    fn bytes(&self, e: &Expr) -> u64 {
        match e {
            Expr::Param(_) | Expr::Caller => A_OP,
            Expr::Global(name) => {
                let idx = self.program.global_index(name).expect("checked");
                let itob = matches!(self.program.globals[idx].ty, Ty::UInt | Ty::Bool);
                3 * A_OP + if itob { A_OP } else { 0 }
            }
            Expr::Hash(_) | Expr::MapGet { .. } => self.expr(e),
            word => self.expr(word) + A_OP, // + Itob
        }
    }

    /// Mirrors `emit_expr`.
    fn expr(&self, e: &Expr) -> u64 {
        match e {
            Expr::UInt(_) | Expr::Caller | Expr::Balance => A_OP,
            Expr::Param(name) => {
                let btoi = self
                    .params
                    .get(name.as_str())
                    .is_some_and(|ty| matches!(ty, Ty::UInt | Ty::Bool));
                A_OP + if btoi { A_OP } else { 0 }
            }
            Expr::Global(_) => 3 * A_OP,
            Expr::MapGet { key, .. } => self.box_key(key) + A_BOX + A_OP,
            Expr::MapContains { key, .. } => self.box_key(key) + A_BOX + 2 * A_OP,
            Expr::Hash(parts) => self.concat(parts) + A_KECCAK,
            Expr::Bin(_, lhs, rhs) => self.expr(lhs) + self.expr(rhs) + A_OP,
            Expr::Not(inner) => self.expr(inner) + A_OP,
        }
    }

    fn inst(&self, inst: &Inst) -> u64 {
        match inst {
            Inst::Set { name, value, .. } => {
                let idx = self.program.global_index(name).expect("checked");
                let v = if matches!(self.program.globals[idx].ty, Ty::Bytes(_)) {
                    self.bytes(value) + A_KECCAK
                } else {
                    self.expr(value)
                };
                A_OP + v + A_OP // PushBytes name; value; AppGlobalPut
            }
            Inst::MapPut { key, value, .. } => {
                // box key; payload; Dup; Log; Keccak256; BoxPut
                self.box_key(key) + self.concat(value) + 2 * A_OP + A_KECCAK + A_BOX
            }
            Inst::MapDel { key, .. } => self.box_key(key) + A_BOX + A_OP,
            Inst::Transfer { to, amount, .. } => self.bytes(to) + self.expr(amount) + A_INNER_PAY,
            Inst::Emit { parts, .. } => self.concat(parts) + A_OP,
        }
    }
}

/// Longest-path sweep under the AVM cost model. A failing `assert`
/// terminates immediately (cost already charged), so the fail arm is 0.
fn avm_body_max(w: &AvmWalk<'_>, flow: &BodyAnalysis, prune: bool, ret_cost: u64) -> Vec<u64> {
    let cfg = &flow.cfg;
    let n = cfg.blocks.len();
    let then_side = goto_is_then_side(cfg);
    let mut down = vec![0u64; n];
    for b in (0..n).rev() {
        if prune && !flow.reachable(b) {
            continue;
        }
        let mut cost: u64 = cfg.blocks[b].insts.iter().map(|i| w.inst(i)).sum();
        cost += match &cfg.blocks[b].term {
            Term::Goto(t) => {
                // then-side exits jump (`b`); else sides fall through.
                let jump = if then_side[b] { A_OP } else { 0 };
                jump + down[*t]
            }
            Term::Require { cond, next, .. } => {
                let check = w.expr(cond) + A_OP; // Assert
                if prune && !flow.reachable(*next) {
                    check
                } else {
                    check + down[*next]
                }
            }
            Term::Branch { cond, then_b, else_b, .. } => {
                let check = w.expr(cond) + A_OP; // Bz
                let mut arms = Vec::new();
                if !prune || flow.reachable(*then_b) {
                    arms.push(down[*then_b]);
                }
                if !prune || flow.reachable(*else_b) {
                    arms.push(down[*else_b]);
                }
                check + arms.into_iter().max().unwrap_or(0)
            }
            Term::Return => ret_cost,
        };
        down[b] = cost;
    }
    down
}

/// Opcode-budget cost of one API body as `compile_api` emits it
/// (prologue, while/payment asserts, body, phase advance, return) —
/// exactly the `api_fragment` op sequence. Dispatch scan excluded.
fn avm_api_cost(
    program: &Program,
    phase_idx: usize,
    api: &Api,
    flow: &BodyAnalysis,
    prune: bool,
) -> u64 {
    let phase = &program.phases[phase_idx];
    let w = AvmWalk::new(program, &api.params);
    // PushBytes; AppGlobalGet; Pop; PushInt; Eq; Assert
    let prologue = 6 * A_OP;
    let advance = phase_can_advance(flow, &phase.while_cond, prune);
    let ret_cost = {
        let we = w.expr(&phase.while_cond);
        // Bnz keep; [PushBytes; PushInt; AppGlobalPut]; Label keep
        let arms = if advance { 3 * A_OP } else { 0 };
        // returns; Itob; Log; PushInt 1; Return
        we + A_OP + arms + w.expr(&api.returns) + 4 * A_OP
    };
    let down = avm_body_max(&w, flow, prune, ret_cost);
    let body = match &flow.cfg.blocks[0].term {
        Term::Require { cond, next, .. } => {
            let check = w.expr(cond) + A_OP;
            if prune && !flow.reachable(*next) {
                check
            } else {
                let pay = match &api.pay {
                    Some(pay) => w.expr(pay) + 3 * A_OP, // Txn Amount; Eq; Assert
                    None => 3 * A_OP,                    // Txn Amount; NotL; Assert
                };
                check + pay + down[*next]
            }
        }
        _ => down[0],
    };
    prologue + body
}

/// Dispatch-scan cost for the `i`-th API entry: `txn ApplicationID; bz`
/// plus `i + 1` four-op probes (the match's `bnz` is taken; the body
/// label is free).
fn avm_dispatch_cost(entry_idx: usize) -> u64 {
    2 * A_OP + 4 * A_OP * (entry_idx as u64 + 1)
}

// -------------------------------------------------- certificates --

/// A dispatchable method with its certificates.
#[derive(Debug, Clone)]
pub struct MethodGas {
    /// Dispatch name (`put`, `view_open`, `closeContract`, …).
    pub name: String,
    /// Phase name for APIs, `None` for views/close.
    pub phase: Option<String>,
    /// Dispatch kind.
    pub kind: crate::access::MethodKind,
    /// The EVM dispatch selector.
    pub selector: [u8; 4],
    /// Full-transaction EVM bound (intrinsic + execution), affine in
    /// calldata length.
    pub evm: GasBound,
    /// Execution-only worst case (dispatch, body, memory — everything
    /// but the intrinsic). Runtime resolvers add the exact intrinsic of
    /// the observed calldata to this.
    pub evm_exec: u64,
    /// AVM opcode-budget bound. For views (EVM-only entries) this is
    /// the dispatcher's unknown-symbol rejection cost.
    pub avm: GasBound,
}

/// Worst-case gas certificates for every dispatchable method of one
/// contract, resolvable against concrete calls on either backend.
#[derive(Debug, Clone)]
pub struct ContractGasBounds {
    /// Contract name.
    pub name: String,
    /// Deployment bound: affine in the init-code payload, including the
    /// deploy wrapper and the code-deposit charge at the default
    /// runtime pad. Reporting only — deployments resolve conservatively
    /// at runtime.
    pub constructor_evm: GasBound,
    /// App-creation opcode budget.
    pub constructor_avm: GasBound,
    /// Certificates for phase APIs, EVM views and `closeContract`.
    pub methods: Vec<MethodGas>,
    /// Execution cost of an unknown-selector revert.
    evm_unknown_exec: u64,
    /// Opcode cost of an unknown-symbol rejection.
    avm_unknown_cost: u64,
}

/// Runs the cost-bound pass over a checked program.
///
/// # Errors
///
/// [`LangError::Backend`] when the program does not compile (the
/// constructor certificate prices the deployment payload, which needs
/// the compiled artifact's dimensions).
pub fn certify(program: &Program) -> Result<ContractGasBounds, LangError> {
    let compiled = evm_backend::compile(program)?;
    let n_apis = program.all_apis().count();
    let n_views = program.globals.iter().filter(|g| g.viewable).count();
    let n_entries = n_apis + n_views + 1;

    let mut methods = Vec::new();
    let mut entry = 0usize;
    for (phase_idx, phase) in program.phases.iter().enumerate() {
        for (api_idx, api) in phase.apis.iter().enumerate() {
            let flow = ir::analyze_api(program, phase_idx, api_idx);
            let (frag, mem_hi) =
                evm_api_fragment_cost(program, phase_idx, api, &flow, EvmModel::Cold, true);
            let exec = evm_dispatch_cost(entry) + frag + mem_expansion(mem_hi);
            let width = evm_backend::params_width(api) as u64;
            let avm_cost =
                avm_dispatch_cost(entry) + avm_api_cost(program, phase_idx, api, &flow, true);
            methods.push(MethodGas {
                name: api.name.clone(),
                phase: Some(phase.name.clone()),
                kind: crate::access::MethodKind::Api,
                selector: pol_evm::abi::selector(&evm_backend::signature(&api.name, &api.params)),
                evm: evm_affine(exec, 4 + width, false),
                evm_exec: exec,
                avm: GasBound::Const(avm_cost),
            });
            entry += 1;
        }
    }

    let avm_unknown_cost = 2 * A_OP + 4 * A_OP * n_apis as u64 + 4 * A_OP + 3 * A_OP;
    for global in program.globals.iter().filter(|g| g.viewable) {
        // PUSH slot; SLOAD; PUSH 0; MSTORE; PUSH 32; PUSH 0; RETURN
        let body = Op::Push1.base_gas() * 4
            + evm_gas::G_COLDSLOAD
            + Op::MStore.base_gas()
            + Op::Return.base_gas();
        let exec = evm_dispatch_cost(entry) + body + mem_expansion(32);
        let name = format!("view_{}", global.name);
        methods.push(MethodGas {
            name: name.clone(),
            phase: None,
            kind: crate::access::MethodKind::View,
            selector: pol_evm::abi::selector(&evm_backend::signature(&name, &[])),
            evm: evm_affine(exec, 4, false),
            evm_exec: exec,
            avm: GasBound::Const(avm_unknown_cost),
        });
        entry += 1;
    }

    {
        // closeContract: phase guard then self-balance transfer.
        let guard = Op::Push1.base_gas() * 3
            + evm_gas::G_COLDSLOAD
            + Op::Eq.base_gas()
            + Op::IsZero.base_gas()
            + Op::JumpI.base_gas();
        let fail = Op::JumpDest.base_gas() + 2 * Op::Push1.base_gas();
        let payout = 5 * Op::Push1.base_gas()
            + Op::SelfBalance.base_gas()
            + evm_gas::G_COLDSLOAD
            + Op::Push1.base_gas()
            + (evm_gas::G_COLDACCOUNTACCESS + evm_gas::G_CALLVALUE - evm_gas::G_CALLSTIPEND)
            + Op::Pop.base_gas();
        let exec = evm_dispatch_cost(entry) + guard + payout.max(fail);
        // txn ApplicationID; bz; n_apis failed probes; matching close
        // probe; then the close body (asserts, payout, approve).
        let avm_close =
            2 * A_OP + 4 * A_OP * n_apis as u64 + 4 * A_OP + 10 * A_OP + A_INNER_PAY + 2 * A_OP;
        methods.push(MethodGas {
            name: "closeContract".into(),
            phase: None,
            kind: crate::access::MethodKind::Close,
            selector: pol_evm::abi::selector("closeContract()"),
            evm: evm_affine(exec, 4, false),
            evm_exec: exec,
            avm: GasBound::Const(avm_close),
        });
    }

    // Constructor: init stores, globals, body, deploy wrapper, deposit.
    let constructor_evm = {
        let flow = ir::analyze_constructor(program);
        let mut w = EvmWalk::new(program, &program.creator.fields, true, EvmModel::Cold);
        let mut exec = w.plain(Op::Caller) + w.push() + w.sstore();
        for global in &program.globals {
            exec += match &global.init {
                GlobalInit::Const(0) => 0,
                GlobalInit::Const(_) => 2 * w.push() + w.sstore(),
                GlobalInit::CreatorAddress => w.plain(Op::Caller) + w.push() + w.sstore(),
                GlobalInit::FromField(field) => {
                    let ty = program.field_ty(field).expect("checked");
                    let v = if ty.is_word() {
                        w.expr(&Expr::Param(field.clone()))
                    } else {
                        w.hash_of(&[Expr::Param(field.clone())])
                    };
                    v + w.push() + w.sstore()
                }
            };
        }
        let ret_cost = w.push() + w.plain(Op::Jump) + w.plain(Op::JumpDest);
        let down = evm_body_max(&mut w, &flow, true, ret_cost);
        exec += down[0];
        // Deploy wrapper: PUSH×3; CODECOPY; PUSH×2; RETURN at offset 0.
        let runtime_len = compiled.runtime_len as u64;
        exec += 5 * w.push() + w.copy(Op::CodeCopy, 0, runtime_len);
        exec += mem_expansion(w.mem_hi);
        let deposit = evm_gas::G_CODEDEPOSIT * runtime_len;
        let fields_width: u64 = evm_backend::layout(&program.creator.fields)
            .iter()
            .map(|(_, _, _, len)| *len as u64)
            .sum();
        let payload = compiled.init_code.len() as u64 + fields_width;
        evm_affine(exec + deposit, payload, true)
    };

    let constructor_avm = {
        let flow = ir::analyze_constructor(program);
        let w = AvmWalk::new(program, &program.creator.fields);
        // txn ApplicationID; bz (taken); creator + phase stores.
        let mut cost = 2 * A_OP + 6 * A_OP;
        for global in &program.globals {
            cost += A_OP // PushBytes name
                + match &global.init {
                    GlobalInit::Const(_) | GlobalInit::CreatorAddress => A_OP,
                    GlobalInit::FromField(field) => {
                        let ty = program.field_ty(field).expect("checked");
                        if matches!(ty, Ty::Bytes(_)) {
                            w.bytes(&Expr::Param(field.clone())) + A_KECCAK
                        } else {
                            w.expr(&Expr::Param(field.clone()))
                        }
                    }
                }
                + A_OP; // AppGlobalPut
        }
        let down = avm_body_max(&w, &flow, true, 2 * A_OP);
        GasBound::Const(cost + down[0])
    };

    Ok(ContractGasBounds {
        name: program.name.clone(),
        constructor_evm,
        constructor_avm,
        methods,
        evm_unknown_exec: evm_dispatch_cost(n_entries.saturating_sub(1))
            // The scan runs all probes without binding an entry, then
            // jumps to the shared revert tail.
            - (Op::JumpDest.base_gas() + Op::Pop.base_gas())
            + Op::Push1.base_gas()
            + Op::Jump.base_gas()
            + Op::JumpDest.base_gas()
            + 2 * Op::Push1.base_gas(),
        avm_unknown_cost,
    })
}

/// Unpruned worst-path cost of one API's EVM fragment priced exactly
/// like the bytecode verifier at `payload_bytes`. By construction it
/// lies between the verifier's observed worst path (which may prune
/// constant branches) and the straight-line sum over the fragment.
pub fn evm_fragment_bound(
    program: &Program,
    phase_idx: usize,
    api_idx: usize,
    payload_bytes: u64,
) -> u64 {
    let api = &program.phases[phase_idx].apis[api_idx];
    let flow = ir::analyze_api(program, phase_idx, api_idx);
    evm_api_fragment_cost(
        program,
        phase_idx,
        api,
        &flow,
        EvmModel::Verifier { payload: payload_bytes },
        false,
    )
    .0
}

/// Unpruned worst-path opcode cost of one API's AVM fragment. Lies
/// between the AVM verifier's observed worst path and
/// [`pol_avm::cost::program_cost`] of the fragment.
pub fn avm_fragment_bound(program: &Program, phase_idx: usize, api_idx: usize) -> u64 {
    let api = &program.phases[phase_idx].apis[api_idx];
    let flow = ir::analyze_api(program, phase_idx, api_idx);
    avm_api_cost(program, phase_idx, api, &flow, false)
}

impl ContractGasBounds {
    /// Looks up a method certificate by dispatch name.
    pub fn method(&self, name: &str) -> Option<&MethodGas> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// The proven worst-case gas of a concrete EVM call: the exact
    /// intrinsic of the observed calldata plus the certified execution
    /// worst case of the selected method (unknown selectors price the
    /// dispatcher's revert scan). `None` when the method's bound is ⊤.
    pub fn resolve_evm_call(&self, calldata: &[u8]) -> Option<u64> {
        let mut selector = [0u8; 4];
        for (i, b) in selector.iter_mut().enumerate() {
            *b = calldata.get(i).copied().unwrap_or(0);
        }
        let exec = match self.methods.iter().find(|m| m.selector == selector) {
            Some(m) => {
                if m.evm.is_top() {
                    return None;
                }
                m.evm_exec
            }
            None => self.evm_unknown_exec,
        };
        Some(evm_gas::intrinsic_gas(calldata, false).saturating_add(exec))
    }

    /// The proven worst-case opcode cost of a concrete AVM application
    /// call (first argument is the dispatch symbol). `None` when the
    /// method's bound is ⊤.
    pub fn resolve_app_call(&self, args: &[Vec<u8>]) -> Option<u64> {
        let Some(symbol) = args.first() else {
            return Some(self.avm_unknown_cost);
        };
        match self.methods.iter().find(|m| m.name.as_bytes() == symbol.as_slice()) {
            Some(m) => m.avm.worst_case(),
            None => Some(self.avm_unknown_cost),
        }
    }

    /// Deterministic JSON rendering (the `polc gas --json` artifact).
    pub fn to_json(&self, file: &str, indent: &str) -> String {
        let methods = self
            .methods
            .iter()
            .map(|m| {
                format!(
                    "{indent}    {{\"name\": {}, \"phase\": {}, \"kind\": {}, \
                     \"selector\": \"0x{}\", \"evm\": {}, \"evm_exec\": {}, \"avm\": {}}}",
                    json_str(&m.name),
                    m.phase.as_ref().map_or("null".to_string(), |p| json_str(p)),
                    json_str(kind_label(m.kind)),
                    hex4(&m.selector),
                    bound_json(&m.evm),
                    m.evm_exec,
                    bound_json(&m.avm),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{indent}{{\n{indent}  \"file\": {},\n{indent}  \"name\": {},\n\
             {indent}  \"block_gas_budget\": {},\n{indent}  \"avm_call_budget\": {},\n\
             {indent}  \"constructor\": {{\"evm\": {}, \"avm\": {}}},\n\
             {indent}  \"methods\": [\n{methods}\n{indent}  ]\n{indent}}}",
            json_str(file),
            json_str(&self.name),
            DEFAULT_BLOCK_GAS_BUDGET,
            pol_avm::cost::CALL_BUDGET,
            bound_json(&self.constructor_evm),
            bound_json(&self.constructor_avm),
        )
    }

    /// Human-readable rendering (the `polc gas` text output).
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "contract {} (block budget {}, avm budget {})\n",
            self.name,
            DEFAULT_BLOCK_GAS_BUDGET,
            pol_avm::cost::CALL_BUDGET
        );
        out.push_str(&format!(
            "  {:<18} evm<= {:>9}  avm {:>5}\n",
            "constructor",
            bound_worst_label(&self.constructor_evm),
            bound_worst_label(&self.constructor_avm),
        ));
        for m in &self.methods {
            let over_block = m.evm.worst_case().is_none_or(|w| w > DEFAULT_BLOCK_GAS_BUDGET);
            let over_budget = m.avm.worst_case().is_none_or(|w| w > pol_avm::cost::CALL_BUDGET);
            let mut flags = String::new();
            if matches!(m.kind, crate::access::MethodKind::Api) && over_block {
                flags.push_str("  !block-budget");
            }
            if matches!(m.kind, crate::access::MethodKind::Api) && over_budget {
                flags.push_str("  !avm-budget");
            }
            out.push_str(&format!(
                "  {:<18} evm<= {:>9} (exec {:>7})  avm {:>5}{}\n",
                m.name,
                bound_worst_label(&m.evm),
                m.evm_exec,
                bound_worst_label(&m.avm),
                flags,
            ));
        }
        out
    }
}

fn kind_label(kind: crate::access::MethodKind) -> &'static str {
    match kind {
        crate::access::MethodKind::Api => "api",
        crate::access::MethodKind::View => "view",
        crate::access::MethodKind::Close => "close",
    }
}

fn hex4(sel: &[u8; 4]) -> String {
    sel.iter().map(|b| format!("{b:02x}")).collect()
}

fn bound_worst_label(b: &GasBound) -> String {
    match b.worst_case() {
        Some(w) => w.to_string(),
        None => "top".into(),
    }
}

fn bound_json(b: &GasBound) -> String {
    match b {
        GasBound::Const(c) => format!("{{\"form\": \"const\", \"worst_case\": {c}}}"),
        GasBound::Affine { base, per_byte, max_bytes } => format!(
            "{{\"form\": \"affine\", \"base\": {base}, \"per_byte\": {per_byte}, \
             \"max_bytes\": {max_bytes}, \"worst_case\": {}}}",
            base + per_byte * max_bytes
        ),
        GasBound::Top => "{\"form\": \"top\"}".to_string(),
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::avm as avm_backend;
    use crate::backend::AbiValue;
    use pol_avm::{AppCallParams, Avm};
    use pol_evm::{CallParams, Evm};
    use pol_ledger::Address;

    fn v1() -> Program {
        let src = include_str!("../../core/contracts/proof_of_location.pol");
        let program = crate::parse(src).expect("parses");
        assert!(crate::check::check(&program).is_empty());
        program
    }

    #[test]
    fn counter_apis_certified_on_both_backends() {
        let program = Program::counter_example();
        let bounds = certify(&program).expect("certifies");
        for m in &bounds.methods {
            assert!(!m.evm.is_top(), "{} evm bound degraded", m.name);
            assert!(!m.avm.is_top(), "{} avm bound degraded", m.name);
        }
        let bump = bounds.method("bump").expect("api");
        assert!(matches!(bump.evm, GasBound::Affine { .. }));
        assert!(matches!(bump.avm, GasBound::Const(_)));
    }

    #[test]
    fn observed_evm_gas_stays_under_certificates() {
        let program = Program::counter_example();
        let bounds = certify(&program).expect("certifies");
        let compiled = evm_backend::compile(&program).unwrap();
        let init = compiled.init_with_args(&[AbiValue::Word(2)]).unwrap();
        let mut evm = Evm::new();
        let mut balances = pol_evm::interpreter::Balances::new();
        let deployer = Address([0xaa; 20]);
        let (addr, deploy_out) = evm.deploy(deployer, &init, 30_000_000, &mut balances).unwrap();
        assert!(deploy_out.success);
        let ctor_bound = bounds.constructor_evm.worst_case().expect("bounded");
        assert!(
            deploy_out.gas_used <= ctor_bound,
            "deploy {} > bound {ctor_bound}",
            deploy_out.gas_used
        );

        let caller = Address([1; 20]);
        // Exercise: api call (twice: phase advance arm + keep arm),
        // view, close, unknown selector.
        let mut datas = vec![
            compiled.encode_call("bump", &[AbiValue::Word(5)]).unwrap(),
            compiled.encode_call("bump", &[AbiValue::Word(7)]).unwrap(),
            compiled.encode_call("bump", &[AbiValue::Word(1)]).unwrap(), // reverts: phase over
            compiled.encode_call("view_count", &[]).unwrap(),
            compiled.encode_call("closeContract", &[]).unwrap(),
            vec![0xde, 0xad, 0xbe, 0xef],
        ];
        for data in datas.drain(..) {
            let bound = bounds.resolve_evm_call(&data).expect("bounded");
            let out = evm
                .call(CallParams::new(caller, addr).with_data(data.clone()), &mut balances)
                .unwrap();
            assert!(
                out.gas_used <= bound,
                "call {:02x?} used {} > bound {bound}",
                &data[..4.min(data.len())],
                out.gas_used
            );
            // Pinned slack: certificates stay within 4x of a successful
            // execution (reverting paths stop early, so the full-path
            // bound says nothing about their spend).
            if out.success {
                assert!(
                    bound <= out.gas_used.saturating_mul(4),
                    "bound {bound} looser than 4x observed {}",
                    out.gas_used
                );
            }
        }
    }

    #[test]
    fn observed_avm_cost_stays_under_certificates() {
        let program = Program::counter_example();
        let bounds = certify(&program).expect("certifies");
        let compiled = avm_backend::compile(&program).unwrap();
        let mut avm = Avm::new();
        let mut balances = pol_avm::interpreter::Balances::new();
        let creator = Address([0xaa; 20]);
        balances.insert(creator, 10_000_000);
        let app_id = avm
            .create_app_with_args(
                creator,
                compiled.program.clone(),
                compiled.encode_create_args(&[AbiValue::Word(1)]).unwrap(),
                &mut balances,
            )
            .unwrap();
        let caller = Address([1; 20]);
        let calls = vec![
            compiled.encode_call("bump", &[AbiValue::Word(4)]).unwrap(),
            vec![b"closeContract".to_vec()],
            vec![b"nonsense".to_vec()],
        ];
        for args in calls {
            let bound = bounds.resolve_app_call(&args).expect("bounded");
            let out = avm
                .call(AppCallParams::new(caller, app_id).with_args(args.clone()), &mut balances)
                .unwrap();
            assert!(
                out.cost <= bound,
                "call {:?} cost {} > bound {bound}",
                String::from_utf8_lossy(&args[0]),
                out.cost
            );
        }
    }

    #[test]
    fn fragment_bounds_sandwich_the_bytecode_verifiers() {
        for program in [Program::counter_example(), v1()] {
            let payload = program
                .all_apis()
                .map(|(_, api)| evm_backend::params_width(api) as u64)
                .max()
                .unwrap_or(0);
            for (phase_idx, phase) in program.phases.iter().enumerate() {
                for (api_idx, api) in phase.apis.iter().enumerate() {
                    // EVM: verifier worst path <= static unpruned <= linear.
                    let fragment =
                        evm_backend::api_fragment(&program, phase_idx, api).expect("compiles");
                    let report = pol_evm::verifier::verify(
                        &fragment,
                        &pol_evm::verifier::VerifyConfig {
                            allowed_post_call_sstore_keys: &[evm_backend::SLOT_PHASE],
                            payload_bytes: payload,
                        },
                    )
                    .expect("verifies");
                    let stat = evm_fragment_bound(&program, phase_idx, api_idx, payload);
                    let linear = crate::backend::evm_linear_bound(&fragment, payload);
                    assert!(
                        report.worst_case_gas <= stat,
                        "{}: verifier {} > static {stat}",
                        api.name,
                        report.worst_case_gas
                    );
                    assert!(stat <= linear, "{}: static {stat} > linear {linear}", api.name);

                    // AVM: verifier worst path <= static unpruned <= linear.
                    let ops =
                        avm_backend::api_fragment(&program, phase_idx, api).expect("compiles");
                    let aprog = pol_avm::program::AvmProgram::new(ops);
                    let areport = pol_avm::verifier::verify(&aprog).expect("verifies");
                    let astat = avm_fragment_bound(&program, phase_idx, api_idx);
                    let alinear = pol_avm::cost::program_cost(aprog.ops());
                    assert!(
                        areport.worst_case_cost <= astat,
                        "{}: avm verifier {} > static {astat}",
                        api.name,
                        areport.worst_case_cost
                    );
                    assert!(
                        astat <= alinear,
                        "{}: avm static {astat} > linear {alinear}",
                        api.name
                    );
                }
            }
        }
    }

    #[test]
    fn v1_apis_certified_and_within_block_budget() {
        let program = v1();
        let bounds = certify(&program).expect("certifies");
        for m in bounds.methods.iter().filter(|m| m.kind == crate::access::MethodKind::Api) {
            let w = m.evm.worst_case().expect("bounded");
            assert!(w <= DEFAULT_BLOCK_GAS_BUDGET, "{} worst {w} exceeds block budget", m.name);
            assert!(!m.avm.is_top(), "{} avm degraded", m.name);
        }
    }

    #[test]
    fn dead_branch_is_pruned_from_the_certificate() {
        // `if 0 { expensive } else {}` — the interval domain kills the
        // then arm, so the pruned certificate must beat the unpruned
        // fragment bound by at least the map-write cost.
        use crate::ast::*;
        let expensive =
            Stmt::MapSet { map: "m".into(), key: Expr::UInt(1), value: vec![Expr::UInt(2)] };
        let mk = |body: Vec<Stmt>| Program {
            name: "prune".into(),
            creator: Participant { name: "C".into(), fields: vec![] },
            constructor: vec![],
            globals: vec![GlobalDecl {
                name: "live".into(),
                ty: Ty::UInt,
                init: GlobalInit::Const(1),
                viewable: false,
            }],
            maps: vec![MapDecl { name: "m".into(), value_bytes: 32 }],
            phases: vec![Phase {
                name: "p".into(),
                while_cond: Expr::Bin(
                    BinOp::Gt,
                    Box::new(Expr::Global("live".into())),
                    Box::new(Expr::UInt(0)),
                ),
                invariant: Expr::UInt(1),
                apis: vec![Api {
                    name: "go".into(),
                    params: vec![],
                    pay: None,
                    body,
                    returns: Expr::UInt(0),
                }],
            }],
            spans: crate::diag::SpanTable::default(),
        };
        let dead = mk(vec![Stmt::If {
            cond: Expr::UInt(0),
            then: vec![expensive.clone()],
            otherwise: vec![],
        }]);
        let live = mk(vec![Stmt::If {
            cond: Expr::Global("live".into()),
            then: vec![expensive],
            otherwise: vec![],
        }]);
        let dead_bound = certify(&dead).unwrap().method("go").unwrap().evm_exec;
        let live_bound = certify(&live).unwrap().method("go").unwrap().evm_exec;
        assert!(
            dead_bound + 20_000 < live_bound,
            "pruning had no effect: dead {dead_bound} vs live {live_bound}"
        );
    }

    #[test]
    fn render_and_json_are_stable() {
        let bounds = certify(&Program::counter_example()).expect("certifies");
        let text = bounds.render_text();
        assert!(text.contains("contract counter"));
        assert!(text.contains("constructor"));
        assert!(text.contains("bump"));
        let json = bounds.to_json("counter.pol", "");
        assert!(json.contains("\"block_gas_budget\": 30000000"));
        assert!(json.contains("\"form\": \"affine\""));
        assert!(json.contains("\"form\": \"const\""));
    }
}
