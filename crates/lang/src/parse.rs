//! The surface syntax: a Reach-like contract language parsed into the
//! [`crate::ast`] model.
//!
//! Where the paper's system keeps its one source of truth in an
//! `index.rsh` file, this front-end gives the same property: contracts
//! are written once as text, parsed, checked, verified and compiled for
//! every chain. Grammar sketch:
//!
//! ```text
//! contract counter {
//!     participant Creator { limit: uint }
//!
//!     global remaining: uint = field(limit) view;
//!     global count:     uint = 0 view;
//!
//!     phase counting while remaining > 0 invariant remaining >= 0 {
//!         api bump(by: uint) -> remaining {
//!             require(by > 0);
//!             count = count + by;
//!             remaining = remaining - 1;
//!         }
//!     }
//! }
//! ```
//!
//! Types are `uint`, `bool`, `address` and `bytes[N]`; maps are declared
//! `map name[N];` (N = value capacity in bytes); `constructor { … }`
//! gives the deployment body; APIs may declare a required payment with
//! `pay <expr>` before the `-> <return-expr>`.
//!
//! Besides the AST, the parser records a byte-offset [`SpanTable`] on
//! the returned [`Program`] so downstream diagnostics can point at the
//! offending source text.

use crate::ast::{
    Api, BinOp, Expr, GlobalDecl, GlobalInit, MapDecl, Participant, Phase, Program, Stmt, Ty,
};
use crate::diag::{NodePath, Owner, Span, SpanTable};

/// A parse failure, with 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line of the offending token.
    pub line: usize,
    /// Column of the offending token.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Number(u64),
    Punct(&'static str),
    Eof,
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: usize,
    col: usize,
    /// Byte offset of the token's first byte.
    start: usize,
    /// Byte offset one past the token's last byte.
    end: usize,
}

struct Lexer {
    tokens: Vec<Token>,
}

const PUNCTS: [&str; 22] = [
    "==", "!=", "<=", ">=", "&&", "||", "->", "{", "}", "(", ")", "[", "]", ",", ";", ":", "=",
    "<", ">", "+", "-", "!",
];
const PUNCTS_MULDIV: [&str; 2] = ["*", "/"];

fn lex(source: &str) -> Result<Lexer, ParseError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = source.chars().collect();
    // Byte offset of every char index (plus one-past-the-end), so tokens
    // can carry byte spans while the scanner works on char indices.
    let offsets: Vec<usize> = {
        let mut v = Vec::with_capacity(bytes.len() + 1);
        let mut b = 0usize;
        for c in &bytes {
            v.push(b);
            b += c.len_utf8();
        }
        v.push(b);
        v
    };
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;
    'outer: while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            col = 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            col += 1;
            continue;
        }
        // Line comments.
        if c == '/' && bytes.get(i + 1) == Some(&'/') {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Two-char punctuation first.
        for p in PUNCTS {
            if p.len() == 2 {
                let mut chars = p.chars();
                let (a, b) = (chars.next().unwrap(), chars.next().unwrap());
                if c == a && bytes.get(i + 1) == Some(&b) {
                    tokens.push(Token {
                        tok: Tok::Punct(p),
                        line,
                        col,
                        start: offsets[i],
                        end: offsets[i + 2],
                    });
                    i += 2;
                    col += 2;
                    continue 'outer;
                }
            }
        }
        for p in PUNCTS.iter().chain(PUNCTS_MULDIV.iter()) {
            if p.len() == 1 && c == p.chars().next().unwrap() {
                tokens.push(Token {
                    tok: Tok::Punct(p),
                    line,
                    col,
                    start: offsets[i],
                    end: offsets[i + 1],
                });
                i += 1;
                col += 1;
                continue 'outer;
            }
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '_') {
                i += 1;
            }
            let text: String = bytes[start..i].iter().filter(|c| **c != '_').collect();
            let value = text.parse::<u64>().map_err(|_| ParseError {
                line,
                col,
                message: format!("number {text:?} out of range"),
            })?;
            tokens.push(Token {
                tok: Tok::Number(value),
                line,
                col,
                start: offsets[start],
                end: offsets[i],
            });
            col += i - start;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            tokens.push(Token {
                tok: Tok::Ident(text),
                line,
                col,
                start: offsets[start],
                end: offsets[i],
            });
            col += i - start;
            continue;
        }
        return Err(ParseError { line, col, message: format!("unexpected character {c:?}") });
    }
    tokens.push(Token {
        tok: Tok::Eof,
        line,
        col,
        start: offsets[bytes.len()],
        end: offsets[bytes.len()],
    });
    Ok(Lexer { tokens })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Names currently in parameter scope (API params or constructor
    /// fields); other identifiers resolve to globals.
    param_scope: Vec<String>,
    /// Spans recorded for the program under construction.
    spans: SpanTable,
    /// End offset of the most recently consumed token.
    last_end: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn here(&self) -> (usize, usize) {
        (self.tokens[self.pos].line, self.tokens[self.pos].col)
    }

    /// Byte offset where the next token starts.
    fn start_offset(&self) -> usize {
        self.tokens[self.pos].start
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError { line, col, message: message.into() }
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        self.last_end = self.tokens[self.pos].end;
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected {p:?}, found {other:?}"))),
        }
    }

    fn eat_punct(&mut self, p: &'static str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Expects an identifier, recording its span under `path`.
    fn expect_ident_at(&mut self, path: NodePath) -> Result<String, ParseError> {
        let start = self.start_offset();
        let name = self.expect_ident()?;
        self.spans.set(path, Span::new(start, self.last_end));
        Ok(name)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek().clone() {
            Tok::Ident(name) if name == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected keyword {kw:?}, found {other:?}"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(name) if name == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_number(&mut self) -> Result<u64, ParseError> {
        match self.peek().clone() {
            Tok::Number(v) => {
                self.bump();
                Ok(v)
            }
            other => Err(self.error(format!("expected number, found {other:?}"))),
        }
    }

    // ---- grammar ----

    fn program(&mut self) -> Result<Program, ParseError> {
        self.expect_keyword("contract")?;
        let name = self.expect_ident_at(NodePath::ContractName)?;
        self.expect_punct("{")?;
        let mut creator = None;
        let mut constructor = Vec::new();
        let mut globals = Vec::new();
        let mut maps = Vec::new();
        let mut phases = Vec::new();
        while !self.eat_punct("}") {
            match self.peek().clone() {
                Tok::Ident(kw) if kw == "participant" => {
                    let p = self.participant()?;
                    if creator.replace(p).is_some() {
                        return Err(self.error("only one participant is supported"));
                    }
                }
                Tok::Ident(kw) if kw == "global" => {
                    let idx = globals.len();
                    globals.push(self.global(idx)?);
                }
                Tok::Ident(kw) if kw == "map" => {
                    let idx = maps.len();
                    maps.push(self.map_decl(idx)?);
                }
                Tok::Ident(kw) if kw == "constructor" => {
                    self.bump();
                    self.param_scope = creator
                        .as_ref()
                        .map(|p: &Participant| p.fields.iter().map(|(n, _)| n.clone()).collect())
                        .unwrap_or_default();
                    let mut prefix = Vec::new();
                    constructor = self.block(Owner::Constructor, &mut prefix)?;
                    self.param_scope.clear();
                }
                Tok::Ident(kw) if kw == "phase" => {
                    let idx = phases.len();
                    phases.push(self.phase(idx, creator.as_ref())?);
                }
                other => return Err(self.error(format!("unexpected item {other:?}"))),
            }
        }
        if !matches!(self.peek(), Tok::Eof) {
            return Err(self.error("trailing input after contract body"));
        }
        let creator = creator.ok_or_else(|| self.error("contract has no participant"))?;
        let spans = std::mem::take(&mut self.spans);
        Ok(Program { name, creator, constructor, globals, maps, phases, spans })
    }

    fn participant(&mut self) -> Result<Participant, ParseError> {
        self.expect_keyword("participant")?;
        let name = self.expect_ident()?;
        self.expect_punct("{")?;
        let mut fields = Vec::new();
        while !self.eat_punct("}") {
            let field = self.expect_ident_at(NodePath::Field(fields.len()))?;
            self.expect_punct(":")?;
            let ty = self.ty()?;
            fields.push((field, ty));
            if !self.eat_punct(",") && !matches!(self.peek(), Tok::Punct("}")) {
                return Err(self.error("expected ',' or '}' in participant fields"));
            }
        }
        Ok(Participant { name, fields })
    }

    fn ty(&mut self) -> Result<Ty, ParseError> {
        let name = self.expect_ident()?;
        match name.as_str() {
            "uint" => Ok(Ty::UInt),
            "bool" => Ok(Ty::Bool),
            "address" => Ok(Ty::Address),
            "bytes" => {
                self.expect_punct("[")?;
                let n = self.expect_number()? as usize;
                self.expect_punct("]")?;
                Ok(Ty::Bytes(n))
            }
            other => Err(self.error(format!("unknown type {other:?}"))),
        }
    }

    fn global(&mut self, idx: usize) -> Result<GlobalDecl, ParseError> {
        self.expect_keyword("global")?;
        let name = self.expect_ident_at(NodePath::Global(idx))?;
        self.expect_punct(":")?;
        let ty = self.ty()?;
        self.expect_punct("=")?;
        let init = match self.peek().clone() {
            Tok::Number(v) => {
                self.bump();
                GlobalInit::Const(v)
            }
            Tok::Ident(kw) if kw == "field" => {
                self.bump();
                self.expect_punct("(")?;
                let field = self.expect_ident()?;
                self.expect_punct(")")?;
                GlobalInit::FromField(field)
            }
            Tok::Ident(kw) if kw == "creator" => {
                self.bump();
                GlobalInit::CreatorAddress
            }
            other => return Err(self.error(format!("expected initialiser, found {other:?}"))),
        };
        let viewable = self.eat_keyword("view");
        self.expect_punct(";")?;
        Ok(GlobalDecl { name, ty, init, viewable })
    }

    fn map_decl(&mut self, idx: usize) -> Result<MapDecl, ParseError> {
        self.expect_keyword("map")?;
        let name = self.expect_ident_at(NodePath::Map(idx))?;
        self.expect_punct("[")?;
        let value_bytes = self.expect_number()? as usize;
        self.expect_punct("]")?;
        self.expect_punct(";")?;
        Ok(MapDecl { name, value_bytes })
    }

    fn phase(&mut self, idx: usize, creator: Option<&Participant>) -> Result<Phase, ParseError> {
        let _ = creator;
        self.expect_keyword("phase")?;
        let name = self.expect_ident_at(NodePath::Phase(idx))?;
        self.expect_keyword("while")?;
        self.param_scope.clear();
        let while_cond = self.spanned_expr(NodePath::PhaseCond(idx))?;
        self.expect_keyword("invariant")?;
        let invariant = self.spanned_expr(NodePath::Invariant(idx))?;
        self.expect_punct("{")?;
        let mut apis = Vec::new();
        while !self.eat_punct("}") {
            let api_idx = apis.len();
            apis.push(self.api(idx, api_idx)?);
        }
        Ok(Phase { name, while_cond, invariant, apis })
    }

    fn api(&mut self, phase_idx: usize, api_idx: usize) -> Result<Api, ParseError> {
        self.expect_keyword("api")?;
        let name = self.expect_ident_at(NodePath::Api { phase: phase_idx, api: api_idx })?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        while !self.eat_punct(")") {
            let pname = self.expect_ident()?;
            self.expect_punct(":")?;
            let ty = self.ty()?;
            params.push((pname, ty));
            if !self.eat_punct(",") && !matches!(self.peek(), Tok::Punct(")")) {
                return Err(self.error("expected ',' or ')' in parameters"));
            }
        }
        self.param_scope = params.iter().map(|(n, _)| n.clone()).collect();
        let pay = if self.eat_keyword("pay") {
            Some(self.spanned_expr(NodePath::ApiPay { phase: phase_idx, api: api_idx })?)
        } else {
            None
        };
        self.expect_punct("->")?;
        let returns = self.spanned_expr(NodePath::ApiReturns { phase: phase_idx, api: api_idx })?;
        let mut prefix = Vec::new();
        let body =
            self.block(Owner::Api { phase: phase_idx as u32, api: api_idx as u32 }, &mut prefix)?;
        self.param_scope.clear();
        Ok(Api { name, params, pay, body, returns })
    }

    fn block(&mut self, owner: Owner, prefix: &mut Vec<u32>) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            prefix.push(out.len() as u32);
            let stmt = self.stmt(owner, prefix);
            prefix.pop();
            out.push(stmt?);
        }
        Ok(out)
    }

    fn stmt(&mut self, owner: Owner, prefix: &mut Vec<u32>) -> Result<Stmt, ParseError> {
        let start = self.start_offset();
        let stmt = self.stmt_inner(owner, prefix)?;
        self.spans.set(NodePath::Stmt(owner, prefix.clone()), Span::new(start, self.last_end));
        Ok(stmt)
    }

    fn stmt_inner(&mut self, owner: Owner, prefix: &mut Vec<u32>) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Tok::Ident(kw) if kw == "require" => {
                self.bump();
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                self.expect_punct(";")?;
                Ok(Stmt::Require(cond))
            }
            Tok::Ident(kw) if kw == "delete" => {
                self.bump();
                let map = self.expect_ident()?;
                self.expect_punct("[")?;
                let key = self.expr()?;
                self.expect_punct("]")?;
                self.expect_punct(";")?;
                Ok(Stmt::MapDelete { map, key })
            }
            Tok::Ident(kw) if kw == "transfer" => {
                self.bump();
                self.expect_punct("(")?;
                let to = self.expr()?;
                self.expect_punct(",")?;
                let amount = self.expr()?;
                self.expect_punct(")")?;
                self.expect_punct(";")?;
                Ok(Stmt::Transfer { to, amount })
            }
            Tok::Ident(kw) if kw == "log" => {
                self.bump();
                self.expect_punct("(")?;
                let parts = self.expr_list(")")?;
                self.expect_punct(";")?;
                Ok(Stmt::Log(parts))
            }
            Tok::Ident(kw) if kw == "if" => {
                self.bump();
                let cond = self.expr()?;
                prefix.push(0);
                let then = self.block(owner, prefix);
                prefix.pop();
                let then = then?;
                let otherwise = if self.eat_keyword("else") {
                    prefix.push(1);
                    let otherwise = self.block(owner, prefix);
                    prefix.pop();
                    otherwise?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then, otherwise })
            }
            Tok::Ident(name) => {
                self.bump();
                if self.eat_punct("[") {
                    // map set: name[key] = [e, …];
                    let key = self.expr()?;
                    self.expect_punct("]")?;
                    self.expect_punct("=")?;
                    self.expect_punct("[")?;
                    let value = self.expr_list("]")?;
                    self.expect_punct(";")?;
                    Ok(Stmt::MapSet { map: name, key, value })
                } else {
                    self.expect_punct("=")?;
                    let value = self.expr()?;
                    self.expect_punct(";")?;
                    Ok(Stmt::GlobalSet { name, value })
                }
            }
            other => Err(self.error(format!("expected statement, found {other:?}"))),
        }
    }

    fn expr_list(&mut self, close: &'static str) -> Result<Vec<Expr>, ParseError> {
        let mut out = Vec::new();
        while !self.eat_punct(close) {
            out.push(self.expr()?);
            if !self.eat_punct(",") && !matches!(self.peek(), Tok::Punct(p) if *p == close) {
                return Err(self.error(format!("expected ',' or {close:?} in list")));
            }
        }
        Ok(out)
    }

    /// Parses an expression, recording its full extent under `path`.
    fn spanned_expr(&mut self, path: NodePath) -> Result<Expr, ParseError> {
        let start = self.start_offset();
        let e = self.expr()?;
        self.spans.set(path, Span::new(start, self.last_end));
        Ok(e)
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_punct("||") {
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_punct("&&") {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Punct("==") => Some(BinOp::Eq),
            Tok::Punct("!=") => Some(BinOp::Ne),
            Tok::Punct("<=") => Some(BinOp::Le),
            Tok::Punct(">=") => Some(BinOp::Ge),
            Tok::Punct("<") => Some(BinOp::Lt),
            Tok::Punct(">") => Some(BinOp::Gt),
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let rhs = self.add_expr()?;
                Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
            }
            None => Ok(lhs),
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("+") => BinOp::Add,
                Tok::Punct("-") => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("*") => BinOp::Mul,
                Tok::Punct("/") => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("!") {
            let inner = self.unary_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Number(v) => {
                self.bump();
                Ok(Expr::UInt(v))
            }
            Tok::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                match name.as_str() {
                    "balance" => Ok(Expr::Balance),
                    "caller" => Ok(Expr::Caller),
                    "hash" => {
                        self.expect_punct("(")?;
                        let parts = self.expr_list(")")?;
                        Ok(Expr::Hash(parts))
                    }
                    "contains" => {
                        self.expect_punct("(")?;
                        let map = self.expect_ident()?;
                        self.expect_punct(",")?;
                        let key = self.expr()?;
                        self.expect_punct(")")?;
                        Ok(Expr::MapContains { map, key: Box::new(key) })
                    }
                    _ => {
                        if self.eat_punct("[") {
                            let key = self.expr()?;
                            self.expect_punct("]")?;
                            Ok(Expr::MapGet { map: name, key: Box::new(key) })
                        } else if self.param_scope.contains(&name) {
                            Ok(Expr::Param(name))
                        } else {
                            Ok(Expr::Global(name))
                        }
                    }
                }
            }
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }
}

/// Parses a contract source into the AST (syntax only — run
/// [`crate::check::check`] afterwards for typing).
///
/// # Errors
///
/// [`ParseError`] with source position on the first syntax error.
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let lexer = lex(source)?;
    let mut parser = Parser {
        tokens: lexer.tokens,
        pos: 0,
        param_scope: Vec::new(),
        spans: SpanTable::default(),
        last_end: 0,
    };
    parser.program()
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER_SRC: &str = r"
        contract counter {
            participant Creator { limit: uint }

            global remaining: uint = field(limit) view;
            global count:     uint = 0 view;

            phase counting while remaining > 0 invariant remaining >= 0 {
                api bump(by: uint) -> remaining {
                    require(by > 0);
                    count = count + by;
                    remaining = remaining - 1;
                }
            }
        }
    ";

    #[test]
    fn counter_source_matches_builder_ast() {
        let parsed = parse(COUNTER_SRC).unwrap();
        assert_eq!(parsed, Program::counter_example());
    }

    #[test]
    fn parsed_program_passes_pipeline() {
        let parsed = parse(COUNTER_SRC).unwrap();
        assert!(crate::check::check(&parsed).is_empty());
        assert!(crate::verify::verify(&parsed).ok());
        assert!(crate::backend::compile(&parsed).is_ok());
    }

    #[test]
    fn spans_point_at_source_text() {
        let p = parse(COUNTER_SRC).unwrap();
        let g0 = p.spans.get(&NodePath::Global(0));
        assert_eq!(&COUNTER_SRC[g0.start..g0.end], "remaining");
        let g1 = p.spans.get(&NodePath::Global(1));
        assert_eq!(&COUNTER_SRC[g1.start..g1.end], "count");
        let api = p.spans.get(&NodePath::Api { phase: 0, api: 0 });
        assert_eq!(&COUNTER_SRC[api.start..api.end], "bump");
        let owner = Owner::Api { phase: 0, api: 0 };
        let s0 = p.spans.get(&NodePath::Stmt(owner, vec![0]));
        assert_eq!(&COUNTER_SRC[s0.start..s0.end], "require(by > 0);");
        let s2 = p.spans.get(&NodePath::Stmt(owner, vec![2]));
        assert_eq!(&COUNTER_SRC[s2.start..s2.end], "remaining = remaining - 1;");
        let cond = p.spans.get(&NodePath::PhaseCond(0));
        assert_eq!(&COUNTER_SRC[cond.start..cond.end], "remaining > 0");
    }

    #[test]
    fn nested_stmt_spans_use_branch_paths() {
        let src = r"
            contract c {
                participant P { cap: uint }
                global left: uint = field(cap);
                phase run while left > 0 invariant left >= 0 {
                    api f() -> left {
                        if left > 2 {
                            left = left - 1;
                        } else {
                            log(left);
                        }
                    }
                }
            }
        ";
        let p = parse(src).unwrap();
        let owner = Owner::Api { phase: 0, api: 0 };
        let then0 = p.spans.get(&NodePath::Stmt(owner, vec![0, 0, 0]));
        assert_eq!(&src[then0.start..then0.end], "left = left - 1;");
        let else0 = p.spans.get(&NodePath::Stmt(owner, vec![0, 1, 0]));
        assert_eq!(&src[else0.start..else0.end], "log(left);");
    }

    #[test]
    fn comments_and_underscored_numbers() {
        let src = r"
            contract c {
                // the creator
                participant P { cap: uint }
                global left: uint = field(cap);
                phase run while left > 1_000 invariant left >= 0 {
                    api f() -> left { left = left - 1; }
                }
            }
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.phases[0].while_cond, Expr::gt(Expr::global("left"), Expr::UInt(1000)));
        assert!(!p.globals[0].viewable);
    }

    #[test]
    fn full_feature_surface() {
        let src = r"
            contract kitchen_sink {
                participant P { data: bytes[64], owner: address, cap: uint }
                global who: address = creator;
                global left: uint = field(cap) view;
                map entries[64];
                constructor {
                    log(data);
                }
                phase fill while left > 0 invariant left >= 0 {
                    api put(data: bytes[64], key: uint) pay 10 -> left {
                        require(!contains(entries, key));
                        entries[key] = [data];
                        left = left - 1;
                        if balance >= 10 && left > 0 || key == 0 {
                            transfer(caller, 10 / 2 + 1 * 3);
                        } else {
                            log(key);
                        }
                    }
                    api drop(key: uint) -> left {
                        require(hash(key) == entries[key]);
                        delete entries[key];
                    }
                }
            }
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.maps.len(), 1);
        assert_eq!(p.globals[0].init, GlobalInit::CreatorAddress);
        assert_eq!(p.constructor.len(), 1);
        let put = &p.phases[0].apis[0];
        assert_eq!(put.pay, Some(Expr::UInt(10)));
        // Precedence: 10 / 2 + 1 * 3 = (10/2) + (1*3).
        match &put.body[3] {
            Stmt::If { cond, then, .. } => {
                // (balance >= 10 && left > 0) || key == 0
                assert!(matches!(cond, Expr::Bin(BinOp::Or, _, _)));
                match &then[0] {
                    Stmt::Transfer { amount, .. } => {
                        assert_eq!(
                            *amount,
                            Expr::Bin(
                                BinOp::Add,
                                Box::new(Expr::Bin(
                                    BinOp::Div,
                                    Box::new(Expr::UInt(10)),
                                    Box::new(Expr::UInt(2))
                                )),
                                Box::new(Expr::Bin(
                                    BinOp::Mul,
                                    Box::new(Expr::UInt(1)),
                                    Box::new(Expr::UInt(3))
                                )),
                            )
                        );
                    }
                    other => panic!("expected transfer, got {other:?}"),
                }
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("contract x { participant P { } global g uint = 0; }").unwrap_err();
        assert!(err.line >= 1 && err.col > 1, "{err}");
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("contract {}").is_err());
        assert!(parse("contract c { phase p while 1 invariant 1 { } } trailing").is_err());
        assert!(parse("contract c @ {}").is_err());
    }

    #[test]
    fn name_resolution_params_shadow_globals() {
        let src = r"
            contract c {
                participant P { x: uint }
                global x: uint = 0;
                phase p while x < 5 invariant x >= 0 {
                    api f(x: uint) -> x {
                        require(x > 0); // the parameter
                    }
                }
            }
        ";
        let p = parse(src).unwrap();
        // Inside the API body, x is the parameter…
        match &p.phases[0].apis[0].body[0] {
            Stmt::Require(Expr::Bin(BinOp::Gt, lhs, _)) => {
                assert_eq!(**lhs, Expr::Param("x".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
        // …and the return expr (also in param scope) resolves likewise,
        // while the phase condition sees the global.
        assert_eq!(p.phases[0].apis[0].returns, Expr::Param("x".into()));
        assert_eq!(
            p.phases[0].while_cond,
            Expr::Bin(BinOp::Lt, Box::new(Expr::global("x")), Box::new(Expr::UInt(5)))
        );
    }
}
