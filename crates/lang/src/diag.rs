//! Structured diagnostics: error codes, severities, byte spans and
//! suggestions, shared by the type checker, the theorem verifier, the
//! lint passes and the bytecode verifiers.
//!
//! Spans are byte offsets into the contract source. Programs built
//! through the AST builder API (rather than [`crate::parse()`]) carry an
//! empty [`SpanTable`]; their diagnostics fall back to [`Span::DUMMY`]
//! and render without a source snippet.

use std::collections::HashMap;

/// A half-open byte range `[start, end)` into the contract source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// First byte of the spanned region.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// The placeholder span of AST nodes with no surface syntax.
    pub const DUMMY: Span = Span { start: usize::MAX, end: usize::MAX };

    /// Builds a span.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// Whether this is the placeholder span.
    pub fn is_dummy(&self) -> bool {
        *self == Span::DUMMY
    }

    /// The 1-based `(line, column)` of the span start within `source`,
    /// or `None` for dummy / out-of-range spans.
    pub fn line_col(&self, source: &str) -> Option<(usize, usize)> {
        if self.is_dummy() || self.start > source.len() {
            return None;
        }
        let upto = &source.as_bytes()[..self.start];
        let line = upto.iter().filter(|b| **b == b'\n').count() + 1;
        let col = self.start - upto.iter().rposition(|b| *b == b'\n').map_or(0, |p| p + 1) + 1;
        Some((line, col))
    }
}

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: the program still compiles.
    Warning,
    /// The program is rejected.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A secondary label attached to a diagnostic (e.g. "original
/// definition here").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Note {
    /// Where the note points (may be [`Span::DUMMY`]).
    pub span: Span,
    /// The note text.
    pub message: String,
}

/// One structured diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`E…` type checker, `V…` verifier, `L…` lint,
    /// `B…` bytecode verifier, `X…` cross-checks).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Primary source span.
    pub span: Span,
    /// Main message.
    pub message: String,
    /// Secondary labels.
    pub notes: Vec<Note>,
    /// An actionable suggestion, when one is known.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// A new error diagnostic (span defaults to [`Span::DUMMY`]).
    pub fn error(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            span: Span::DUMMY,
            message: message.into(),
            notes: Vec::new(),
            suggestion: None,
        }
    }

    /// A new warning diagnostic (span defaults to [`Span::DUMMY`]).
    pub fn warning(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic { severity: Severity::Warning, ..Diagnostic::error(code, message) }
    }

    /// Attaches the primary span.
    #[must_use]
    pub fn at(mut self, span: Span) -> Diagnostic {
        self.span = span;
        self
    }

    /// Adds a secondary note.
    #[must_use]
    pub fn note(mut self, span: Span, message: impl Into<String>) -> Diagnostic {
        self.notes.push(Note { span, message: message.into() });
        self
    }

    /// Attaches a suggestion.
    #[must_use]
    pub fn suggest(mut self, suggestion: impl Into<String>) -> Diagnostic {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// Whether the diagnostic is error-severity.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

/// Who owns a statement list (for span addressing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Owner {
    /// The constructor body.
    Constructor,
    /// An API body, by phase and API index.
    Api {
        /// Phase index.
        phase: u32,
        /// API index within the phase.
        api: u32,
    },
}

/// Address of an AST node within a [`crate::ast::Program`], used to key
/// the side [`SpanTable`] so the AST itself stays position-free (and
/// structural equality ignores formatting).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodePath {
    /// The contract name.
    ContractName,
    /// A creator field, by index.
    Field(usize),
    /// A global declaration (its name token), by index.
    Global(usize),
    /// A map declaration (its name token), by index.
    Map(usize),
    /// A phase (its name token), by index.
    Phase(usize),
    /// A phase's `while` condition.
    PhaseCond(usize),
    /// A phase's invariant.
    Invariant(usize),
    /// An API (its name token).
    Api {
        /// Phase index.
        phase: usize,
        /// API index within the phase.
        api: usize,
    },
    /// An API's `pay` expression.
    ApiPay {
        /// Phase index.
        phase: usize,
        /// API index within the phase.
        api: usize,
    },
    /// An API's return expression.
    ApiReturns {
        /// Phase index.
        phase: usize,
        /// API index within the phase.
        api: usize,
    },
    /// A statement. The path lists statement indices from the owner's
    /// body down: an `If` arm extends the path with `0` (then) or `1`
    /// (else) before the child index — `[2, 0, 1]` is the second
    /// statement of the then-arm of the third top-level statement.
    Stmt(Owner, Vec<u32>),
}

/// Side table mapping AST nodes to source spans. Deliberately excluded
/// from [`crate::ast::Program`] equality so parsed and builder-built
/// programs compare structurally.
#[derive(Debug, Clone, Default)]
pub struct SpanTable {
    map: HashMap<NodePath, Span>,
}

impl SpanTable {
    /// Records a node's span.
    pub fn set(&mut self, path: NodePath, span: Span) {
        self.map.insert(path, span);
    }

    /// Looks up a node's span, `Span::DUMMY` when unknown.
    pub fn get(&self, path: &NodePath) -> Span {
        self.map.get(path).copied().unwrap_or(Span::DUMMY)
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no spans are recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_line_col() {
        let src = "abc\ndef\nghi";
        assert_eq!(Span::new(0, 1).line_col(src), Some((1, 1)));
        assert_eq!(Span::new(4, 5).line_col(src), Some((2, 1)));
        assert_eq!(Span::new(6, 7).line_col(src), Some((2, 3)));
        assert_eq!(Span::DUMMY.line_col(src), None);
    }

    #[test]
    fn diagnostic_builder_and_display() {
        let d = Diagnostic::error("E0001", "duplicate global \"x\"")
            .at(Span::new(3, 4))
            .note(Span::new(0, 1), "original definition here")
            .suggest("rename one of the declarations");
        assert!(d.is_error());
        assert_eq!(d.to_string(), "error[E0001]: duplicate global \"x\"");
        assert_eq!(d.notes.len(), 1);
        let w = Diagnostic::warning("L0002", "dead store");
        assert!(!w.is_error());
        assert!(w.to_string().starts_with("warning[L0002]"));
    }

    #[test]
    fn span_table_defaults_to_dummy() {
        let mut t = SpanTable::default();
        assert!(t.is_empty());
        t.set(NodePath::Global(0), Span::new(1, 2));
        assert_eq!(t.get(&NodePath::Global(0)), Span::new(1, 2));
        assert_eq!(t.get(&NodePath::Global(1)), Span::DUMMY);
        assert_eq!(t.len(), 1);
    }
}
