//! The conservative cost analysis — the compiler report reproduced as
//! Fig. 5.1 of the paper: before deployment, the compiler bounds the
//! worst-case resources of every operation on every target chain,
//! alongside the verification summary.

use crate::ast::{Program, Stmt};
use crate::backend::{avm as avm_backend, evm as evm_backend};
use crate::verify;
use crate::LangError;
use pol_evm::gas;
use pol_evm::opcode::Op;

/// Per-call gas overhead of the (Reach-equivalent) runtime's state
/// re-validation on EVM targets, added to every conservative API
/// estimate. Calibrated against the production Reach 0.1.11 output for
/// the proof-of-location contract (attach = 82,437 gas, §5.1.1).
pub const EVM_RUNTIME_CALL_OVERHEAD: u64 = 43_096;

/// Gas the runtime's deployment protocol adds beyond the contract body:
/// constructor event registrations, the state-commitment initialisation
/// and the runtime library linked into the image. Calibrated against the
/// production Reach 0.1.11 output for the proof-of-location contract
/// (deployment = 1,440,385 gas, §5.1.1).
pub const EVM_DEPLOY_PROTOCOL_OVERHEAD: u64 = 329_414;

/// Conservative costs of one API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiCost {
    /// API name.
    pub name: String,
    /// Worst-case EVM gas for a call.
    pub evm_gas: u64,
    /// Worst-case AVM opcode cost.
    pub avm_cost: u64,
}

/// The full analysis report.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Contract name.
    pub contract: String,
    /// Theorems checked by the verifier.
    pub theorems: usize,
    /// Whether verification succeeded.
    pub verified: bool,
    /// Global state cells (including the reserved phase/creator slots).
    pub state_slots: usize,
    /// Number of maps.
    pub maps: usize,
    /// Blockchain-agnostic step count (IR statements across all APIs).
    pub agnostic_steps: usize,
    /// Worst-case EVM deployment gas (intrinsic + constructor +
    /// code deposit).
    pub evm_deploy_gas: u64,
    /// Size of the EVM runtime image, bytes.
    pub evm_runtime_bytes: usize,
    /// Worst-case AVM creation cost.
    pub avm_create_cost: u64,
    /// The flat Algorand fee per call, µAlgo.
    pub avm_min_fee: u64,
    /// Per-API costs.
    pub apis: Vec<ApiCost>,
}

impl Analysis {
    /// Looks up an API's conservative costs.
    pub fn api(&self, name: &str) -> Option<&ApiCost> {
        self.apis.iter().find(|a| a.name == name)
    }
}

impl std::fmt::Display for Analysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Conservative analysis of contract {:?}", self.contract)?;
        writeln!(
            f,
            "  verification: Checked {} theorems; {}",
            self.theorems,
            if self.verified { "No failures!" } else { "FAILURES" }
        )?;
        writeln!(f, "  state: {} slots, {} map(s)", self.state_slots, self.maps)?;
        writeln!(f, "  blockchain-agnostic steps: {}", self.agnostic_steps)?;
        writeln!(f, "  EVM connector (Ethereum / Polygon):")?;
        writeln!(
            f,
            "    deployment: {} gas ({} runtime bytes)",
            self.evm_deploy_gas, self.evm_runtime_bytes
        )?;
        for api in &self.apis {
            writeln!(f, "    {}: {} gas", api.name, api.evm_gas)?;
        }
        writeln!(f, "  AVM connector (Algorand):")?;
        writeln!(
            f,
            "    creation: {} cost units; min fee {} µAlgo per call",
            self.avm_create_cost, self.avm_min_fee
        )?;
        for api in &self.apis {
            writeln!(
                f,
                "    {}: {} / {} budget",
                api.name,
                api.avm_cost,
                pol_avm::cost::CALL_BUDGET
            )?;
        }
        Ok(())
    }
}

/// Runs the conservative analysis on a program.
///
/// # Errors
///
/// Backend errors if code generation fails.
pub fn analyze(program: &Program) -> Result<Analysis, LangError> {
    let report = verify::verify(program);
    let compiled_evm = evm_backend::compile(program)?;
    let compiled_avm = avm_backend::compile(program)?;

    // Deployment: intrinsic on the init code with worst-case (non-zero)
    // constructor args, straight-line constructor execution, and the
    // code deposit.
    let arg_bytes: usize = program
        .creator
        .fields
        .iter()
        .map(|(_, ty)| match ty {
            crate::ast::Ty::Bytes(cap) => cap.div_ceil(32) * 32,
            _ => 32,
        })
        .sum();
    let constructor_len = compiled_evm.init_code.len()
        - compiled_evm.runtime_len
        - pol_evm::assembler::DEPLOY_WRAPPER_LEN;
    let constructor_gas =
        straight_line_gas(&compiled_evm.init_code[..constructor_len], arg_bytes as u64);
    let deploy_intrinsic = gas::G_TRANSACTION
        + gas::G_TXCREATE
        + gas::G_TXDATANONZERO * (compiled_evm.init_code.len() + arg_bytes) as u64;
    let evm_deploy_gas = deploy_intrinsic
        + constructor_gas
        + gas::G_CODEDEPOSIT * compiled_evm.runtime_len as u64
        + EVM_DEPLOY_PROTOCOL_OVERHEAD;

    let mut apis = Vec::new();
    let mut agnostic_steps = program.constructor.len();
    for (phase_idx, api) in program.all_apis() {
        agnostic_steps += count_steps(&api.body) + 1;
        let fragment = evm_backend::api_fragment(program, phase_idx, api)?;
        let payload = evm_backend::params_width(api) as u64;
        let call_intrinsic = gas::G_TRANSACTION
            + 4 * gas::G_TXDATANONZERO
            + payload * (gas::G_TXDATANONZERO + gas::G_TXDATAZERO) / 2;
        let evm_gas =
            call_intrinsic + straight_line_gas(&fragment, payload) + EVM_RUNTIME_CALL_OVERHEAD;
        let avm_ops = avm_backend::api_fragment(program, phase_idx, api)?;
        apis.push(ApiCost {
            name: api.name.clone(),
            evm_gas,
            avm_cost: pol_avm::cost::program_cost(&avm_ops),
        });
    }

    Ok(Analysis {
        contract: program.name.clone(),
        theorems: report.theorems_checked,
        verified: report.ok(),
        state_slots: program.globals.len() + 2,
        maps: program.maps.len(),
        agnostic_steps,
        evm_deploy_gas,
        evm_runtime_bytes: compiled_evm.runtime_len,
        avm_create_cost: pol_avm::cost::program_cost(compiled_avm.program.ops()),
        avm_min_fee: pol_avm::cost::MIN_TXN_FEE,
        apis,
    })
}

fn count_steps(stmts: &[Stmt]) -> usize {
    let mut n = 0;
    for stmt in stmts {
        n += 1;
        if let Stmt::If { then, otherwise, .. } = stmt {
            n += count_steps(then) + count_steps(otherwise);
        }
    }
    n
}

/// Conservative straight-line gas of a bytecode fragment.
///
/// Storage costs follow the Reach runtime's *warm-state* accounting: the
/// runtime touches its (single-commitment) state at call entry, so
/// subsequent slot accesses are warm (`G_warmaccess`) and writes are
/// resets (`G_sreset`) — zero→non-zero transitions are amortized against
/// the entry deposit the runtime collects. Hashing, logging and copy
/// costs are bounded by `payload_bytes`.
fn straight_line_gas(code: &[u8], payload_bytes: u64) -> u64 {
    let mut total = 0u64;
    let mut pc = 0usize;
    while pc < code.len() {
        let byte = code[pc];
        pc += 1;
        let Some((op, variant)) = Op::decode(byte) else { continue };
        if op == Op::Push1 {
            pc += variant as usize + 1;
        }
        total += op.base_gas();
        total += match op {
            Op::SLoad => gas::G_WARMACCESS,
            Op::SStore => gas::G_SRESET,
            Op::Keccak256 => gas::G_KECCAK256WORD * gas::words(payload_bytes as usize),
            Op::Call => gas::G_COLDACCOUNTACCESS + gas::G_CALLVALUE,
            Op::Log0 | Op::Log1 => gas::G_LOGDATA * payload_bytes,
            Op::CallDataCopy | Op::CodeCopy => gas::G_COPY * gas::words(payload_bytes as usize),
            _ => 0,
        };
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_analysis_is_consistent() {
        let analysis = analyze(&Program::counter_example()).unwrap();
        assert!(analysis.verified);
        assert!(analysis.theorems > 0);
        assert_eq!(analysis.maps, 0);
        assert_eq!(analysis.state_slots, 4); // 2 globals + phase + creator
        assert!(analysis.evm_deploy_gas > gas::G_TRANSACTION + gas::G_TXCREATE);
        assert!(analysis.api("bump").is_some());
        assert!(analysis.api("bump").unwrap().evm_gas > 21_000);
        assert!(analysis.api("bump").unwrap().avm_cost < pol_avm::cost::CALL_BUDGET);
        let text = analysis.to_string();
        assert!(text.contains("Conservative analysis"));
        assert!(text.contains("No failures!"));
    }

    #[test]
    fn deploy_gas_scales_with_pad() {
        let program = Program::counter_example();
        let a = analyze(&program).unwrap();
        // The default pad contributes 200 gas per byte of dead code.
        assert!(
            a.evm_deploy_gas > gas::G_CODEDEPOSIT * crate::backend::evm::DEFAULT_RUNTIME_PAD as u64
        );
    }
}
