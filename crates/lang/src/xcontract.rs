//! Cross-contract system analysis.
//!
//! A deployment is rarely one contract: a factory and its children, or
//! two protocol versions sharing a storage namespace, form a *system*.
//! [`analyze_system`] links the members into a graph — edges are
//! same-named globals (shared storage slots) and same-named maps — and
//! checks properties no single-contract pass can see:
//!
//! * **X0501** — two contracts share a global (by name) but place it at
//!   a different storage slot, give it a different type, or constrain
//!   it with phase invariants whose value ranges are *provably
//!   disjoint* (one contract can never produce a state the other
//!   accepts). Ranges come from the difference-logic solver
//!   ([`crate::dbm`]): each phase invariant is assumed into a fresh
//!   zone and the per-variable bounds are unioned with the declared
//!   constant initialiser.
//! * **X0502** — the *compiled* artifacts write state the source never
//!   declares: an EVM `SSTORE` to a constant key outside the declared
//!   layout (phase slot, creator slot, one slot per global), map-style
//!   keccak-keyed writes without a declared map, or an AVM program
//!   whose box/global write sites contradict the declarations.
//! * **X0503** — a map shared across contracts with incompatible value
//!   capacities (the commitment payloads cannot round-trip).
//! * **X0504** — a transfer whose amount is not covered by a proven
//!   balance bound, using the same ladder as [`crate::verify`]:
//!   syntactic guard coverage first, then the relational zone at the
//!   transfer site. When every edge is covered, the system as a whole
//!   conserves value: the sum of outgoing transfers never exceeds the
//!   deposits the guards account for (factory aggregate conservation).

use crate::ast::{Expr, GlobalInit, Program, Stmt, Ty};
use crate::backend::{evm as evm_backend, CompiledContract};
use crate::dbm::{self, ZVar, Zone, ZoneStats};
use crate::diag::{Diagnostic, NodePath, Owner};
use crate::{ir, verify};
use std::collections::HashSet;

/// One contract in the system under analysis.
pub struct SystemMember<'a> {
    /// Display name (defaults to the program's contract name).
    pub name: String,
    /// The checked source program.
    pub program: &'a Program,
    /// Compiled artifacts, when available; enables the bytecode-level
    /// layout checks (X0502).
    pub compiled: Option<&'a CompiledContract>,
}

impl<'a> SystemMember<'a> {
    /// A member named after its contract.
    pub fn new(program: &'a Program, compiled: Option<&'a CompiledContract>) -> Self {
        SystemMember { name: program.name.clone(), program, compiled }
    }
}

/// A linkage edge between two system members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemEdge {
    /// First contract name.
    pub a: String,
    /// Second contract name.
    pub b: String,
    /// What links them, e.g. `global toVerify` or `map provers`.
    pub via: String,
}

/// What the cross-contract pass proved about a system.
#[derive(Debug, Clone)]
pub struct SystemReport {
    /// Number of contracts analysed.
    pub contracts: usize,
    /// Linkage edges (shared globals and maps) between members.
    pub edges: Vec<SystemEdge>,
    /// Transfer sites across all members.
    pub transfer_edges: usize,
    /// Transfer sites with a proven balance bound (syntactic or
    /// relational).
    pub conserved_transfers: usize,
    /// Of the conserved transfers, how many needed the zone.
    pub relationally_proved: usize,
    /// Whether every transfer edge is covered — the aggregate
    /// conservation theorem (total outflow ≤ proven deposits).
    pub aggregate_conserved: bool,
    /// Difference-logic solver work done by this pass.
    pub zone_stats: ZoneStats,
    /// X0501–X0504 findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl SystemReport {
    /// Whether the system passed (no error-severity findings).
    pub fn ok(&self) -> bool {
        self.diagnostics.iter().all(|d| !d.is_error())
    }
}

impl std::fmt::Display for SystemReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "system of {} contract{}: {} linkage edge{}, {} transfer site{} \
             ({} conserved, {} relationally); ",
            self.contracts,
            if self.contracts == 1 { "" } else { "s" },
            self.edges.len(),
            if self.edges.len() == 1 { "" } else { "s" },
            self.transfer_edges,
            if self.transfer_edges == 1 { "" } else { "s" },
            self.conserved_transfers,
            self.relationally_proved,
        )?;
        if !self.ok() {
            let errors = self.diagnostics.iter().filter(|d| d.is_error()).count();
            write!(f, "{errors} failure{}", if errors == 1 { "" } else { "s" })
        } else if self.aggregate_conserved {
            write!(f, "aggregate conservation holds")
        } else {
            write!(f, "aggregate conservation unproved")
        }
    }
}

/// The value range `[lo, hi]` a contract's declarations and phase
/// invariants permit for one uint global, via the zone solver. Returns
/// the full `[0, u64::MAX]` when nothing constrains it (an unknown
/// initialiser, or an invariant the solver cannot translate).
fn global_range(program: &Program, name: &str, stats: &mut ZoneStats) -> (u64, u64) {
    let var = ZVar::Global(name.to_string());
    let Some(g) = program.globals.iter().find(|g| g.name == name) else {
        return (0, u64::MAX);
    };
    let (mut lo, mut hi) = match g.init {
        GlobalInit::Const(v) => (v, v),
        // Field- or creator-initialised: deployment value is unknown.
        _ => return (0, u64::MAX),
    };
    for phase in &program.phases {
        let mut z = Zone::new();
        dbm::assume(&mut z, &phase.invariant, true, stats);
        // Unsatisfiable invariants mean the phase is unreachable and
        // contributes no states.
        if let (Some(mn), Some(mx)) = (z.var_min(&var), z.var_max(&var)) {
            lo = lo.min(mn);
            hi = hi.max(mx);
        }
    }
    (lo, hi)
}

/// Runs the cross-contract checks over a system of members.
pub fn analyze_system(members: &[SystemMember<'_>]) -> SystemReport {
    let mut diagnostics = Vec::new();
    let mut edges = Vec::new();
    let mut stats = ZoneStats::default();

    // --- linkage graph + X0501/X0503: pairwise shared-state checks ---
    for (i, a) in members.iter().enumerate() {
        for b in &members[i + 1..] {
            for (slot_a, ga) in a.program.globals.iter().enumerate() {
                let Some((slot_b, gb)) =
                    b.program.globals.iter().enumerate().find(|(_, g)| g.name == ga.name)
                else {
                    continue;
                };
                edges.push(SystemEdge {
                    a: a.name.clone(),
                    b: b.name.clone(),
                    via: format!("global {}", ga.name),
                });
                if slot_a != slot_b {
                    diagnostics.push(
                        Diagnostic::error(
                            "X0501",
                            format!(
                                "global {:?} sits at slot {} in {} but slot {} in {}",
                                ga.name,
                                evm_backend::global_slot(slot_a),
                                a.name,
                                evm_backend::global_slot(slot_b),
                                b.name
                            ),
                        )
                        .suggest("align the global declaration order across the system"),
                    );
                    continue;
                }
                if ga.ty != gb.ty {
                    diagnostics.push(
                        Diagnostic::error(
                            "X0501",
                            format!(
                                "global {:?} is typed differently in {} and {}",
                                ga.name, a.name, b.name
                            ),
                        )
                        .suggest("shared slots must agree on the stored type"),
                    );
                    continue;
                }
                if ga.ty == Ty::UInt {
                    let (alo, ahi) = global_range(a.program, &ga.name, &mut stats);
                    let (blo, bhi) = global_range(b.program, &gb.name, &mut stats);
                    if alo > bhi || blo > ahi {
                        diagnostics.push(
                            Diagnostic::error(
                                "X0501",
                                format!(
                                    "global {:?}: {} keeps it in [{alo}, {ahi}] but {} requires \
                                     [{blo}, {bhi}] — no state satisfies both",
                                    ga.name, a.name, b.name
                                ),
                            )
                            .suggest("reconcile the phase invariants before sharing the slot"),
                        );
                    }
                }
            }
            for ma in &a.program.maps {
                let Some(mb) = b.program.maps.iter().find(|m| m.name == ma.name) else {
                    continue;
                };
                edges.push(SystemEdge {
                    a: a.name.clone(),
                    b: b.name.clone(),
                    via: format!("map {}", ma.name),
                });
                if ma.value_bytes != mb.value_bytes {
                    diagnostics.push(
                        Diagnostic::error(
                            "X0503",
                            format!(
                                "map {:?} stores {} bytes in {} but {} bytes in {}",
                                ma.name, ma.value_bytes, a.name, mb.value_bytes, b.name
                            ),
                        )
                        .suggest("shared maps must agree on the committed value capacity"),
                    );
                }
            }
        }
    }

    // --- X0502: bytecode writes vs the declared storage layout ---
    for member in members {
        let Some(compiled) = member.compiled else { continue };
        check_bytecode_layout(member, compiled, &mut diagnostics);
    }

    // --- X0504 + aggregate conservation: every transfer edge covered ---
    let mut transfer_edges = 0usize;
    let mut conserved_transfers = 0usize;
    let mut relationally_proved = 0usize;
    for member in members {
        let program = member.program;
        for (phase_idx, phase) in program.phases.iter().enumerate() {
            for (api_idx, api) in phase.apis.iter().enumerate() {
                let mut flow: Option<ir::BodyAnalysis> = None;
                let mut guards: Vec<Expr> = Vec::new();
                let mut prefix: Vec<u32> = Vec::new();
                verify::walk_guarded(
                    &api.body,
                    &mut guards,
                    &mut prefix,
                    &mut |stmt, guards, path| {
                        let Stmt::Transfer { amount, .. } = stmt else { return };
                        transfer_edges += 1;
                        if verify::guards_cover_balance(guards, amount) {
                            conserved_transfers += 1;
                            return;
                        }
                        let flow = flow.get_or_insert_with(|| {
                            ir::analyze_api_with(program, phase_idx, api_idx, true)
                        });
                        if flow
                            .zone_at(path)
                            .is_some_and(|z| dbm::entails_ge(z, &Expr::Balance, amount))
                        {
                            conserved_transfers += 1;
                            relationally_proved += 1;
                            return;
                        }
                        diagnostics.push(
                            Diagnostic::error(
                                "X0504",
                                format!(
                                    "{}: api {:?} transfers an amount no balance guard covers",
                                    member.name, api.name
                                ),
                            )
                            .at(program.spans.get(&NodePath::Stmt(
                                Owner::Api { phase: phase_idx as u32, api: api_idx as u32 },
                                path.to_vec(),
                            )))
                            .suggest(
                                "guard the transfer with `require(balance >= amount)` so the \
                                 system-wide deposit sum provably covers it",
                            ),
                        );
                    },
                );
                if let Some(flow) = flow {
                    stats.absorb(flow.zone_stats);
                }
            }
        }
    }

    let aggregate_conserved = transfer_edges == conserved_transfers;
    SystemReport {
        contracts: members.len(),
        edges,
        transfer_edges,
        conserved_transfers,
        relationally_proved,
        aggregate_conserved,
        zone_stats: stats,
        diagnostics,
    }
}

/// X0502: the compiled artifacts must only write state the source
/// declares.
fn check_bytecode_layout(
    member: &SystemMember<'_>,
    compiled: &CompiledContract,
    diagnostics: &mut Vec<Diagnostic>,
) {
    let program = member.program;
    let declared: HashSet<u64> = [evm_backend::SLOT_PHASE, evm_backend::SLOT_CREATOR]
        .into_iter()
        .chain((0..program.globals.len()).map(evm_backend::global_slot))
        .collect();
    let allowed = [evm_backend::SLOT_PHASE];
    let max_payload =
        program.all_apis().map(|(_, api)| evm_backend::params_width(api) as u64).max().unwrap_or(0);
    let cfg = pol_evm::verifier::VerifyConfig {
        allowed_post_call_sstore_keys: &allowed,
        payload_bytes: max_payload,
    };
    let runtime_start = compiled.evm.init_code.len() - compiled.evm.runtime_len;
    let images = [
        ("init code", &compiled.evm.init_code[..]),
        ("runtime", &compiled.evm.init_code[runtime_start..]),
    ];
    for (what, image) in images {
        let Ok(report) = pol_evm::verifier::verify(image, &cfg) else {
            // Unverifiable images are rejected by the compile pipeline
            // (B0301) before a system is ever assembled.
            continue;
        };
        for &key in &report.constant_sstore_keys {
            if !declared.contains(&key) {
                diagnostics.push(
                    Diagnostic::error(
                        "X0502",
                        format!(
                            "{}: EVM {what} writes storage slot {key}, which the source \
                             never declares",
                            member.name
                        ),
                    )
                    .suggest("the artifact does not match the declared storage layout"),
                );
            }
        }
        if report.unknown_key_sstores > 0 && program.maps.is_empty() {
            diagnostics.push(
                Diagnostic::error(
                    "X0502",
                    format!(
                        "{}: EVM {what} performs {} keccak-keyed store(s) but the source \
                         declares no maps",
                        member.name, report.unknown_key_sstores
                    ),
                )
                .suggest("map-style writes require a declared map"),
            );
        }
    }
    if let Ok(report) = pol_avm::verifier::verify(&compiled.avm.program) {
        if (report.box_puts > 0 || report.box_dels > 0) && program.maps.is_empty() {
            diagnostics.push(
                Diagnostic::error(
                    "X0502",
                    format!(
                        "{}: AVM program has {} box write(s) and {} box delete(s) but the \
                         source declares no maps",
                        member.name, report.box_puts, report.box_dels
                    ),
                )
                .suggest("box state requires a declared map"),
            );
        }
        if report.global_puts == 0 && !program.globals.is_empty() {
            diagnostics.push(
                Diagnostic::error(
                    "X0502",
                    format!(
                        "{}: AVM program never writes global state yet the source declares \
                         {} global(s)",
                        member.name,
                        program.globals.len()
                    ),
                )
                .suggest("the artifact does not match the declared storage layout"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn member(program: &Program) -> SystemMember<'_> {
        SystemMember::new(program, None)
    }

    #[test]
    fn compatible_contracts_link_cleanly() {
        let a = parse(
            "contract a {\n    participant P { }\n    global total: uint = 0;\n    map audit[32];\n\
             \n    phase run while (total < 10) invariant (total <= 10) {\n        api bump() -> total {\n            total = (total + 1);\n        }\n    }\n}\n",
        )
        .unwrap();
        let b = parse(
            "contract b {\n    participant P { }\n    global total: uint = 5;\n    map audit[32];\n\
             \n    phase run while (total < 10) invariant (total <= 10) {\n        api bump() -> total {\n            total = (total + 1);\n        }\n    }\n}\n",
        )
        .unwrap();
        let report = analyze_system(&[member(&a), member(&b)]);
        assert!(report.ok(), "{:?}", report.diagnostics);
        assert_eq!(report.edges.len(), 2, "shared global + shared map");
        assert!(report.aggregate_conserved);
    }

    #[test]
    fn slot_type_mismatch_fires_x0501() {
        let a = parse(
            "contract a {\n    participant P { }\n    global x: uint = 0;\n\
             \n    phase run while (x < 1) invariant (x <= 1) {\n        api f() -> x {\n            x = 1;\n        }\n    }\n}\n",
        )
        .unwrap();
        let b = parse(
            "contract b {\n    participant P { }\n    global x: bool = 0;\n\
             \n    phase run while (x == 0) invariant (x <= 1) {\n        api f() -> x {\n            x = 1;\n        }\n    }\n}\n",
        )
        .unwrap();
        let report = analyze_system(&[member(&a), member(&b)]);
        assert!(!report.ok());
        assert!(report.diagnostics.iter().any(|d| d.code == "X0501"), "{:?}", report.diagnostics);
    }

    #[test]
    fn disjoint_invariant_ranges_fire_x0501() {
        // a keeps x in [0, 10]; b pins it to at least 100 via a
        // constant initialiser of 100 — no shared state exists.
        let a = parse(
            "contract a {\n    participant P { }\n    global x: uint = 0;\n\
             \n    phase run while (x < 10) invariant (x <= 10) {\n        api f() -> x {\n            x = (x + 1);\n        }\n    }\n}\n",
        )
        .unwrap();
        let b = parse(
            "contract b {\n    participant P { }\n    global x: uint = 100;\n\
             \n    phase run while (x < 200) invariant (x >= 100) {\n        api f() -> x {\n            x = (x + 1);\n        }\n    }\n}\n",
        )
        .unwrap();
        let report = analyze_system(&[member(&a), member(&b)]);
        let x0501: Vec<_> = report.diagnostics.iter().filter(|d| d.code == "X0501").collect();
        assert_eq!(x0501.len(), 1, "{:?}", report.diagnostics);
        assert!(x0501[0].message.contains("no state satisfies both"));
        assert!(report.zone_stats.constraints > 0);
    }

    #[test]
    fn map_capacity_mismatch_fires_x0503() {
        let a = parse(
            "contract a {\n    participant P { }\n    global n: uint = 0;\n    map m[32];\n\
             \n    phase run while (n < 1) invariant (n <= 1) {\n        api f() -> n {\n            n = 1;\n        }\n    }\n}\n",
        )
        .unwrap();
        let b = parse(
            "contract b {\n    participant P { }\n    global n: uint = 0;\n    map m[64];\n\
             \n    phase run while (n < 1) invariant (n <= 1) {\n        api f() -> n {\n            n = 1;\n        }\n    }\n}\n",
        )
        .unwrap();
        let report = analyze_system(&[member(&a), member(&b)]);
        assert!(report.diagnostics.iter().any(|d| d.code == "X0503"), "{:?}", report.diagnostics);
    }

    #[test]
    fn relational_guard_conserves_transfer() {
        // `amt < balance` is not the syntactic `balance >= amt` shape;
        // only the zone proves coverage.
        let p = parse(
            "contract pot {\n    participant P { }\n    global n: uint = 0;\n\
             \n    phase run while (n < 10) invariant (n <= 10) {\n        api out(amt: uint) -> n {\n            require((amt < balance));\n            transfer(caller, amt);\n            n = (n + 1);\n        }\n    }\n}\n",
        )
        .unwrap();
        let report = analyze_system(&[member(&p)]);
        assert!(report.ok(), "{:?}", report.diagnostics);
        assert_eq!(report.transfer_edges, 1);
        assert_eq!(report.conserved_transfers, 1);
        assert_eq!(report.relationally_proved, 1);
        assert!(report.aggregate_conserved);
        assert!(report.to_string().contains("aggregate conservation holds"));
    }

    #[test]
    fn uncovered_transfer_fires_x0504() {
        let p = parse(
            "contract leak {\n    participant P { }\n    global n: uint = 0;\n\
             \n    phase run while (n < 10) invariant (n <= 10) {\n        api out(amt: uint) -> n {\n            transfer(caller, amt);\n            n = (n + 1);\n        }\n    }\n}\n",
        )
        .unwrap();
        let report = analyze_system(&[member(&p)]);
        assert!(!report.ok());
        assert!(report.diagnostics.iter().any(|d| d.code == "X0504"), "{:?}", report.diagnostics);
        assert!(!report.aggregate_conserved);
        assert_eq!(report.conserved_transfers, 0);
        assert!(report.to_string().contains("1 failure"));
    }

    #[test]
    fn compiled_contract_passes_bytecode_layout() {
        let p = Program::counter_example();
        let compiled = crate::backend::compile(&p).unwrap();
        let report = analyze_system(&[SystemMember::new(&p, Some(&compiled))]);
        assert!(report.ok(), "{:?}", report.diagnostics);
    }
}
