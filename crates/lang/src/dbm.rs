//! A difference-logic solver over `u64` — the *zone* abstract domain.
//!
//! A zone is a conjunction of constraints of the form `x - y ≤ c` over
//! program variables plus a distinguished zero variable, stored as a
//! difference-bound matrix (DBM). Keeping the matrix *closed* (every
//! entry is the weight of the shortest constraint path, computed by an
//! incremental Floyd–Warshall step on each insertion) makes both
//! satisfiability (no negative diagonal) and entailment (a single
//! matrix lookup) O(1) per query.
//!
//! The zone is strictly more precise than the interval domain of
//! [`crate::ir`] on *relational* facts: `require(b < a)` records
//! `b - a ≤ -1`, which later discharges `a - b` underflow theorems that
//! neither the syntactic dominating-guard matcher nor intervals can
//! prove, and transitive chains (`a > b, b > c ⊢ a > c`) fall out of
//! path closure for free.
//!
//! **Wrap-soundness.** All variables range over `u64` and the VMs
//! compute modulo 2⁶⁴, so a syntactic term `v + k` / `v - k` only
//! translates to the difference constraint it suggests when the zone
//! already entails that the arithmetic cannot wrap (`v ≤ MAX - k`
//! resp. `v ≥ k`). Terms that may wrap are dropped, never laundered
//! into bounds — mirroring the interval domain's widen-to-TOP rule.

use crate::ast::{BinOp, Expr};
use std::collections::HashMap;

/// A variable tracked by the zone (the zero variable is implicit).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ZVar {
    /// A contract global.
    Global(String),
    /// An API parameter.
    Param(String),
    /// The contract balance.
    Balance,
}

/// Aggregate solver counters, reported in `results/relational_verify.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZoneStats {
    /// Difference constraints asserted into some zone.
    pub constraints: u64,
    /// Incremental / full closure passes that tightened a matrix.
    pub closures: u64,
}

impl ZoneStats {
    /// Accumulates another counter set into this one.
    pub fn absorb(&mut self, other: ZoneStats) {
        self.constraints += other.constraints;
        self.closures += other.closures;
    }
}

/// Largest representable variable value: every `u64` variable satisfies
/// `v - 0 ≤ BOUND` and `0 - v ≤ 0`.
const BOUND: i128 = u64::MAX as i128;

/// A closed difference-bound matrix. Index 0 is the zero variable;
/// program variables are interned at 1.. on first mention. Entry
/// `m[i][j]` is the tightest proven upper bound on `vᵢ - vⱼ`.
#[derive(Debug, Clone)]
pub struct Zone {
    vars: Vec<ZVar>,
    index: HashMap<ZVar, usize>,
    m: Vec<i128>,
    dim: usize,
    unsat: bool,
}

impl Default for Zone {
    fn default() -> Self {
        Zone::new()
    }
}

impl Zone {
    /// The unconstrained zone (every variable in `[0, u64::MAX]`).
    pub fn new() -> Zone {
        Zone { vars: Vec::new(), index: HashMap::new(), m: vec![0], dim: 1, unsat: false }
    }

    /// Whether the conjunction is still satisfiable.
    pub fn is_sat(&self) -> bool {
        !self.unsat
    }

    fn at(&self, i: usize, j: usize) -> i128 {
        self.m[i * self.dim + j]
    }

    fn set(&mut self, i: usize, j: usize, v: i128) {
        self.m[i * self.dim + j] = v;
    }

    /// Interns a variable, growing the matrix with the closed default
    /// bounds of a fresh `u64` variable.
    fn intern(&mut self, v: &ZVar) -> usize {
        if let Some(&i) = self.index.get(v) {
            return i;
        }
        let old = self.dim;
        let new = old + 1;
        let mut m = vec![0i128; new * new];
        for i in 0..old {
            for j in 0..old {
                m[i * new + j] = self.at(i, j);
            }
        }
        // Fresh v ∈ [0, MAX]: closure routes every relation through the
        // zero variable (m[0][j] ≤ 0 and m[j][0] ≤ BOUND hold for all j,
        // so no entry here exceeds 2·BOUND — far from overflow).
        for j in 0..old {
            m[old * new + j] = BOUND + self.at(0, j);
            m[j * new + old] = self.at(j, 0);
        }
        m[old * new + old] = 0;
        self.m = m;
        self.dim = new;
        self.vars.push(v.clone());
        self.index.insert(v.clone(), old);
        old
    }

    fn lookup(&self, v: &ZVar) -> Option<usize> {
        self.index.get(v).copied()
    }

    /// Asserts `vᵢ - vⱼ ≤ c` and restores closure incrementally.
    /// Returns the new satisfiability.
    fn add_ub(&mut self, x: usize, y: usize, c: i128, stats: &mut ZoneStats) -> bool {
        stats.constraints += 1;
        if self.unsat {
            return false;
        }
        if x == y {
            if c < 0 {
                self.unsat = true;
            }
            return !self.unsat;
        }
        if c >= self.at(x, y) {
            return true;
        }
        stats.closures += 1;
        self.set(x, y, c);
        for i in 0..self.dim {
            for j in 0..self.dim {
                let via = self.at(i, x) + c + self.at(y, j);
                if via < self.at(i, j) {
                    self.set(i, j, via);
                }
            }
        }
        if (0..self.dim).any(|i| self.at(i, i) < 0) {
            self.unsat = true;
        }
        !self.unsat
    }

    /// Asserts `a - b ≤ c` where `None` denotes the zero variable.
    pub fn add_diff(
        &mut self,
        a: Option<&ZVar>,
        b: Option<&ZVar>,
        c: i128,
        stats: &mut ZoneStats,
    ) -> bool {
        let x = match a {
            Some(v) => self.intern(v),
            None => 0,
        };
        let y = match b {
            Some(v) => self.intern(v),
            None => 0,
        };
        self.add_ub(x, y, c, stats)
    }

    /// Tightest proven upper bound on `a - b` (`None` = zero variable).
    /// Variables never mentioned keep their fresh `[0, MAX]` defaults.
    pub fn bound(&self, a: Option<&ZVar>, b: Option<&ZVar>) -> i128 {
        if a == b {
            return 0;
        }
        let ia = a.map(|v| self.lookup(v));
        let ib = b.map(|v| self.lookup(v));
        match (ia, ib) {
            (None, None) => 0,
            (Some(Some(i)), Some(Some(j))) => self.at(i, j),
            (Some(Some(i)), None) => self.at(i, 0),
            (None, Some(Some(j))) => self.at(0, j),
            // A fresh variable relates to the rest only through zero.
            (Some(None), Some(Some(j))) => BOUND + self.at(0, j),
            (Some(Some(i)), Some(None)) => self.at(i, 0),
            (Some(None), None) => BOUND,
            (None, Some(None)) => 0,
            (Some(None), Some(None)) => BOUND,
        }
    }

    /// Whether the zone proves `a - b ≤ c`. An unsatisfiable zone
    /// entails everything (the program point is unreachable).
    pub fn entails_diff(&self, a: Option<&ZVar>, b: Option<&ZVar>, c: i128) -> bool {
        self.unsat || self.bound(a, b) <= c
    }

    /// Least upper bound: the weakest zone implied by both arguments
    /// (pointwise maximum over the union of tracked variables, then
    /// re-closed).
    pub fn join(a: &Zone, b: &Zone, stats: &mut ZoneStats) -> Zone {
        if a.unsat {
            return b.clone();
        }
        if b.unsat {
            return a.clone();
        }
        let mut out = Zone::new();
        for v in a.vars.iter().chain(&b.vars) {
            out.intern(v);
        }
        let vref =
            |out: &Zone, i: usize| -> Option<ZVar> { (i > 0).then(|| out.vars[i - 1].clone()) };
        for i in 0..out.dim {
            for j in 0..out.dim {
                if i == j {
                    continue;
                }
                let (vi, vj) = (vref(&out, i), vref(&out, j));
                let val = a.bound(vi.as_ref(), vj.as_ref()).max(b.bound(vi.as_ref(), vj.as_ref()));
                out.set(i, j, val);
            }
        }
        out.close_full(stats);
        out
    }

    /// Full Floyd–Warshall closure (joins may leave slack entries).
    fn close_full(&mut self, stats: &mut ZoneStats) {
        stats.closures += 1;
        for k in 0..self.dim {
            for i in 0..self.dim {
                for j in 0..self.dim {
                    let via = self.at(i, k) + self.at(k, j);
                    if via < self.at(i, j) {
                        self.set(i, j, via);
                    }
                }
            }
        }
        if (0..self.dim).any(|i| self.at(i, i) < 0) {
            self.unsat = true;
        }
    }

    /// Drops everything known about `v` (back to `[0, MAX]`, no
    /// relations). Preserves closure.
    pub fn forget(&mut self, v: &ZVar) {
        let Some(x) = self.lookup(v) else { return };
        if self.unsat {
            return;
        }
        for j in 0..self.dim {
            if j == x {
                continue;
            }
            let zx = BOUND + self.at(0, j);
            self.set(x, j, zx);
            let xz = self.at(j, 0);
            self.set(j, x, xz);
        }
    }

    /// The image of `v := v + delta` (caller must have proven the
    /// addition cannot wrap). Preserves closure.
    pub fn shift(&mut self, v: &ZVar, delta: i128) {
        let Some(x) = self.lookup(v) else { return };
        if self.unsat || delta == 0 {
            return;
        }
        for j in 0..self.dim {
            if j == x {
                continue;
            }
            let up = self.at(x, j) + delta;
            self.set(x, j, up);
            let dn = self.at(j, x) - delta;
            self.set(j, x, dn);
        }
    }

    /// The image of `dst := src + delta` for `dst ≠ src` (wrap-freedom
    /// proven by the caller).
    pub fn assign_var(&mut self, dst: &ZVar, src: &ZVar, delta: i128, stats: &mut ZoneStats) {
        self.forget(dst);
        self.add_diff(Some(&dst.clone()), Some(&src.clone()), delta, stats);
        self.add_diff(Some(&src.clone()), Some(&dst.clone()), -delta, stats);
    }

    /// The image of `dst := e` where only the interval `[lo, hi]` of `e`
    /// is known: all relations are dropped, the bounds are kept.
    pub fn assign_bounds(&mut self, dst: &ZVar, lo: u64, hi: u64, stats: &mut ZoneStats) {
        self.forget(dst);
        if hi < u64::MAX {
            self.add_diff(Some(&dst.clone()), None, hi as i128, stats);
        }
        if lo > 0 {
            self.add_diff(None, Some(&dst.clone()), -(lo as i128), stats);
        }
    }

    /// Largest value `v` may take (`u64::MAX` when unconstrained, `None`
    /// when the zone is unsatisfiable).
    pub fn var_max(&self, v: &ZVar) -> Option<u64> {
        if self.unsat {
            return None;
        }
        Some(self.bound(Some(v), None).clamp(0, BOUND) as u64)
    }

    /// Smallest value `v` may take.
    pub fn var_min(&self, v: &ZVar) -> Option<u64> {
        if self.unsat {
            return None;
        }
        Some((-self.bound(None, Some(v))).clamp(0, BOUND) as u64)
    }
}

// ------------------------------------------------- expr translation --

/// A difference-logic term: an optional variable plus a constant
/// offset. `(None, k)` is the constant `k`.
pub type DiffTerm = (Option<ZVar>, i128);

/// Translates an expression into a difference term, or `None` when it
/// is not of the form `var`, `const`, `var + const` or `var - const`.
pub fn term(expr: &Expr) -> Option<DiffTerm> {
    match expr {
        Expr::UInt(v) => Some((None, *v as i128)),
        Expr::Param(p) => Some((Some(ZVar::Param(p.clone())), 0)),
        Expr::Global(g) => Some((Some(ZVar::Global(g.clone())), 0)),
        Expr::Balance => Some((Some(ZVar::Balance), 0)),
        Expr::Bin(BinOp::Add, lhs, rhs) => match (term(lhs), term(rhs)) {
            (Some((Some(v), a)), Some((None, b))) | (Some((None, b)), Some((Some(v), a))) => {
                Some((Some(v), a + b))
            }
            (Some((None, a)), Some((None, b))) => Some((None, a + b)),
            _ => None,
        },
        Expr::Bin(BinOp::Sub, lhs, rhs) => match (term(lhs), term(rhs)) {
            (Some((v, a)), Some((None, b))) => Some((v, a - b)),
            _ => None,
        },
        _ => None,
    }
}

/// Whether a term's runtime value provably equals its mathematical
/// value (no modular wrap) under the zone. Constant offsets on a
/// variable require the zone to entail headroom first.
pub fn term_wrap_free(zone: &Zone, t: &DiffTerm) -> bool {
    match t {
        (None, k) => (0..=BOUND).contains(k),
        (Some(_), 0) => true,
        // v + k wraps unless v ≤ MAX - k.
        (Some(v), k) if *k > 0 => zone.entails_diff(Some(v), None, BOUND - k),
        // v - k wraps unless v ≥ k.
        (Some(v), k) => zone.entails_diff(None, Some(v), *k),
    }
}

fn negate(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Ge,
        BinOp::Ge => BinOp::Lt,
        BinOp::Gt => BinOp::Le,
        BinOp::Le => BinOp::Gt,
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        other => other,
    }
}

/// Assumes `cond == truth` into the zone, returning the resulting
/// satisfiability. Atoms outside the difference fragment (opaque
/// values, disjunctions, may-wrap terms) are soundly skipped.
pub fn assume(zone: &mut Zone, cond: &Expr, truth: bool, stats: &mut ZoneStats) -> bool {
    match cond {
        Expr::Not(inner) => assume(zone, inner, !truth, stats),
        Expr::Bin(BinOp::And, lhs, rhs) if truth => {
            assume(zone, lhs, true, stats) && assume(zone, rhs, true, stats)
        }
        Expr::Bin(BinOp::Or, lhs, rhs) if !truth => {
            assume(zone, lhs, false, stats) && assume(zone, rhs, false, stats)
        }
        Expr::Bin(op, lhs, rhs)
            if matches!(
                op,
                BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne
            ) =>
        {
            let (Some(ta), Some(tb)) = (term(lhs), term(rhs)) else { return zone.is_sat() };
            if !term_wrap_free(zone, &ta) || !term_wrap_free(zone, &tb) {
                return zone.is_sat();
            }
            let op = if truth { *op } else { negate(*op) };
            let (va, ca) = (&ta.0, ta.1);
            let (vb, cb) = (&tb.0, tb.1);
            match op {
                // va + ca < vb + cb ⇔ va - vb ≤ cb - ca - 1.
                BinOp::Lt => zone.add_diff(va.as_ref(), vb.as_ref(), cb - ca - 1, stats),
                BinOp::Le => zone.add_diff(va.as_ref(), vb.as_ref(), cb - ca, stats),
                BinOp::Gt => zone.add_diff(vb.as_ref(), va.as_ref(), ca - cb - 1, stats),
                BinOp::Ge => zone.add_diff(vb.as_ref(), va.as_ref(), ca - cb, stats),
                BinOp::Eq => {
                    zone.add_diff(va.as_ref(), vb.as_ref(), cb - ca, stats)
                        && zone.add_diff(vb.as_ref(), va.as_ref(), ca - cb, stats)
                }
                // A single disequality is not a difference constraint.
                _ => zone.is_sat(),
            }
        }
        _ => zone.is_sat(),
    }
}

/// Whether the zone proves `minuend ≥ subtrahend` — the underflow
/// obligation for `minuend - subtrahend`. Both sides must be wrap-free
/// difference terms for the comparison to be meaningful.
pub fn entails_ge(zone: &Zone, minuend: &Expr, subtrahend: &Expr) -> bool {
    if !zone.is_sat() {
        return true;
    }
    let (Some(tm), Some(ts)) = (term(minuend), term(subtrahend)) else { return false };
    if !term_wrap_free(zone, &tm) || !term_wrap_free(zone, &ts) {
        return false;
    }
    // m + cm ≥ s + cs ⇔ s - m ≤ cm - cs.
    zone.entails_diff(ts.0.as_ref(), tm.0.as_ref(), tm.1 - ts.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gt(a: &str, b: &str) -> Expr {
        Expr::gt(Expr::param(a), Expr::param(b))
    }

    #[test]
    fn mirrored_guard_discharges_subtraction() {
        // require(b < a) ⊢ a - b safe — beyond the syntactic matcher
        // (wrong operand order) and beyond intervals (both TOP).
        let mut z = Zone::new();
        let mut st = ZoneStats::default();
        assert!(assume(
            &mut z,
            &Expr::Bin(BinOp::Lt, Box::new(Expr::param("b")), Box::new(Expr::param("a"))),
            true,
            &mut st
        ));
        assert!(entails_ge(&z, &Expr::param("a"), &Expr::param("b")));
        assert!(!entails_ge(&z, &Expr::param("b"), &Expr::param("a")));
        assert!(st.constraints >= 1);
    }

    #[test]
    fn transitive_chain_closes() {
        // a > b, b > c ⊢ a > c (and a - c ≥ 2).
        let mut z = Zone::new();
        let mut st = ZoneStats::default();
        assert!(assume(&mut z, &gt("a", "b"), true, &mut st));
        assert!(assume(&mut z, &gt("b", "c"), true, &mut st));
        assert!(entails_ge(&z, &Expr::param("a"), &Expr::param("c")));
        // a ≥ c + 2 via closure.
        assert!(z.entails_diff(Some(&ZVar::Param("c".into())), Some(&ZVar::Param("a".into())), -2));
    }

    #[test]
    fn contradiction_detected() {
        let mut z = Zone::new();
        let mut st = ZoneStats::default();
        assert!(assume(&mut z, &gt("a", "b"), true, &mut st));
        assert!(!assume(&mut z, &gt("b", "a"), true, &mut st));
        assert!(!z.is_sat());
        // Unsat zones entail everything (vacuous truth).
        assert!(entails_ge(&z, &Expr::param("b"), &Expr::param("a")));
    }

    #[test]
    fn symmetric_range_via_conjunction() {
        // require(lo <= x && x <= hi) keeps both bounds.
        let cond = Expr::Bin(
            BinOp::And,
            Box::new(Expr::Bin(BinOp::Le, Box::new(Expr::param("lo")), Box::new(Expr::param("x")))),
            Box::new(Expr::Bin(BinOp::Le, Box::new(Expr::param("x")), Box::new(Expr::param("hi")))),
        );
        let mut z = Zone::new();
        let mut st = ZoneStats::default();
        assert!(assume(&mut z, &cond, true, &mut st));
        assert!(entails_ge(&z, &Expr::param("x"), &Expr::param("lo")));
        assert!(entails_ge(&z, &Expr::param("hi"), &Expr::param("x")));
        assert!(!entails_ge(&z, &Expr::param("lo"), &Expr::param("x")));
    }

    #[test]
    fn may_wrap_offset_terms_are_dropped() {
        // Nothing is known about p, so `p - 3` may wrap: asserting
        // `a <= p - 3` must not bound a (the verify_soundness pin).
        let mut z = Zone::new();
        let mut st = ZoneStats::default();
        let cond = Expr::Bin(
            BinOp::Le,
            Box::new(Expr::param("a")),
            Box::new(Expr::sub(Expr::param("p"), Expr::UInt(3))),
        );
        assert!(assume(&mut z, &cond, true, &mut st));
        assert!(!entails_ge(&z, &Expr::param("p"), &Expr::param("a")));

        // With p ≥ 3 established first, the same guard is usable.
        let mut z2 = Zone::new();
        assert!(assume(&mut z2, &Expr::ge(Expr::param("p"), Expr::UInt(3)), true, &mut st));
        assert!(assume(&mut z2, &cond, true, &mut st));
        assert!(entails_ge(&z2, &Expr::param("p"), &Expr::param("a")));
    }

    #[test]
    fn join_keeps_common_facts_only() {
        let mut st = ZoneStats::default();
        let mut z1 = Zone::new();
        assume(&mut z1, &gt("a", "b"), true, &mut st);
        assume(&mut z1, &Expr::ge(Expr::param("a"), Expr::UInt(10)), true, &mut st);
        let mut z2 = Zone::new();
        assume(&mut z2, &gt("a", "b"), true, &mut st);
        let j = Zone::join(&z1, &z2, &mut st);
        // a > b survives (in both); a ≥ 10 does not (only one side).
        assert!(entails_ge(&j, &Expr::param("a"), &Expr::param("b")));
        assert_eq!(j.var_min(&ZVar::Param("a".into())), Some(1));
    }

    #[test]
    fn join_with_unsat_side_is_identity() {
        let mut st = ZoneStats::default();
        let mut dead = Zone::new();
        assume(&mut dead, &gt("a", "b"), true, &mut st);
        assume(&mut dead, &gt("b", "a"), true, &mut st);
        assert!(!dead.is_sat());
        let mut live = Zone::new();
        assume(&mut live, &gt("a", "b"), true, &mut st);
        let j = Zone::join(&live, &dead, &mut st);
        assert!(j.is_sat());
        assert!(entails_ge(&j, &Expr::param("a"), &Expr::param("b")));
    }

    #[test]
    fn shift_tracks_increments_and_decrements() {
        let mut st = ZoneStats::default();
        let mut z = Zone::new();
        let g = ZVar::Global("g".into());
        assume(&mut z, &Expr::ge(Expr::global("g"), Expr::UInt(5)), true, &mut st);
        // g := g - 2 (wrap-free: g ≥ 5).
        z.shift(&g, -2);
        assert_eq!(z.var_min(&g), Some(3));
        z.shift(&g, 10);
        assert_eq!(z.var_min(&g), Some(13));
    }

    #[test]
    fn assign_var_relates_destination() {
        let mut st = ZoneStats::default();
        let mut z = Zone::new();
        assume(&mut z, &Expr::ge(Expr::param("a"), Expr::UInt(7)), true, &mut st);
        let g = ZVar::Global("g".into());
        // g := a + 1 (a ≤ MAX - 1 not entailed — but assign_var is only
        // called by ir.rs after proving wrap-freedom; here delta -1).
        z.assign_var(&g, &ZVar::Param("a".into()), -1, &mut st);
        assert_eq!(z.var_min(&g), Some(6));
        // g < a is now entailed.
        assert!(z.entails_diff(Some(&g), Some(&ZVar::Param("a".into())), -1));
    }

    #[test]
    fn assign_bounds_seeds_interval_facts() {
        let mut st = ZoneStats::default();
        let mut z = Zone::new();
        let g = ZVar::Global("g".into());
        z.assign_bounds(&g, 4, 20, &mut st);
        assert_eq!(z.var_min(&g), Some(4));
        assert_eq!(z.var_max(&g), Some(20));
    }

    #[test]
    fn constant_false_atom_is_unsat() {
        let mut st = ZoneStats::default();
        let mut z = Zone::new();
        let one_lt_one = Expr::Bin(BinOp::Lt, Box::new(Expr::UInt(1)), Box::new(Expr::UInt(1)));
        assert!(!assume(&mut z, &one_lt_one, true, &mut st));
        assert!(!z.is_sat());
    }

    #[test]
    fn equality_is_two_inequalities() {
        let mut st = ZoneStats::default();
        let mut z = Zone::new();
        assume(&mut z, &Expr::eq(Expr::param("a"), Expr::param("b")), true, &mut st);
        assert!(entails_ge(&z, &Expr::param("a"), &Expr::param("b")));
        assert!(entails_ge(&z, &Expr::param("b"), &Expr::param("a")));
    }

    #[test]
    fn opaque_atoms_are_skipped() {
        let mut st = ZoneStats::default();
        let mut z = Zone::new();
        let cond = Expr::eq(Expr::param("w"), Expr::Caller);
        assert!(assume(&mut z, &cond, true, &mut st));
        assert_eq!(st.constraints, 0);
    }
}
