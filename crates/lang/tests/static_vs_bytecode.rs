//! Differential test between the *source-level* static pipeline and the
//! *bytecode-level* verifiers: for every generated program, the two
//! verdicts must agree.
//!
//! * When the source-level pipeline (type check + theorem verifier +
//!   error-severity lints) accepts a program, the emitted bytecode must
//!   pass both post-emission verifiers and every cost cross-check —
//!   i.e. [`pol_lang::backend::compile`] must succeed, since codegen is
//!   supposed to be total on verified programs.
//! * The verified worst-case costs must respect the conservative
//!   straight-line bounds the analysis reports (the X0401/X0402
//!   invariants), which we re-check here explicitly per API fragment.
//!
//! Generated programs mirror `differential.rs` (Add/Mul only — no
//! subtraction, so the verifier's underflow theorems never fire and the
//! source verdict is decided by structure, not arithmetic luck).

use pol_lang::ast::*;
use pol_lang::backend;
use proptest::prelude::*;

const GLOBALS: [&str; 2] = ["g1", "g2"];
const PARAMS: [&str; 2] = ["a", "b"];

fn uexpr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0u64..512).prop_map(Expr::UInt),
        prop_oneof![Just(GLOBALS[0]), Just(GLOBALS[1])].prop_map(|g| Expr::Global(g.to_string())),
        prop_oneof![Just(PARAMS[0]), Just(PARAMS[1])].prop_map(|p| Expr::Param(p.to_string())),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = uexpr(depth - 1);
    prop_oneof![
        leaf,
        (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::Bin(
            BinOp::Add,
            Box::new(x),
            Box::new(y)
        )),
        (inner, 1u64..8).prop_map(|(x, k)| Expr::Bin(
            BinOp::Mul,
            Box::new(x),
            Box::new(Expr::UInt(k))
        )),
    ]
    .boxed()
}

fn bexpr() -> impl Strategy<Value = Expr> {
    (uexpr(1), uexpr(1), any::<u8>()).prop_map(|(x, y, op)| {
        let op = match op % 6 {
            0 => BinOp::Lt,
            1 => BinOp::Gt,
            2 => BinOp::Le,
            3 => BinOp::Ge,
            4 => BinOp::Eq,
            _ => BinOp::Ne,
        };
        Expr::Bin(op, Box::new(x), Box::new(y))
    })
}

fn stmt() -> impl Strategy<Value = Stmt> {
    let set = |depth: u32| {
        (prop_oneof![Just(GLOBALS[0]), Just(GLOBALS[1])], uexpr(depth))
            .prop_map(|(g, v)| Stmt::GlobalSet { name: g.to_string(), value: v })
    };
    prop_oneof![
        set(2),
        bexpr().prop_map(Stmt::Require),
        (bexpr(), proptest::collection::vec(set(1), 0..2), proptest::collection::vec(set(1), 0..2))
            .prop_map(|(cond, then, otherwise)| Stmt::If { cond, then, otherwise }),
    ]
}

fn program() -> impl Strategy<Value = Program> {
    (proptest::collection::vec(stmt(), 1..6), uexpr(2), 0u64..256).prop_map(
        |(body, returns, g1_init)| Program {
            name: "diff".into(),
            creator: Participant {
                name: "Creator".into(),
                fields: vec![("seed".into(), Ty::UInt)],
            },
            constructor: vec![],
            globals: vec![
                GlobalDecl {
                    name: GLOBALS[0].into(),
                    ty: Ty::UInt,
                    init: GlobalInit::Const(g1_init),
                    viewable: true,
                },
                GlobalDecl {
                    name: GLOBALS[1].into(),
                    ty: Ty::UInt,
                    init: GlobalInit::FromField("seed".into()),
                    viewable: true,
                },
            ],
            maps: vec![],
            phases: vec![Phase {
                name: "p".into(),
                while_cond: Expr::gt(Expr::global(GLOBALS[1]), Expr::UInt(0)),
                invariant: Expr::ge(Expr::global(GLOBALS[0]), Expr::UInt(0)),
                apis: vec![Api {
                    name: "f".into(),
                    params: vec![(PARAMS[0].into(), Ty::UInt), (PARAMS[1].into(), Ty::UInt)],
                    pay: None,
                    body,
                    returns,
                }],
            }],
            spans: Default::default(),
        },
    )
}

/// The source-level verdict: type check, theorem verifier and
/// error-severity lints all pass.
fn source_accepts(program: &Program) -> bool {
    pol_lang::check::check(program).is_empty()
        && pol_lang::verify::verify(program).ok()
        && pol_lang::lint::lint(program).iter().all(|d| !d.is_error())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Source-level acceptance implies bytecode-level acceptance: the
    /// full pipeline (including both post-emission verifiers and the
    /// cost cross-checks) succeeds on every program the static layer
    /// accepts.
    #[test]
    fn source_verdict_agrees_with_bytecode_verdict(program in program()) {
        if source_accepts(&program) {
            let compiled = backend::compile(&program)
                .unwrap_or_else(|e| panic!("bytecode layer disagreed with source layer: {e}"));
            prop_assert!(compiled.warnings.iter().all(|d| !d.is_error()));
        } else {
            // The pipeline must reject it too (never panic).
            prop_assert!(backend::compile(&program).is_err());
        }
    }

    /// The verified worst-case path costs never exceed the conservative
    /// straight-line bounds the analysis reports, on either target.
    #[test]
    fn verified_worst_case_respects_conservative_bounds(program in program()) {
        if !source_accepts(&program) {
            return;
        }
        let api = &program.phases[0].apis[0];

        let fragment = backend::evm::api_fragment(&program, 0, api).expect("evm fragment");
        let payload = backend::evm::params_width(api) as u64;
        let cfg = pol_evm::verifier::VerifyConfig {
            allowed_post_call_sstore_keys: &[],
            payload_bytes: payload,
        };
        let report = pol_evm::verifier::verify(&fragment, &cfg).expect("evm fragment verifies");
        let linear = {
            let mut total = 0u64;
            let mut pc = 0usize;
            while pc < fragment.len() {
                let (op, variant) =
                    pol_evm::opcode::Op::decode(fragment[pc]).expect("decodable");
                pc += 1;
                if op == pol_evm::opcode::Op::Push1 {
                    pc += variant as usize + 1;
                }
                total += pol_evm::verifier::conservative_op_gas(op, payload);
            }
            total
        };
        prop_assert!(report.worst_case_gas <= linear,
            "EVM worst path {} > linear bound {linear}", report.worst_case_gas);

        let ops = backend::avm::api_fragment(&program, 0, api).expect("avm fragment");
        let avm_fragment = pol_avm::program::AvmProgram::new(ops);
        let avm_report = pol_avm::verifier::verify(&avm_fragment).expect("avm fragment verifies");
        let avm_bound = pol_avm::cost::program_cost(avm_fragment.ops());
        prop_assert!(avm_report.worst_case_cost <= avm_bound,
            "AVM worst path {} > linear bound {avm_bound}", avm_report.worst_case_cost);
    }
}
