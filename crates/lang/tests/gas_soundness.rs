//! Differential soundness of the static worst-case gas certificates:
//! random well-typed programs are certified, compiled to both backends,
//! and driven with random call storms — every observed spend (EVM
//! `gas_used`, AVM opcode cost) must stay at or below the certificate
//! that admission and scheduling consume. A fixture test pins the other
//! side: on the shipped proof-of-location contract the certificates stay
//! within a fixed slack factor of a successful execution, so the bounds
//! are tight enough to be worth scheduling against.

use pol_lang::ast::*;
use pol_lang::backend::{self, AbiValue};
use pol_lang::gas;
use pol_ledger::Address;
use proptest::prelude::*;

const GLOBALS: [&str; 2] = ["g1", "g2"];
const PARAMS: [&str; 2] = ["a", "b"];

/// Bounded UInt expressions (mirrors `differential.rs`: growth stays far
/// below u64 over a short call storm, so the VMs agree and no path
/// aborts on overflow).
fn uexpr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0u64..512).prop_map(Expr::UInt),
        prop_oneof![Just(GLOBALS[0]), Just(GLOBALS[1])].prop_map(|g| Expr::Global(g.to_string())),
        prop_oneof![Just(PARAMS[0]), Just(PARAMS[1])].prop_map(|p| Expr::Param(p.to_string())),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = uexpr(depth - 1);
    prop_oneof![
        leaf,
        (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::Bin(
            BinOp::Add,
            Box::new(x),
            Box::new(y)
        )),
        (inner, 1u64..8).prop_map(|(x, k)| Expr::Bin(
            BinOp::Mul,
            Box::new(x),
            Box::new(Expr::UInt(k))
        )),
    ]
    .boxed()
}

fn bexpr() -> impl Strategy<Value = Expr> {
    (uexpr(1), uexpr(1), any::<u8>()).prop_map(|(x, y, op)| {
        let op = match op % 6 {
            0 => BinOp::Lt,
            1 => BinOp::Gt,
            2 => BinOp::Le,
            3 => BinOp::Ge,
            4 => BinOp::Eq,
            _ => BinOp::Ne,
        };
        Expr::Bin(op, Box::new(x), Box::new(y))
    })
}

fn stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (prop_oneof![Just(GLOBALS[0]), Just(GLOBALS[1])], uexpr(2))
            .prop_map(|(g, v)| Stmt::GlobalSet { name: g.to_string(), value: v }),
        bexpr().prop_map(Stmt::Require),
        (
            bexpr(),
            proptest::collection::vec(
                (prop_oneof![Just(GLOBALS[0]), Just(GLOBALS[1])], uexpr(1))
                    .prop_map(|(g, v)| Stmt::GlobalSet { name: g.to_string(), value: v }),
                0..2,
            ),
            proptest::collection::vec(
                (prop_oneof![Just(GLOBALS[0]), Just(GLOBALS[1])], uexpr(1))
                    .prop_map(|(g, v)| Stmt::GlobalSet { name: g.to_string(), value: v }),
                0..2,
            )
        )
            .prop_map(|(cond, then, otherwise)| Stmt::If { cond, then, otherwise }),
    ]
}

/// Random certified programs. `with_map` appends a write-then-delete
/// pair over a param-keyed map entry, exercising the storage cost model
/// on both backends without ever deleting a missing AVM box.
fn program() -> impl Strategy<Value = Program> {
    (proptest::collection::vec(stmt(), 1..4), uexpr(2), 0u64..256, any::<bool>()).prop_map(
        |(mut body, returns, g1_init, with_map)| {
            if with_map {
                body.push(Stmt::MapSet {
                    map: "m".into(),
                    key: Expr::param(PARAMS[0]),
                    value: vec![Expr::param(PARAMS[1])],
                });
                body.push(Stmt::MapDelete { map: "m".into(), key: Expr::param(PARAMS[0]) });
            }
            Program {
                name: "gassound".into(),
                creator: Participant {
                    name: "Creator".into(),
                    fields: vec![("seed".into(), Ty::UInt)],
                },
                constructor: vec![],
                globals: vec![
                    GlobalDecl {
                        name: GLOBALS[0].into(),
                        ty: Ty::UInt,
                        init: GlobalInit::Const(g1_init),
                        viewable: true,
                    },
                    GlobalDecl {
                        name: GLOBALS[1].into(),
                        ty: Ty::UInt,
                        init: GlobalInit::FromField("seed".into()),
                        viewable: true,
                    },
                ],
                maps: if with_map {
                    vec![MapDecl { name: "m".into(), value_bytes: 32 }]
                } else {
                    vec![]
                },
                phases: vec![Phase {
                    name: "p".into(),
                    while_cond: Expr::Bin(
                        BinOp::Lt,
                        Box::new(Expr::UInt(0)),
                        Box::new(Expr::UInt(1)),
                    ),
                    invariant: Expr::Bin(
                        BinOp::Ge,
                        Box::new(Expr::global(GLOBALS[0])),
                        Box::new(Expr::UInt(0)),
                    ),
                    apis: vec![Api {
                        name: "f".into(),
                        params: vec![(PARAMS[0].into(), Ty::UInt), (PARAMS[1].into(), Ty::UInt)],
                        pay: None,
                        body,
                        returns,
                    }],
                }],
                spans: Default::default(),
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Certificates are sound under randomized call storms on both
    /// virtual machines: no committed execution ever spends past its
    /// static worst-case bound — accepted, reverted or misdispatched.
    #[test]
    fn observed_spend_never_exceeds_the_certificate(
        program in program(),
        seed in 0u64..256,
        calls in proptest::collection::vec((0u64..512, 0u64..512), 1..6),
    ) {
        prop_assume!(pol_lang::check::check(&program).is_empty());
        let bounds = gas::certify(&program).expect("certifies");
        let source = pol_lang::pretty::to_source(&program);

        // EVM: deploy + call storm + a wrong selector.
        let compiled = backend::evm::compile(&program).expect("compiles");
        let mut evm = pol_evm::Evm::new();
        let mut balances = pol_evm::interpreter::Balances::new();
        let init = compiled.init_with_args(&[AbiValue::Word(u128::from(seed))]).unwrap();
        let (addr, deploy_out) =
            evm.deploy(Address::ZERO, &init, 50_000_000, &mut balances).expect("deploys");
        let ctor_bound = bounds.constructor_evm.worst_case().expect("bounded");
        prop_assert!(
            deploy_out.gas_used <= ctor_bound,
            "deploy used {} > bound {ctor_bound}\n{source}",
            deploy_out.gas_used
        );
        let caller = Address([1; 20]);
        let mut datas: Vec<Vec<u8>> = calls
            .iter()
            .map(|&(a, b)| {
                compiled
                    .encode_call(
                        "f",
                        &[AbiValue::Word(u128::from(a)), AbiValue::Word(u128::from(b))],
                    )
                    .unwrap()
            })
            .collect();
        datas.push(vec![0xde, 0xad, 0xbe, 0xef]);
        for data in &datas {
            let bound = bounds.resolve_evm_call(data).expect("bounded");
            let out = evm
                .call(pol_evm::CallParams::new(caller, addr).with_data(data.clone()), &mut balances)
                .expect("no machine faults");
            prop_assert!(
                out.gas_used <= bound,
                "evm call used {} > bound {bound}\n{source}",
                out.gas_used
            );
        }

        // AVM: create + the same storm + a wrong dispatch symbol.
        let compiled = backend::avm::compile(&program).expect("compiles");
        let mut avm = pol_avm::Avm::new();
        let mut balances = pol_avm::interpreter::Balances::new();
        let creator = Address([0xaa; 20]);
        balances.insert(creator, 10_000_000);
        let app_id = avm
            .create_app_with_args(
                creator,
                compiled.program.clone(),
                compiled.encode_create_args(&[AbiValue::Word(u128::from(seed))]).unwrap(),
                &mut balances,
            )
            .expect("creates");
        let mut storms: Vec<Vec<Vec<u8>>> = calls
            .iter()
            .map(|&(a, b)| {
                compiled
                    .encode_call(
                        "f",
                        &[AbiValue::Word(u128::from(a)), AbiValue::Word(u128::from(b))],
                    )
                    .unwrap()
            })
            .collect();
        storms.push(vec![b"nonsense".to_vec()]);
        for args in &storms {
            let bound = bounds.resolve_app_call(args).expect("bounded");
            let out = avm
                .call(
                    pol_avm::AppCallParams::new(caller, app_id).with_args(args.clone()),
                    &mut balances,
                )
                .expect("no machine faults");
            prop_assert!(
                out.cost <= bound,
                "avm call cost {} > bound {bound}\n{source}",
                out.cost
            );
        }
    }
}

/// The shipped v1 contract's attach phase, driven for real on both
/// machines: sound (observed ≤ bound) *and* tight (bound within a pinned
/// 4x slack of a successful execution) — loose certificates would make
/// the scheduler's seeds and the admission precheck worthless.
#[test]
fn v1_attach_certificates_are_sound_and_tight() {
    let src = include_str!("../../core/contracts/proof_of_location.pol");
    let program = pol_lang::parse::parse(src).expect("parses");
    assert!(pol_lang::check::check(&program).is_empty());
    let bounds = gas::certify(&program).expect("certifies");
    let entry = |did: u64| {
        let mut data = vec![0u8; 224];
        data[0] = did as u8;
        data
    };
    let insert = |did: u64| (entry(did), did);

    // EVM.
    let compiled = backend::evm::compile(&program).expect("compiles");
    let ctor_args = [
        AbiValue::Word(7),
        AbiValue::Bytes(vec![0x11; 16]),
        AbiValue::Word(4), // maxUsers: storm stays inside the attach phase
        AbiValue::Word(5),
    ];
    let init = compiled.init_with_args(&ctor_args).unwrap();
    let mut evm = pol_evm::Evm::new();
    let mut balances = pol_evm::interpreter::Balances::new();
    let (addr, deploy_out) =
        evm.deploy(Address([0xaa; 20]), &init, 30_000_000, &mut balances).expect("deploys");
    assert!(deploy_out.success);
    let ctor_bound = bounds.constructor_evm.worst_case().expect("bounded");
    assert!(deploy_out.gas_used <= ctor_bound);
    let caller = Address([1; 20]);
    for did in [3u64, 4, 5] {
        let (data, did) = insert(did);
        let calldata = compiled
            .encode_call("insert_data", &[AbiValue::Bytes(data), AbiValue::Word(u128::from(did))])
            .unwrap();
        let bound = bounds.resolve_evm_call(&calldata).expect("bounded");
        let out = evm
            .call(pol_evm::CallParams::new(caller, addr).with_data(calldata), &mut balances)
            .expect("no machine faults");
        assert!(out.success, "insert_data({did}) reverted");
        assert!(out.gas_used <= bound, "used {} > bound {bound}", out.gas_used);
        assert!(
            bound <= out.gas_used.saturating_mul(4),
            "bound {bound} looser than 4x observed {}",
            out.gas_used
        );
    }

    // AVM.
    let compiled = backend::avm::compile(&program).expect("compiles");
    let mut avm = pol_avm::Avm::new();
    let mut balances = pol_avm::interpreter::Balances::new();
    let creator = Address([0xaa; 20]);
    balances.insert(creator, 10_000_000);
    let create_args = compiled.encode_create_args(&ctor_args).unwrap();
    let app_id = avm
        .create_app_with_args(creator, compiled.program.clone(), create_args, &mut balances)
        .expect("creates");
    for did in [3u64, 4, 5] {
        let (data, did) = insert(did);
        let args = compiled
            .encode_call("insert_data", &[AbiValue::Bytes(data), AbiValue::Word(u128::from(did))])
            .unwrap();
        let bound = bounds.resolve_app_call(&args).expect("bounded");
        let out = avm
            .call(pol_avm::AppCallParams::new(caller, app_id).with_args(args), &mut balances)
            .expect("no machine faults");
        assert!(out.approved, "insert_data({did}) rejected");
        assert!(out.cost <= bound, "cost {} > bound {bound}", out.cost);
        assert!(
            bound <= out.cost.saturating_mul(4),
            "avm bound {bound} looser than 4x observed {}",
            out.cost
        );
    }
}
