//! Fuzz the surface syntax: pretty-print randomly generated programs and
//! re-parse them — the AST must survive the trip byte-for-byte.

use pol_lang::ast::*;
use pol_lang::{parse, pretty};
use proptest::prelude::*;

const PARAMS: [&str; 2] = ["p1", "p2"];
const GLOBALS: [&str; 2] = ["g1", "g2"];
const MAP: &str = "m1";

/// Expressions whose names resolve correctly under the parser's scoping:
/// `Param` leaves only from the fixed parameter pool (every generated API
/// declares both), `Global` leaves from the global pool.
fn expr_strategy(in_api: bool) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0u64..1000).prop_map(Expr::UInt),
        prop_oneof![Just(GLOBALS[0]), Just(GLOBALS[1])].prop_map(|g| Expr::Global(g.to_string())),
        if in_api {
            prop_oneof![Just(PARAMS[0]), Just(PARAMS[1])]
                .prop_map(|p| Expr::Param(p.to_string()))
                .boxed()
        } else {
            (0u64..10).prop_map(Expr::UInt).boxed()
        },
        Just(Expr::Balance),
        Just(Expr::Caller),
    ];
    leaf.prop_recursive(3, 24, 4, move |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), any::<u8>()).prop_map(|(a, b, op)| {
                let op = match op % 12 {
                    0 => BinOp::Add,
                    1 => BinOp::Sub,
                    2 => BinOp::Mul,
                    3 => BinOp::Div,
                    4 => BinOp::Lt,
                    5 => BinOp::Gt,
                    6 => BinOp::Le,
                    7 => BinOp::Ge,
                    8 => BinOp::Eq,
                    9 => BinOp::Ne,
                    10 => BinOp::And,
                    _ => BinOp::Or,
                };
                Expr::Bin(op, Box::new(a), Box::new(b))
            }),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            inner.clone().prop_map(|k| Expr::MapGet { map: MAP.to_string(), key: Box::new(k) }),
            inner
                .clone()
                .prop_map(|k| Expr::MapContains { map: MAP.to_string(), key: Box::new(k) }),
            proptest::collection::vec(inner, 1..3).prop_map(Expr::Hash),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let e = || expr_strategy(true);
    prop_oneof![
        e().prop_map(Stmt::Require),
        (prop_oneof![Just(GLOBALS[0]), Just(GLOBALS[1])], e())
            .prop_map(|(g, v)| { Stmt::GlobalSet { name: g.to_string(), value: v } }),
        (e(), proptest::collection::vec(e(), 1..3)).prop_map(|(k, v)| Stmt::MapSet {
            map: MAP.to_string(),
            key: k,
            value: v,
        }),
        e().prop_map(|k| Stmt::MapDelete { map: MAP.to_string(), key: k }),
        (e(), e()).prop_map(|(to, amount)| Stmt::Transfer { to, amount }),
        proptest::collection::vec(e(), 1..3).prop_map(Stmt::Log),
        (e(), proptest::collection::vec(e().prop_map(Stmt::Require), 0..2))
            .prop_map(|(cond, then)| Stmt::If { cond, then, otherwise: vec![] }),
    ]
}

fn program_strategy() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(stmt_strategy(), 0..4),
        expr_strategy(false),
        expr_strategy(true),
        (1u64..100),
        any::<bool>(),
    )
        .prop_map(|(body, while_cond, returns, init, viewable)| Program {
            name: "fuzzed".into(),
            creator: Participant {
                name: "Creator".into(),
                fields: vec![("seed".into(), Ty::UInt), ("blob".into(), Ty::Bytes(64))],
            },
            constructor: vec![],
            globals: vec![
                GlobalDecl {
                    name: GLOBALS[0].into(),
                    ty: Ty::UInt,
                    init: GlobalInit::Const(init),
                    viewable,
                },
                GlobalDecl {
                    name: GLOBALS[1].into(),
                    ty: Ty::UInt,
                    init: GlobalInit::FromField("seed".into()),
                    viewable: false,
                },
            ],
            maps: vec![MapDecl { name: MAP.into(), value_bytes: 64 }],
            phases: vec![Phase {
                name: "only".into(),
                while_cond,
                invariant: Expr::UInt(1),
                apis: vec![Api {
                    name: "f".into(),
                    params: vec![(PARAMS[0].into(), Ty::UInt), (PARAMS[1].into(), Ty::Address)],
                    pay: None,
                    body,
                    returns,
                }],
            }],
            spans: Default::default(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `parse(to_source(p)) == p` for arbitrary generated programs.
    #[test]
    fn pretty_parse_roundtrip(program in program_strategy()) {
        let source = pretty::to_source(&program);
        let reparsed = parse::parse(&source)
            .unwrap_or_else(|e| panic!("{e}\nsource:\n{source}"));
        prop_assert_eq!(reparsed, program, "source was:\n{}", source);
    }
}
