//! End-to-end tests of the `polc` binary: the `--no-relational` switch,
//! the `verify` subcommand with its JSON statistics output, and the
//! code registry.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn polc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_polc"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("polc runs")
}

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/lint")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

fn contract(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../crates/core/contracts")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

#[test]
fn relational_guard_is_clean_only_with_the_zone() {
    let with = polc(&["lint", &fixture("relational_guard.pol")]);
    assert!(with.status.success(), "{}", String::from_utf8_lossy(&with.stderr));

    // Without the zone the mirrored guard is invisible: V0102 fires and
    // the (empty) golden mismatches.
    let without = polc(&["lint", "--no-relational", &fixture("relational_guard.pol")]);
    assert!(!without.status.success());
    let stderr = String::from_utf8_lossy(&without.stderr);
    assert!(stderr.contains("V0102"), "{stderr}");
}

#[test]
fn unsat_require_warns_only_with_the_zone() {
    let with = polc(&["lint", &fixture("unsat_require.pol")]);
    assert!(with.status.success(), "{}", String::from_utf8_lossy(&with.stderr));

    // Without the zone there is no L0006, so the golden mismatches.
    let without = polc(&["lint", "--no-relational", &fixture("unsat_require.pol")]);
    assert!(!without.status.success());
}

#[test]
fn verify_reports_system_and_writes_json() {
    let json_path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("relational_verify.json");
    let out = polc(&[
        "verify",
        "--json",
        &json_path.to_string_lossy(),
        &contract("proof_of_location.pol"),
        &contract("proof_of_location_v2.pol"),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}\n{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("discharged relationally"), "{stdout}");
    assert!(stdout.contains("aggregate conservation holds"), "{stdout}");

    let json = std::fs::read_to_string(&json_path).expect("JSON written");
    assert!(json.contains("\"theorems_checked\": 42"), "{json}");
    assert!(json.contains("\"discharged\": 2"), "{json}");
    assert!(json.contains("\"aggregate_conserved\": true"), "{json}");
}

#[test]
fn verify_without_the_zone_rejects_the_v2_contract() {
    let out = polc(&["verify", "--no-relational", &contract("proof_of_location_v2.pol")]);
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAILURES"), "{stdout}");
}

#[test]
fn codes_registry_includes_the_relational_codes() {
    let out = polc(&["codes"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for code in ["L0006", "L0008", "X0501", "X0502", "X0503", "X0504"] {
        assert!(stdout.contains(code), "missing {code} in:\n{stdout}");
    }
}

#[test]
fn gas_certifies_the_v2_contract() {
    let out = polc(&["gas", &contract("proof_of_location_v2.pol")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}\n{}", String::from_utf8_lossy(&out.stderr));
    assert!(stdout.contains("contract proof_of_location_v2"), "{stdout}");
    // Every API, view and closeContract carries a certified (non-⊤)
    // bound on both backends...
    for method in [
        "insert_data",
        "insert_money",
        "verify",
        "set_reward_gap",
        "view_position",
        "closeContract",
    ] {
        assert!(stdout.contains(method), "missing {method} in:\n{stdout}");
    }
    assert!(!stdout.contains('⊤'), "uncertified method:\n{stdout}");
    // ...and every AVM bound fits the per-call budget, so no method is
    // flagged against its budget.
    assert!(!stdout.contains("!avm-budget"), "{stdout}");
    assert!(!stdout.contains("!block-budget"), "{stdout}");
}

#[test]
fn gas_writes_machine_readable_bounds() {
    let json_path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("gas_bounds.json");
    let out = polc(&[
        "gas",
        "--json",
        &json_path.to_string_lossy(),
        &contract("proof_of_location.pol"),
        &contract("proof_of_location_v2.pol"),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let json = std::fs::read_to_string(&json_path).expect("JSON written");
    assert!(json.contains("\"contracts\": ["), "{json}");
    assert!(json.contains("\"name\": \"proof_of_location\""), "{json}");
    assert!(json.contains("\"name\": \"proof_of_location_v2\""), "{json}");
    assert!(json.contains("\"block_gas_budget\": 30000000"), "{json}");
    assert!(json.contains("\"avm_call_budget\": 700"), "{json}");
    // Affine constructor bounds and constant call bounds both render;
    // nothing degrades to ⊤ on the shipped contracts.
    assert!(json.contains("\"form\": \"affine\""), "{json}");
    assert!(json.contains("\"form\": \"const\""), "{json}");
    assert!(!json.contains("\"form\": \"top\""), "{json}");
}

#[test]
fn gas_rejects_unparseable_and_unchecked_input() {
    let bogus = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("bogus.pol");
    std::fs::write(&bogus, "contract {").expect("fixture written");
    let out = polc(&["gas", &bogus.to_string_lossy()]);
    assert_eq!(out.status.code(), Some(2), "parse errors exit 2");
}
