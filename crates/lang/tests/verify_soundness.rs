//! Soundness guards for the verifier's interval fallback.
//!
//! The V0102 underflow pass only visits subtractions in *assignment*
//! position; a subtraction inside a `require` condition is never checked
//! and wraps modulo 2^256 on the EVM. The interval fallback therefore
//! must not treat such a subtraction as saturating when it refines
//! parameter bounds from guards: with `p <= 100` and `q >= 50`, a
//! saturated `p - q` evaluates to `[0, 50]`, so `require(a <= p - q)`
//! would pin `a` to `[0, 50]` and unsoundly discharge the underflow
//! theorem for `100 - a` — while at runtime a prover can pick `q > p`,
//! make `p - q` wrap to an astronomically large value, smuggle in
//! `a > 100`, and underflow `100 - a`. The fix widens any may-wrap
//! subtraction to TOP during interval evaluation, so the guard yields no
//! usable bound and verification must fail.

use pol_lang::ast::*;

#[test]
fn interval_fallback_unsound_via_sub_in_require() {
    let mut p = Program::counter_example();
    p.phases[0].apis[0].params =
        vec![("p".into(), Ty::UInt), ("q".into(), Ty::UInt), ("a".into(), Ty::UInt)];
    p.phases[0].apis[0].body = vec![
        Stmt::Require(Expr::Bin(BinOp::Le, Box::new(Expr::param("p")), Box::new(Expr::UInt(100)))),
        Stmt::Require(Expr::ge(Expr::param("q"), Expr::UInt(50))),
        // sub inside a require condition: never V0102-checked, wraps on EVM
        Stmt::Require(Expr::Bin(
            BinOp::Le,
            Box::new(Expr::param("a")),
            Box::new(Expr::sub(Expr::param("p"), Expr::param("q"))),
        )),
        // must NOT be discharged by the interval fallback using a <= 50
        Stmt::GlobalSet {
            name: "count".into(),
            value: Expr::sub(Expr::UInt(100), Expr::param("a")),
        },
    ];
    let report = pol_lang::verify::verify(&p);
    // If this passes verification, the verifier accepts a program whose
    // EVM runtime can underflow 100 - a (a up to 2^64-50 at runtime).
    assert!(!report.ok(), "verifier unsoundly accepted: {report}");
}

/// The companion positive case: when the guard's subtraction provably
/// cannot wrap, the interval fallback should still discharge the theorem
/// (no false positives from the widening).
#[test]
fn interval_fallback_still_discharges_nonwrapping_sub_guard() {
    let mut p = Program::counter_example();
    p.phases[0].apis[0].params =
        vec![("p".into(), Ty::UInt), ("q".into(), Ty::UInt), ("a".into(), Ty::UInt)];
    p.phases[0].apis[0].body = vec![
        Stmt::Require(Expr::Bin(BinOp::Le, Box::new(Expr::param("p")), Box::new(Expr::UInt(100)))),
        // q bounded on BOTH sides below p's lower bound: p - q cannot wrap
        Stmt::Require(Expr::ge(Expr::param("p"), Expr::UInt(60))),
        Stmt::Require(Expr::Bin(BinOp::Le, Box::new(Expr::param("q")), Box::new(Expr::UInt(50)))),
        Stmt::Require(Expr::Bin(
            BinOp::Le,
            Box::new(Expr::param("a")),
            Box::new(Expr::sub(Expr::param("p"), Expr::param("q"))),
        )),
        // a <= p - q <= 100, so 100 - a is safe
        Stmt::GlobalSet {
            name: "count".into(),
            value: Expr::sub(Expr::UInt(100), Expr::param("a")),
        },
    ];
    let report = pol_lang::verify::verify(&p);
    assert!(report.ok(), "sound guard should verify: {report}");
}
