//! Snapshot test over the lint fixtures in `examples/lint/`.
//!
//! Each `<name>.pol` fixture seeds a specific defect (or none); the
//! sibling `<name>.pol.expected` golden lists the exact diagnostics the
//! pipeline must produce, one canonical line per diagnostic — the same
//! comparison `polc lint` performs in CI.

use pol_lang::diag::Diagnostic;
use pol_lang::{check, lint, parse, verify};
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/lint")
}

/// The source-level pipeline `polc lint` runs: type check, then
/// verifier failures + lints.
fn diagnose(source: &str) -> Vec<Diagnostic> {
    let program = parse::parse(source).expect("fixture parses");
    let type_errors = check::check(&program);
    if !type_errors.is_empty() {
        return type_errors;
    }
    let mut diags = verify::verify(&program).failures;
    diags.extend(lint::lint(&program));
    diags
}

fn canonical(diags: &[Diagnostic], source: &str) -> Vec<String> {
    diags
        .iter()
        .map(|d| {
            let pos = match d.span.line_col(source) {
                Some((line, col)) => format!("{line}:{col}"),
                None => "-".to_string(),
            };
            format!("{}[{}] {pos} {}", d.severity, d.code, d.message)
        })
        .collect()
}

#[test]
fn fixtures_produce_their_golden_diagnostics() {
    let dir = fixtures_dir();
    let mut checked = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("examples/lint exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "pol"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "no fixtures found in {}", dir.display());
    for path in entries {
        let source = std::fs::read_to_string(&path).expect("fixture readable");
        let golden_path = path.with_extension("pol.expected");
        let golden = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|_| panic!("{} has no golden", path.display()));
        let want: Vec<String> =
            golden.lines().filter(|l| !l.trim().is_empty()).map(str::to_string).collect();
        let got = canonical(&diagnose(&source), &source);
        assert_eq!(got, want, "diagnostics changed for {}", path.display());
        checked += 1;
    }
    assert!(checked >= 8, "expected at least 8 fixtures, found {checked}");
}

#[test]
fn every_diagnostic_code_is_registered() {
    let dir = fixtures_dir();
    for entry in std::fs::read_dir(&dir).expect("examples/lint exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_none_or(|e| e != "pol") {
            continue;
        }
        let source = std::fs::read_to_string(&path).expect("fixture readable");
        for diag in diagnose(&source) {
            let (severity, _) = lint::code_info(diag.code)
                .unwrap_or_else(|| panic!("{} not in the CODES registry", diag.code));
            assert_eq!(severity, diag.severity, "severity drift for {}", diag.code);
        }
    }
}

#[test]
fn clean_fixture_survives_the_full_compile_pipeline() {
    let source =
        std::fs::read_to_string(fixtures_dir().join("clean_counter.pol")).expect("fixture");
    let program = parse::parse(&source).expect("parses");
    let compiled = pol_lang::backend::compile(&program).expect("full pipeline passes");
    assert!(compiled.warnings.is_empty(), "{:?}", compiled.warnings);
}

#[test]
fn defect_fixtures_are_rejected_by_the_full_pipeline() {
    for (name, expect_code) in [("unguarded_subtraction.pol", "V0102"), ("leaked_map.pol", "L0004")]
    {
        let source = std::fs::read_to_string(fixtures_dir().join(name)).expect("fixture");
        let program = parse::parse(&source).expect("parses");
        let err = pol_lang::backend::compile(&program).expect_err("pipeline rejects");
        assert!(
            err.diagnostics().iter().any(|d| d.code == expect_code),
            "{name}: expected {expect_code} in {err}"
        );
    }
}
