use pol_lang::ast::*;

#[test]
fn interval_fallback_unsound_via_sub_in_require() {
    let mut p = Program::counter_example();
    p.phases[0].apis[0].params = vec![
        ("p".into(), Ty::UInt),
        ("q".into(), Ty::UInt),
        ("a".into(), Ty::UInt),
    ];
    p.phases[0].apis[0].body = vec![
        Stmt::Require(Expr::Bin(BinOp::Le, Box::new(Expr::param("p")), Box::new(Expr::UInt(100)))),
        Stmt::Require(Expr::ge(Expr::param("q"), Expr::UInt(50))),
        // sub inside a require condition: never V0102-checked, wraps on EVM
        Stmt::Require(Expr::Bin(BinOp::Le, Box::new(Expr::param("a")), Box::new(Expr::sub(Expr::param("p"), Expr::param("q"))))),
        // discharged by the interval fallback using a <= 50 (unsound)
        Stmt::GlobalSet {
            name: "count".into(),
            value: Expr::sub(Expr::UInt(100), Expr::param("a")),
        },
    ];
    let report = pol_lang::verify::verify(&p);
    // If this passes verification, the verifier accepts a program whose
    // EVM runtime can underflow 100 - a (a up to 2^64-50 at runtime).
    assert!(!report.ok(), "verifier unsoundly accepted: {report}");
}
