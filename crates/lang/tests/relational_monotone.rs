//! Precision monotonicity of the relational layer: enabling the
//! difference-logic zone domain can only *discharge* more theorems,
//! never fail more. For random programs mixing subtractions with
//! comparison `require` chains:
//!
//! * every failure reported with the zone enabled is also reported
//!   with it disabled (zone failures ⊆ interval failures);
//! * the theorem count is identical — the zone changes proofs, not
//!   obligations;
//! * the failure gap between the two runs is exactly the number of
//!   theorems the report says were discharged relationally;
//! * the lints are unchanged except for L0006 (unsatisfiable require
//!   chains), which only the zone can produce.

use pol_lang::ast::*;
use pol_lang::diag::Diagnostic;
use pol_lang::{lint, verify};
use proptest::prelude::*;

const GLOBALS: [&str; 2] = ["g1", "g2"];
const PARAMS: [&str; 2] = ["a", "b"];

fn gname() -> impl Strategy<Value = String> {
    prop_oneof![Just(GLOBALS[0]), Just(GLOBALS[1])].prop_map(str::to_string)
}

/// Atomic uint terms: constants, globals, parameters.
fn term() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0u64..64).prop_map(Expr::UInt),
        gname().prop_map(Expr::Global),
        prop_oneof![Just(PARAMS[0]), Just(PARAMS[1])].prop_map(|p| Expr::Param(p.to_string())),
    ]
}

/// Comparisons between terms — the require/branch conditions the zone
/// turns into difference constraints.
fn cmp() -> impl Strategy<Value = Expr> {
    (term(), term(), any::<u8>()).prop_map(|(x, y, op)| {
        let op = match op % 6 {
            0 => BinOp::Lt,
            1 => BinOp::Gt,
            2 => BinOp::Le,
            3 => BinOp::Ge,
            4 => BinOp::Eq,
            _ => BinOp::Ne,
        };
        Expr::Bin(op, Box::new(x), Box::new(y))
    })
}

/// Assigned values, deliberately including subtraction — the V0102
/// obligation the zone may or may not discharge.
fn value() -> impl Strategy<Value = Expr> {
    prop_oneof![
        term(),
        (term(), term()).prop_map(|(x, y)| Expr::Bin(BinOp::Sub, Box::new(x), Box::new(y))),
        (term(), term()).prop_map(|(x, y)| Expr::Bin(BinOp::Add, Box::new(x), Box::new(y))),
    ]
}

fn assign() -> impl Strategy<Value = Stmt> {
    (gname(), value()).prop_map(|(name, value)| Stmt::GlobalSet { name, value })
}

fn stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        cmp().prop_map(Stmt::Require),
        assign(),
        (
            cmp(),
            proptest::collection::vec(assign(), 0..2),
            proptest::collection::vec(assign(), 0..2)
        )
            .prop_map(|(cond, then, otherwise)| Stmt::If { cond, then, otherwise }),
    ]
}

fn program() -> impl Strategy<Value = Program> {
    (proptest::collection::vec(stmt(), 1..6), 0u64..64).prop_map(|(body, g1_init)| Program {
        name: "mono".into(),
        creator: Participant { name: "Creator".into(), fields: vec![("seed".into(), Ty::UInt)] },
        constructor: vec![],
        globals: vec![
            GlobalDecl {
                name: GLOBALS[0].into(),
                ty: Ty::UInt,
                init: GlobalInit::Const(g1_init),
                viewable: true,
            },
            GlobalDecl {
                name: GLOBALS[1].into(),
                ty: Ty::UInt,
                init: GlobalInit::FromField("seed".into()),
                viewable: true,
            },
        ],
        maps: vec![],
        phases: vec![Phase {
            name: "p".into(),
            while_cond: Expr::Bin(BinOp::Lt, Box::new(Expr::UInt(0)), Box::new(Expr::UInt(1))),
            invariant: Expr::Bin(
                BinOp::Ge,
                Box::new(Expr::global(GLOBALS[0])),
                Box::new(Expr::UInt(0)),
            ),
            apis: vec![Api {
                name: "f".into(),
                params: vec![(PARAMS[0].into(), Ty::UInt), (PARAMS[1].into(), Ty::UInt)],
                pay: None,
                body,
                returns: Expr::global(GLOBALS[0]),
            }],
        }],
        spans: Default::default(),
    })
}

fn key(d: &Diagnostic) -> (String, String) {
    (d.code.to_string(), d.message.clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn zone_never_adds_failures(program in program()) {
        prop_assume!(pol_lang::check::check(&program).is_empty());
        let base = verify::verify_with(&program, false);
        let rel = verify::verify_with(&program, true);

        prop_assert_eq!(base.theorems_checked, rel.theorems_checked);

        let base_keys: Vec<_> = base.failures.iter().map(key).collect();
        for failure in &rel.failures {
            prop_assert!(
                base_keys.contains(&key(failure)),
                "zone introduced a failure the interval run lacked: {} — program:\n{}",
                failure,
                pol_lang::pretty::to_source(&program)
            );
        }
        prop_assert_eq!(
            base.failures.len(),
            rel.failures.len() + rel.relationally_discharged,
            "discharge count does not explain the failure gap — program:\n{}",
            pol_lang::pretty::to_source(&program)
        );

        let base_lints = lint::lint_with(&program, false);
        let rel_lints = lint::lint_with(&program, true);
        prop_assert!(base_lints.iter().all(|d| d.code != "L0006"));
        let strip = |diags: &[Diagnostic]| {
            diags.iter().filter(|d| d.code != "L0006").map(key).collect::<Vec<_>>()
        };
        prop_assert_eq!(
            strip(&base_lints),
            strip(&rel_lints),
            "zone changed a non-L0006 lint — program:\n{}",
            pol_lang::pretty::to_source(&program)
        );
    }
}
