//! Differential fuzzing of the two backends: the *blockchain-agnostic*
//! claim, tested. Random well-typed programs are compiled to both the
//! EVM and the AVM, driven with the same call sequences, and every
//! observable — acceptance, return value, final global state — must
//! agree between the machines.
//!
//! Generated programs stay inside the semantic intersection of the VMs:
//! values are kept far below 2^64 (the AVM rejects overflow where the
//! EVM wraps) and subtraction/division are excluded for the same reason.

use pol_lang::ast::*;
use pol_lang::backend::{self, AbiValue};
use pol_ledger::Address;
use proptest::prelude::*;

const GLOBALS: [&str; 2] = ["g1", "g2"];
const PARAMS: [&str; 2] = ["a", "b"];

/// Bounded UInt expressions: Add of anything, Mul only by small
/// constants, comparisons and logic — total value growth stays far below
/// u64 over a short call sequence.
fn uexpr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0u64..512).prop_map(Expr::UInt),
        prop_oneof![Just(GLOBALS[0]), Just(GLOBALS[1])].prop_map(|g| Expr::Global(g.to_string())),
        prop_oneof![Just(PARAMS[0]), Just(PARAMS[1])].prop_map(|p| Expr::Param(p.to_string())),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = uexpr(depth - 1);
    prop_oneof![
        leaf,
        (inner.clone(), inner.clone()).prop_map(|(x, y)| Expr::Bin(
            BinOp::Add,
            Box::new(x),
            Box::new(y)
        )),
        (inner, 1u64..8).prop_map(|(x, k)| Expr::Bin(
            BinOp::Mul,
            Box::new(x),
            Box::new(Expr::UInt(k))
        )),
    ]
    .boxed()
}

/// Boolean expressions over the bounded UInt ones.
fn bexpr() -> impl Strategy<Value = Expr> {
    let cmp = (uexpr(1), uexpr(1), any::<u8>()).prop_map(|(x, y, op)| {
        let op = match op % 6 {
            0 => BinOp::Lt,
            1 => BinOp::Gt,
            2 => BinOp::Le,
            3 => BinOp::Ge,
            4 => BinOp::Eq,
            _ => BinOp::Ne,
        };
        Expr::Bin(op, Box::new(x), Box::new(y))
    });
    cmp.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), any::<bool>()).prop_map(|(x, y, and)| {
                let op = if and { BinOp::And } else { BinOp::Or };
                Expr::Bin(op, Box::new(x), Box::new(y))
            }),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

fn stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (prop_oneof![Just(GLOBALS[0]), Just(GLOBALS[1])], uexpr(2))
            .prop_map(|(g, v)| { Stmt::GlobalSet { name: g.to_string(), value: v } }),
        bexpr().prop_map(Stmt::Require),
        (
            bexpr(),
            proptest::collection::vec(
                (prop_oneof![Just(GLOBALS[0]), Just(GLOBALS[1])], uexpr(1))
                    .prop_map(|(g, v)| Stmt::GlobalSet { name: g.to_string(), value: v }),
                0..2,
            ),
            proptest::collection::vec(
                (prop_oneof![Just(GLOBALS[0]), Just(GLOBALS[1])], uexpr(1))
                    .prop_map(|(g, v)| Stmt::GlobalSet { name: g.to_string(), value: v }),
                0..2,
            )
        )
            .prop_map(|(cond, then, otherwise)| Stmt::If { cond, then, otherwise }),
    ]
}

fn program() -> impl Strategy<Value = Program> {
    (proptest::collection::vec(stmt(), 1..5), uexpr(2), 0u64..256).prop_map(
        |(body, returns, g1_init)| Program {
            name: "diff".into(),
            creator: Participant {
                name: "Creator".into(),
                fields: vec![("seed".into(), Ty::UInt)],
            },
            constructor: vec![],
            globals: vec![
                GlobalDecl {
                    name: GLOBALS[0].into(),
                    ty: Ty::UInt,
                    init: GlobalInit::Const(g1_init),
                    viewable: true,
                },
                GlobalDecl {
                    name: GLOBALS[1].into(),
                    ty: Ty::UInt,
                    init: GlobalInit::FromField("seed".into()),
                    viewable: true,
                },
            ],
            maps: vec![],
            phases: vec![Phase {
                name: "p".into(),
                // Run effectively forever (bounded call sequences).
                while_cond: Expr::Bin(BinOp::Lt, Box::new(Expr::UInt(0)), Box::new(Expr::UInt(1))),
                invariant: Expr::Bin(
                    BinOp::Ge,
                    Box::new(Expr::global(GLOBALS[0])),
                    Box::new(Expr::UInt(0)),
                ),
                apis: vec![Api {
                    name: "f".into(),
                    params: vec![(PARAMS[0].into(), Ty::UInt), (PARAMS[1].into(), Ty::UInt)],
                    pay: None,
                    body,
                    returns,
                }],
            }],
            spans: Default::default(),
        },
    )
}

/// One observable step: whether the call was accepted, the returned
/// value (when accepted), and the global state afterwards.
#[derive(Debug, PartialEq, Eq)]
struct Observation {
    accepted: bool,
    returned: Option<u64>,
    globals: [u64; 2],
}

fn run_evm(program: &Program, seed: u64, calls: &[(u64, u64)]) -> Vec<Observation> {
    let compiled = backend::evm::compile_with_pad(program, 0).expect("compiles");
    let mut evm = pol_evm::Evm::new();
    let mut balances = pol_evm::interpreter::Balances::new();
    let init = compiled.init_with_args(&[AbiValue::Word(u128::from(seed))]).unwrap();
    let (addr, _) = evm.deploy(Address::ZERO, &init, 50_000_000, &mut balances).expect("deploys");
    let caller = Address([1; 20]);
    let mut out = Vec::new();
    for &(a, b) in calls {
        let data = compiled
            .encode_call("f", &[AbiValue::Word(u128::from(a)), AbiValue::Word(u128::from(b))])
            .unwrap();
        let result = evm
            .call(pol_evm::CallParams::new(caller, addr).with_data(data), &mut balances)
            .expect("no machine faults");
        let mut read_global = |name: &str| {
            let data = compiled.encode_call(&format!("view_{name}"), &[]).unwrap();
            let view = evm
                .call(pol_evm::CallParams::new(caller, addr).with_data(data), &mut balances)
                .expect("views execute");
            pol_evm::Word::from_be_slice(&view.output).as_u64()
        };
        let globals = [read_global(GLOBALS[0]), read_global(GLOBALS[1])];
        out.push(Observation {
            accepted: result.success,
            returned: result.success.then(|| pol_evm::Word::from_be_slice(&result.output).as_u64()),
            globals,
        });
    }
    out
}

fn run_avm(program: &Program, seed: u64, calls: &[(u64, u64)]) -> Vec<Observation> {
    let compiled = backend::avm::compile(program).expect("compiles");
    let mut avm = pol_avm::Avm::new();
    let mut balances = pol_avm::interpreter::Balances::new();
    let args = compiled.encode_create_args(&[AbiValue::Word(u128::from(seed))]).unwrap();
    let app = avm
        .create_app_with_args(Address::ZERO, compiled.program.clone(), args, &mut balances)
        .expect("creates");
    let caller = Address([1; 20]);
    let mut out = Vec::new();
    for &(a, b) in calls {
        let args = compiled
            .encode_call("f", &[AbiValue::Word(u128::from(a)), AbiValue::Word(u128::from(b))])
            .unwrap();
        let result = avm
            .call(pol_avm::AppCallParams::new(caller, app).with_args(args), &mut balances)
            .expect("no machine faults");
        let read_global = |name: &str| match avm.global(app, name.as_bytes()) {
            Some(pol_avm::TealValue::Uint(v)) => v,
            _ => 0,
        };
        let returned = result.approved.then(|| {
            let log = result.logs.last().expect("return value logged");
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(log);
            u64::from_be_bytes(bytes)
        });
        out.push(Observation {
            accepted: result.approved,
            returned,
            globals: [read_global(GLOBALS[0]), read_global(GLOBALS[1])],
        });
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The same program, the same calls, two virtual machines: identical
    /// observations.
    #[test]
    fn backends_agree(
        program in program(),
        seed in 0u64..256,
        calls in proptest::collection::vec((0u64..512, 0u64..512), 1..6),
    ) {
        // Only well-typed programs reach the backends.
        prop_assume!(pol_lang::check::check(&program).is_empty());
        let evm_trace = run_evm(&program, seed, &calls);
        let avm_trace = run_avm(&program, seed, &calls);
        prop_assert_eq!(
            evm_trace,
            avm_trace,
            "program:\n{}",
            pol_lang::pretty::to_source(&program)
        );
    }
}
