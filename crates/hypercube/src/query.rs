//! Keyword-set queries over the hypercube (after Joung et al.).
//!
//! Beyond single-key lookups, the hypercube supports *complex queries*: a
//! query bit-vector `q` matches every node whose ID is a superset of `q`'s
//! bits. **Pin search** locates the unique "pin" node (the match with the
//! fewest extra bits — `q` itself), while **superset search** walks the
//! spanning binomial tree rooted at the pin to enumerate all matching
//! nodes, the operation the paper's DApp uses to gather reports over a
//! region of nearby areas.

use crate::content::LocationRecord;
use crate::network::Hypercube;
use pol_geo::RBitKey;

/// Result of a superset search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// Node keys visited, in traversal order.
    pub visited: Vec<RBitKey>,
    /// Messages exchanged (tree edges traversed).
    pub messages: u64,
    /// Records found on the visited nodes.
    pub records: Vec<LocationRecord>,
}

/// Enumerates all node IDs that are bit-supersets of `query`, visiting each
/// exactly once via the spanning binomial tree rooted at `query` itself.
///
/// The tree rule: from node `n`, recurse into `n | (1 << d)` for every
/// dimension `d` strictly above the highest bit in which `n` differs from
/// `query` — this partitions the superset lattice so no node is visited
/// twice.
pub fn superset_keys(query: RBitKey) -> Vec<RBitKey> {
    let r = query.dimensions();
    let mut out = Vec::new();
    // (node bits, minimum dimension allowed to be added next)
    let mut stack = vec![(query.bits(), 0u8)];
    while let Some((bits, min_dim)) = stack.pop() {
        out.push(RBitKey::from_bits(bits, r));
        for d in min_dim..r {
            if (bits >> d) & 1 == 0 {
                stack.push((bits | (1 << d), d + 1));
            }
        }
    }
    out
}

/// Runs a superset search on `dht`, gathering the records stored on every
/// matching node. `limit` bounds the number of nodes visited (the paper's
/// "maximum number of hops permitted" for complex queries).
pub fn superset_search(dht: &Hypercube, query: RBitKey, limit: usize) -> QueryResult {
    let keys = superset_keys(query);
    let mut visited = Vec::new();
    let mut records = Vec::new();
    let mut messages = 0u64;
    for key in keys.into_iter().take(limit) {
        messages += 1;
        if !dht.is_online(key) {
            continue;
        }
        visited.push(key);
        records.extend(dht.records_at(key));
    }
    QueryResult { visited, messages, records }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pol_geo::{olc, Coordinates, OlcCode};

    #[test]
    fn superset_count_is_power_of_two() {
        // A query with k zero bits has 2^k supersets.
        let q = RBitKey::from_bits(0b1010, 4);
        let keys = superset_keys(q);
        assert_eq!(keys.len(), 4); // two zero bits -> 4 supersets
        for k in &keys {
            assert_eq!(k.bits() & q.bits(), q.bits(), "{k} must contain query bits");
        }
    }

    #[test]
    fn supersets_are_unique() {
        let q = RBitKey::from_bits(0b0001, 6);
        let keys = superset_keys(q);
        let mut dedup = keys.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(keys.len(), dedup.len());
        assert_eq!(keys.len(), 1 << 5);
    }

    #[test]
    fn full_query_only_matches_itself() {
        let q = RBitKey::from_bits(0b1111, 4);
        assert_eq!(superset_keys(q), vec![q]);
    }

    #[test]
    fn search_collects_records() {
        let dht = Hypercube::new(6);
        let code: OlcCode = olc::encode(Coordinates::new(44.4949, 11.3426).unwrap(), 10).unwrap();
        dht.register_contract(&code, "app:5").unwrap();
        // Query with zero bits matches every node, so it must find the record.
        let q = RBitKey::from_bits(0, 6);
        let res = superset_search(&dht, q, 1 << 6);
        assert_eq!(res.records.len(), 1);
        assert_eq!(res.records[0].contract_id, "app:5");
        assert_eq!(res.messages, 64);
    }

    #[test]
    fn limit_caps_messages() {
        let dht = Hypercube::new(6);
        let q = RBitKey::from_bits(0, 6);
        let res = superset_search(&dht, q, 10);
        assert_eq!(res.messages, 10);
        assert!(res.visited.len() <= 10);
    }

    #[test]
    fn offline_nodes_skipped() {
        let dht = Hypercube::new(4);
        let dead = RBitKey::from_bits(0b0011, 4);
        dht.fail_node(dead);
        let res = superset_search(&dht, RBitKey::from_bits(0b0011, 4), 16);
        assert!(!res.visited.contains(&dead));
    }
}
