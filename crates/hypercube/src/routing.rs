//! Greedy Hamming routing across the hypercube.
//!
//! From any node, a message for target `t` is forwarded to the neighbour
//! that differs from the current node in the lowest set bit of
//! `current XOR t` — each hop reduces the Hamming distance by one, so any
//! lookup completes within `r` hops (the property the paper credits for the
//! hypercube's lookup speed versus a flat DHT).

use pol_geo::RBitKey;

/// Why a route could not be completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutingError {
    /// The hop budget was exhausted before reaching the target.
    HopLimitExceeded {
        /// The hop budget that was in force.
        limit: u32,
    },
    /// A node on the only remaining path is offline.
    NodeOffline(u64),
    /// Source or target key has the wrong dimensionality for this network.
    DimensionMismatch {
        /// Dimensionality of the network.
        expected: u8,
        /// Dimensionality of the supplied key.
        got: u8,
    },
    /// The transport gave up on a hop after exhausting its retry policy:
    /// the next node is *unreachable* (loss, partition or churn), which is
    /// a different failure from [`RoutingError::HopLimitExceeded`]'s "the
    /// target is too far within the budget".
    Timeout {
        /// The node the hop was addressed to.
        node: u64,
        /// Delivery attempts made before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for RoutingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoutingError::HopLimitExceeded { limit } => {
                write!(f, "hop limit {limit} exceeded")
            }
            RoutingError::NodeOffline(id) => write!(f, "node {id} is offline"),
            RoutingError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: network is {expected}-d, key is {got}-d")
            }
            RoutingError::Timeout { node, attempts } => {
                write!(f, "hop to node {node} timed out after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for RoutingError {}

/// A completed route through the hypercube.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Visited node keys, source first, target last.
    pub path: Vec<RBitKey>,
}

impl Route {
    /// Number of hops (edges traversed).
    pub fn hops(&self) -> u32 {
        (self.path.len().saturating_sub(1)) as u32
    }

    /// The target node reached.
    pub fn target(&self) -> RBitKey {
        *self.path.last().expect("routes are never empty")
    }
}

/// Computes the greedy route from `source` to `target`, skipping nodes for
/// which `online` returns `false` by detouring through a random-ish
/// alternative dimension.
///
/// # Errors
///
/// Returns [`RoutingError::HopLimitExceeded`] when `max_hops` is exhausted
/// and [`RoutingError::NodeOffline`] when the target itself is offline.
pub fn route(
    source: RBitKey,
    target: RBitKey,
    max_hops: u32,
    online: impl Fn(RBitKey) -> bool,
) -> Result<Route, RoutingError> {
    if source.dimensions() != target.dimensions() {
        return Err(RoutingError::DimensionMismatch {
            expected: source.dimensions(),
            got: target.dimensions(),
        });
    }
    if !online(target) {
        return Err(RoutingError::NodeOffline(target.index()));
    }
    let mut path = vec![source];
    let mut current = source;
    let mut hops = 0u32;
    while current != target {
        if hops >= max_hops {
            return Err(RoutingError::HopLimitExceeded { limit: max_hops });
        }
        let diff = current.bits() ^ target.bits();
        // Prefer the lowest differing dimension whose neighbour is online.
        let mut next = None;
        for dim in 0..current.dimensions() {
            if (diff >> dim) & 1 == 1 {
                let candidate = current.flip(dim);
                if online(candidate) {
                    next = Some(candidate);
                    break;
                }
            }
        }
        // All direct progress blocked: detour through any online neighbour
        // not yet visited.
        let next = match next {
            Some(n) => n,
            None => current
                .neighbors()
                .find(|n| online(*n) && !path.contains(n))
                .ok_or(RoutingError::NodeOffline(target.index()))?,
        };
        path.push(next);
        current = next;
        hops += 1;
    }
    Ok(Route { path })
}

/// Baseline for the ablation bench: a random walk that only moves along
/// dimensions chosen round-robin, ignoring Hamming progress.
pub fn random_walk_route(
    source: RBitKey,
    target: RBitKey,
    max_hops: u32,
) -> Result<Route, RoutingError> {
    let mut path = vec![source];
    let mut current = source;
    let mut hops = 0u32;
    let mut dim = 0u8;
    while current != target {
        if hops >= max_hops {
            return Err(RoutingError::HopLimitExceeded { limit: max_hops });
        }
        // Deterministic pseudo-random dimension from position and hop count.
        dim =
            ((u32::from(dim) + current.bits() + hops + 1) % u32::from(current.dimensions())) as u8;
        current = current.flip(dim);
        path.push(current);
        hops += 1;
    }
    Ok(Route { path })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(bits: u32, r: u8) -> RBitKey {
        RBitKey::from_bits(bits, r)
    }

    #[test]
    fn route_within_r_hops() {
        let r = 8;
        for s in [0u32, 1, 77, 200, 255] {
            for t in [0u32, 3, 128, 255] {
                let route = route(key(s, r), key(t, r), u32::from(r), |_| true).unwrap();
                assert!(route.hops() <= u32::from(r));
                assert_eq!(route.hops(), (s ^ t).count_ones());
                assert_eq!(route.target(), key(t, r));
            }
        }
    }

    #[test]
    fn hop_limit_enforced() {
        let e = route(key(0, 8), key(0xff, 8), 3, |_| true).unwrap_err();
        assert_eq!(e, RoutingError::HopLimitExceeded { limit: 3 });
    }

    #[test]
    fn offline_target_detected() {
        let target = key(5, 4);
        let e = route(key(0, 4), target, 8, |k| k != target).unwrap_err();
        assert_eq!(e, RoutingError::NodeOffline(5));
    }

    #[test]
    fn detours_around_offline_intermediate() {
        // Route 0000 -> 0011; both direct next hops (0001 and 0010) online,
        // but make 0001 offline so the router must pick 0010.
        let blocked = key(0b0001, 4);
        let r = route(key(0, 4), key(0b0011, 4), 8, |k| k != blocked).unwrap();
        assert!(!r.path.contains(&blocked));
        assert_eq!(r.target(), key(0b0011, 4));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let e = route(key(0, 4), key(0, 5), 8, |_| true).unwrap_err();
        assert!(matches!(e, RoutingError::DimensionMismatch { .. }));
    }

    #[test]
    fn random_walk_usually_longer() {
        let greedy = route(key(0, 6), key(0b111111, 6), 6, |_| true).unwrap();
        let walk = random_walk_route(key(0, 6), key(0b111111, 6), 10_000).unwrap();
        assert!(walk.hops() >= greedy.hops());
    }

    #[test]
    fn zero_hop_route_to_self() {
        let r = route(key(9, 5), key(9, 5), 0, |_| true).unwrap();
        assert_eq!(r.hops(), 0);
        assert_eq!(r.path.len(), 1);
    }
}
