//! The in-memory hypercube network: 2^r logical nodes with content storage,
//! routing statistics and churn.

use crate::content::LocationRecord;
use crate::routing::{self, Route, RoutingError};
use parking_lot::RwLock;
use pol_geo::{rbit, OlcCode, RBitKey};
use pol_net::transport::{DirectTransport, Transport, TransportError};
use pol_net::{MessageClass, NodeId};
use std::collections::HashMap;

/// Number of fixed hop-count buckets in [`NetworkStats`]: hop counts
/// `0..=31` each get a bucket, anything larger lands in the last one
/// (greedy routing never exceeds `r ≤ 20` hops while all nodes are
/// online, so the clamp bucket only fills under heavy detouring).
pub const HOP_BUCKETS: usize = 33;

/// Aggregate statistics over all lookups performed on the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkStats {
    /// Total lookups routed.
    pub lookups: u64,
    /// Total hops across all lookups.
    pub total_hops: u64,
    /// Worst single-lookup hop count observed.
    pub max_hops: u32,
    /// Fixed-bucket histogram of per-lookup hop counts: bucket `h` counts
    /// lookups that took exactly `h` hops (last bucket clamps).
    pub hop_histogram: [u64; HOP_BUCKETS],
}

impl Default for NetworkStats {
    fn default() -> NetworkStats {
        NetworkStats { lookups: 0, total_hops: 0, max_hops: 0, hop_histogram: [0; HOP_BUCKETS] }
    }
}

impl NetworkStats {
    /// Average hops per lookup.
    pub fn mean_hops(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.lookups as f64
        }
    }

    fn record(&mut self, hops: u32) {
        self.lookups += 1;
        self.total_hops += u64::from(hops);
        self.max_hops = self.max_hops.max(hops);
        self.hop_histogram[(hops as usize).min(HOP_BUCKETS - 1)] += 1;
    }

    /// The hop count at quantile `q` (`0 < q ≤ 1`), from the histogram.
    /// Returns 0 when no lookups were recorded.
    pub fn quantile_hops(&self, q: f64) -> u32 {
        if self.lookups == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.lookups as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (hops, &n) in self.hop_histogram.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return hops as u32;
            }
        }
        self.max_hops
    }

    /// Median hop count.
    pub fn p50_hops(&self) -> u32 {
        self.quantile_hops(0.50)
    }

    /// 99th-percentile hop count.
    pub fn p99_hops(&self) -> u32 {
        self.quantile_hops(0.99)
    }
}

struct NodeState {
    online: bool,
    records: HashMap<String, LocationRecord>,
}

/// An r-dimensional hypercube DHT.
///
/// The structure is shared-friendly: all operations take `&self`, so an
/// `Arc<Hypercube>` can be handed to every actor in a simulation.
pub struct Hypercube {
    r: u8,
    nodes: Vec<RwLock<NodeState>>,
    stats: RwLock<NetworkStats>,
    /// Offline node → delegate serving its keys after a graceful leave.
    delegations: RwLock<HashMap<u64, RBitKey>>,
    /// Hop budget for lookups; defaults to `r` (always sufficient when all
    /// nodes are online).
    max_hops: u32,
}

impl std::fmt::Debug for Hypercube {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hypercube").field("r", &self.r).field("nodes", &self.nodes.len()).finish()
    }
}

impl Hypercube {
    /// Creates a hypercube with `2^r` online nodes.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero or greater than 20 (over a million nodes is
    /// beyond any sensible simulation).
    pub fn new(r: u8) -> Hypercube {
        assert!((1..=20).contains(&r), "r must be in 1..=20");
        let nodes = (0..(1usize << r))
            .map(|_| RwLock::new(NodeState { online: true, records: HashMap::new() }))
            .collect();
        Hypercube {
            r,
            nodes,
            stats: RwLock::new(NetworkStats::default()),
            delegations: RwLock::new(HashMap::new()),
            max_hops: u32::from(r) * 4,
        }
    }

    /// The dimensionality `r`.
    pub fn dimensions(&self) -> u8 {
        self.r
    }

    /// Number of logical nodes (`2^r`).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes (never true — kept for the
    /// conventional `len`/`is_empty` pair).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The key (node ID) responsible for an Open Location Code.
    pub fn key_for(&self, code: &OlcCode) -> RBitKey {
        rbit::encode(code, self.r)
    }

    /// Routes a lookup for `code` from node 0, recording statistics.
    ///
    /// Equivalent to [`Hypercube::lookup_via`] over a zero-latency
    /// [`DirectTransport`].
    ///
    /// # Errors
    ///
    /// Propagates [`RoutingError`] from the underlying greedy router.
    pub fn lookup(&self, code: &OlcCode) -> Result<Route, RoutingError> {
        self.lookup_via(&DirectTransport, code)
    }

    /// Routes a lookup for `code` from node 0, charging every hop to
    /// `transport` and recording statistics on success.
    ///
    /// # Errors
    ///
    /// Propagates [`RoutingError`] from the greedy router, and returns
    /// [`RoutingError::Timeout`] when the transport exhausts its retries
    /// on any hop of the route.
    pub fn lookup_via(
        &self,
        transport: &dyn Transport,
        code: &OlcCode,
    ) -> Result<Route, RoutingError> {
        let source = RBitKey::from_bits(0, self.r);
        // A gracefully departed node's keys are served by its delegate.
        let target = self.responsible_node(self.key_for(code));
        let route = routing::route(source, target, self.max_hops, |k| self.is_online(k))?;
        self.charge_route(transport, &route, MessageClass::DhtLookup)?;
        self.stats.write().record(route.hops());
        Ok(route)
    }

    /// Delivers one message per edge of `route` through `transport`.
    fn charge_route(
        &self,
        transport: &dyn Transport,
        route: &Route,
        class: MessageClass,
    ) -> Result<(), RoutingError> {
        for pair in route.path.windows(2) {
            transport.deliver(NodeId(pair[0].index()), NodeId(pair[1].index()), class).map_err(
                |TransportError::Timeout { to, attempts, .. }| RoutingError::Timeout {
                    node: to.0,
                    attempts,
                },
            )?;
        }
        Ok(())
    }

    /// Looks up the contract registered for an area, if any.
    ///
    /// # Errors
    ///
    /// Propagates routing failures (offline nodes, hop budget).
    pub fn find_contract(&self, code: &OlcCode) -> Result<Option<String>, RoutingError> {
        self.find_contract_via(&DirectTransport, code)
    }

    /// [`Hypercube::find_contract`] with every hop charged to `transport`.
    ///
    /// # Errors
    ///
    /// Propagates routing failures, including transport timeouts.
    pub fn find_contract_via(
        &self,
        transport: &dyn Transport,
        code: &OlcCode,
    ) -> Result<Option<String>, RoutingError> {
        let route = self.lookup_via(transport, code)?;
        let node = &self.nodes[route.target().index() as usize];
        Ok(node.read().records.get(code.as_str()).map(|r| r.contract_id.clone()))
    }

    /// Registers the contract deployed for an area. Returns `false` (and
    /// leaves the existing record in place) if one was already registered —
    /// first writer wins, as in the paper's deploy-then-insert flow.
    ///
    /// # Errors
    ///
    /// Propagates routing failures.
    pub fn register_contract(
        &self,
        code: &OlcCode,
        contract_id: impl Into<String>,
    ) -> Result<bool, RoutingError> {
        self.register_contract_via(&DirectTransport, code, contract_id)
    }

    /// [`Hypercube::register_contract`] with the store routed through
    /// `transport` (one [`MessageClass::DhtStore`] exchange per hop).
    ///
    /// # Errors
    ///
    /// Propagates routing failures, including transport timeouts.
    pub fn register_contract_via(
        &self,
        transport: &dyn Transport,
        code: &OlcCode,
        contract_id: impl Into<String>,
    ) -> Result<bool, RoutingError> {
        let route = self.route_store(transport, code)?;
        let node = &self.nodes[route.target().index() as usize];
        let mut state = node.write();
        if state.records.contains_key(code.as_str()) {
            return Ok(false);
        }
        state
            .records
            .insert(code.as_str().to_string(), LocationRecord::new(contract_id, code.as_str()));
        Ok(true)
    }

    /// Appends a verified report CID to an area's record ("garbage-in" —
    /// callers are expected to be verifiers).
    ///
    /// Returns `false` if no contract is registered for the area or the CID
    /// was already present.
    ///
    /// # Errors
    ///
    /// Propagates routing failures.
    pub fn append_cid(&self, code: &OlcCode, cid: impl Into<String>) -> Result<bool, RoutingError> {
        self.append_cid_via(&DirectTransport, code, cid)
    }

    /// [`Hypercube::append_cid`] with the store routed through `transport`.
    ///
    /// # Errors
    ///
    /// Propagates routing failures, including transport timeouts.
    pub fn append_cid_via(
        &self,
        transport: &dyn Transport,
        code: &OlcCode,
        cid: impl Into<String>,
    ) -> Result<bool, RoutingError> {
        let route = self.route_store(transport, code)?;
        let node = &self.nodes[route.target().index() as usize];
        let mut state = node.write();
        match state.records.get_mut(code.as_str()) {
            Some(rec) => Ok(rec.push_cid(cid)),
            None => Ok(false),
        }
    }

    /// Routes a store operation: same path as a lookup, but hops are
    /// charged as [`MessageClass::DhtStore`].
    fn route_store(
        &self,
        transport: &dyn Transport,
        code: &OlcCode,
    ) -> Result<Route, RoutingError> {
        let source = RBitKey::from_bits(0, self.r);
        let target = self.responsible_node(self.key_for(code));
        let route = routing::route(source, target, self.max_hops, |k| self.is_online(k))?;
        self.charge_route(transport, &route, MessageClass::DhtStore)?;
        self.stats.write().record(route.hops());
        Ok(route)
    }

    /// Returns a copy of the record for an area, if present.
    ///
    /// # Errors
    ///
    /// Propagates routing failures.
    pub fn record(&self, code: &OlcCode) -> Result<Option<LocationRecord>, RoutingError> {
        self.record_via(&DirectTransport, code)
    }

    /// [`Hypercube::record`] with every hop charged to `transport`.
    ///
    /// # Errors
    ///
    /// Propagates routing failures, including transport timeouts.
    pub fn record_via(
        &self,
        transport: &dyn Transport,
        code: &OlcCode,
    ) -> Result<Option<LocationRecord>, RoutingError> {
        let route = self.lookup_via(transport, code)?;
        let node = &self.nodes[route.target().index() as usize];
        Ok(node.read().records.get(code.as_str()).cloned())
    }

    /// Takes a node offline (simulated churn). Content is retained and
    /// becomes reachable again after [`Hypercube::rejoin`].
    pub fn fail_node(&self, key: RBitKey) {
        self.nodes[key.index() as usize].write().online = false;
    }

    /// Gracefully removes a node: its records are handed over to its
    /// nearest online neighbour before it goes offline, and a delegation
    /// pointer is left so lookups keyed to this node are served by the
    /// delegate (the leave protocol of a structured overlay).
    ///
    /// Returns the delegate's key, or `None` when the node had no online
    /// neighbour to hand over to (it then leaves ungracefully).
    pub fn leave_gracefully(&self, key: RBitKey) -> Option<RBitKey> {
        let delegate = key.neighbors().find(|n| self.is_online(*n));
        let records: Vec<(String, LocationRecord)> = {
            let mut state = self.nodes[key.index() as usize].write();
            state.online = false;
            state.records.drain().collect()
        };
        match delegate {
            Some(delegate) => {
                let mut target = self.nodes[delegate.index() as usize].write();
                for (olc, record) in records {
                    target.records.insert(olc, record);
                }
                self.delegations.write().insert(key.index(), delegate);
                Some(delegate)
            }
            None => {
                // No online neighbour: records are stranded back on the
                // (offline) node, as an ungraceful failure would leave
                // them.
                let mut state = self.nodes[key.index() as usize].write();
                for (olc, record) in records {
                    state.records.insert(olc, record);
                }
                None
            }
        }
    }

    /// Brings a node back online. If it had delegated its records on a
    /// graceful leave, they are reclaimed from the delegate.
    pub fn rejoin(&self, key: RBitKey) {
        if let Some(delegate) = self.delegations.write().remove(&key.index()) {
            // Reclaim only the records this node is responsible for.
            let mut reclaimed = Vec::new();
            {
                let mut source = self.nodes[delegate.index() as usize].write();
                let keys: Vec<String> = source
                    .records
                    .iter()
                    .filter(|(olc, _)| {
                        olc.parse::<OlcCode>()
                            .map(|code| self.key_for(&code) == key)
                            .unwrap_or(false)
                    })
                    .map(|(olc, _)| olc.clone())
                    .collect();
                for k in keys {
                    if let Some(record) = source.records.remove(&k) {
                        reclaimed.push((k, record));
                    }
                }
            }
            let mut state = self.nodes[key.index() as usize].write();
            for (olc, record) in reclaimed {
                state.records.insert(olc, record);
            }
            state.online = true;
            return;
        }
        self.nodes[key.index() as usize].write().online = true;
    }

    /// Where lookups for `node` are currently served: the node itself, or
    /// its delegate after a graceful leave.
    pub fn responsible_node(&self, node: RBitKey) -> RBitKey {
        self.delegations.read().get(&node.index()).copied().unwrap_or(node)
    }

    /// Whether a node is online.
    pub fn is_online(&self, key: RBitKey) -> bool {
        self.nodes[key.index() as usize].read().online
    }

    /// Snapshot of routing statistics.
    pub fn stats(&self) -> NetworkStats {
        self.stats.read().clone()
    }

    /// Total number of records stored across all nodes.
    pub fn record_count(&self) -> usize {
        self.nodes.iter().map(|n| n.read().records.len()).sum()
    }

    /// Records stored at one node (cloned), for complex queries.
    pub fn records_at(&self, key: RBitKey) -> Vec<LocationRecord> {
        self.nodes[key.index() as usize].read().records.values().cloned().collect()
    }

    /// Iterates over every stored record (cloned), for queries and display.
    pub fn all_records(&self) -> Vec<LocationRecord> {
        let mut out = Vec::new();
        for node in &self.nodes {
            out.extend(node.read().records.values().cloned());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pol_geo::{olc, Coordinates};

    fn code(lat: f64, lon: f64) -> OlcCode {
        olc::encode(Coordinates::new(lat, lon).unwrap(), 10).unwrap()
    }

    #[test]
    fn register_then_find() {
        let dht = Hypercube::new(6);
        let c = code(44.4949, 11.3426);
        assert_eq!(dht.find_contract(&c).unwrap(), None);
        assert!(dht.register_contract(&c, "evm:0xabc").unwrap());
        assert_eq!(dht.find_contract(&c).unwrap().as_deref(), Some("evm:0xabc"));
    }

    #[test]
    fn first_registration_wins() {
        let dht = Hypercube::new(6);
        let c = code(44.4949, 11.3426);
        assert!(dht.register_contract(&c, "app:1").unwrap());
        assert!(!dht.register_contract(&c, "app:2").unwrap());
        assert_eq!(dht.find_contract(&c).unwrap().as_deref(), Some("app:1"));
    }

    #[test]
    fn append_cid_requires_registration() {
        let dht = Hypercube::new(6);
        let c = code(41.9, 12.5);
        assert!(!dht.append_cid(&c, "bafy1").unwrap());
        dht.register_contract(&c, "app:3").unwrap();
        assert!(dht.append_cid(&c, "bafy1").unwrap());
        assert!(!dht.append_cid(&c, "bafy1").unwrap());
        assert_eq!(dht.record(&c).unwrap().unwrap().cids, vec!["bafy1"]);
    }

    #[test]
    fn stats_accumulate_and_bound() {
        let dht = Hypercube::new(8);
        for i in 0..20 {
            let c = code(40.0 + f64::from(i) * 0.3, 9.0 + f64::from(i) * 0.17);
            let _ = dht.lookup(&c).unwrap();
        }
        let stats = dht.stats();
        assert_eq!(stats.lookups, 20);
        assert!(stats.max_hops <= 8);
        assert!(stats.mean_hops() <= 8.0);
    }

    #[test]
    fn churn_blocks_then_recovers() {
        let dht = Hypercube::new(5);
        let c = code(44.4949, 11.3426);
        dht.register_contract(&c, "app:9").unwrap();
        let key = dht.key_for(&c);
        dht.fail_node(key);
        assert!(matches!(dht.find_contract(&c), Err(RoutingError::NodeOffline(_))));
        dht.rejoin(key);
        assert_eq!(dht.find_contract(&c).unwrap().as_deref(), Some("app:9"));
    }

    #[test]
    fn distinct_areas_distinct_records() {
        let dht = Hypercube::new(10);
        let a = code(44.4949, 11.3426);
        let b = code(45.4642, 9.1900);
        dht.register_contract(&a, "app:1").unwrap();
        dht.register_contract(&b, "app:2").unwrap();
        assert_eq!(dht.record_count(), 2);
        assert_eq!(dht.find_contract(&a).unwrap().as_deref(), Some("app:1"));
        assert_eq!(dht.find_contract(&b).unwrap().as_deref(), Some("app:2"));
    }

    #[test]
    #[should_panic(expected = "r must be")]
    fn rejects_zero_dimensions() {
        let _ = Hypercube::new(0);
    }

    #[test]
    fn graceful_leave_hands_records_to_delegate() {
        let dht = Hypercube::new(5);
        let c = code(44.4949, 11.3426);
        dht.register_contract(&c, "app:1").unwrap();
        let key = dht.key_for(&c);
        let delegate = dht.leave_gracefully(key).expect("a neighbour is online");
        assert_ne!(delegate, key);
        assert!(!dht.is_online(key));
        // Lookups keep working through the delegate.
        assert_eq!(dht.find_contract(&c).unwrap().as_deref(), Some("app:1"));
        assert_eq!(dht.responsible_node(key), delegate);
        // The verifier can still append.
        assert!(dht.append_cid(&c, "bafyZ").unwrap());
    }

    #[test]
    fn rejoin_reclaims_delegated_records() {
        let dht = Hypercube::new(5);
        let c = code(44.4949, 11.3426);
        dht.register_contract(&c, "app:2").unwrap();
        let key = dht.key_for(&c);
        let delegate = dht.leave_gracefully(key).unwrap();
        dht.rejoin(key);
        assert_eq!(dht.responsible_node(key), key);
        assert_eq!(dht.find_contract(&c).unwrap().as_deref(), Some("app:2"));
        // The delegate no longer holds this node's record.
        assert!(dht.records_at(delegate).iter().all(|r| r.olc != c.as_str()));
        assert!(!dht.records_at(key).is_empty());
    }

    #[test]
    fn ungraceful_failure_still_blocks() {
        let dht = Hypercube::new(5);
        let c = code(44.4949, 11.3426);
        dht.register_contract(&c, "app:3").unwrap();
        let key = dht.key_for(&c);
        dht.fail_node(key); // crash, no handover
        assert!(dht.find_contract(&c).is_err());
    }

    #[test]
    fn hop_histogram_tracks_quantiles() {
        let dht = Hypercube::new(8);
        for i in 0..40 {
            let c = code(35.0 + f64::from(i) * 0.41, -3.0 + f64::from(i) * 0.73);
            let _ = dht.lookup(&c).unwrap();
        }
        let stats = dht.stats();
        assert_eq!(stats.hop_histogram.iter().sum::<u64>(), stats.lookups);
        assert!(stats.p50_hops() <= stats.p99_hops());
        assert!(stats.p99_hops() <= stats.max_hops);
        assert!(u64::from(stats.p50_hops()) <= stats.total_hops);
    }

    #[test]
    fn quantiles_on_empty_stats_are_zero() {
        let stats = NetworkStats::default();
        assert_eq!(stats.p50_hops(), 0);
        assert_eq!(stats.p99_hops(), 0);
    }

    #[test]
    fn lossy_transport_surfaces_typed_timeout() {
        use pol_net::link::LinkModel;
        use pol_net::retry::RetryPolicy;
        use pol_net::transport::SimTransport;

        let dht = Hypercube::new(6);
        let c = code(44.4949, 11.3426);
        dht.register_contract(&c, "app:1").unwrap();
        let transport = SimTransport::builder(11)
            .link(LinkModel::ideal().with_drop_prob(1.0))
            .retry(RetryPolicy { max_attempts: 2, ..RetryPolicy::default() })
            .build();
        match dht.find_contract_via(&transport, &c) {
            Err(RoutingError::Timeout { attempts, .. }) => assert_eq!(attempts, 2),
            other => panic!("expected a transport timeout, got {other:?}"),
        }
        // The same lookup through the default transport still succeeds:
        // the DHT itself is healthy, only the faulty network was in the way.
        assert_eq!(dht.find_contract(&c).unwrap().as_deref(), Some("app:1"));
    }

    #[test]
    fn reliable_sim_transport_matches_direct_results() {
        use pol_net::transport::SimTransport;

        let direct = Hypercube::new(6);
        let simulated = Hypercube::new(6);
        let transport = SimTransport::builder(5).build();
        for i in 0..10 {
            let c = code(40.0 + f64::from(i) * 0.29, 9.0 + f64::from(i) * 0.31);
            assert!(direct.register_contract(&c, format!("app:{i}")).unwrap());
            assert!(simulated.register_contract_via(&transport, &c, format!("app:{i}")).unwrap());
            assert_eq!(
                direct.find_contract(&c).unwrap(),
                simulated.find_contract_via(&transport, &c).unwrap()
            );
        }
        assert_eq!(direct.stats(), simulated.stats());
        assert!(transport.stats().total_delivered() > 0);
    }
}
