//! The in-memory hypercube network: 2^r logical nodes with content storage,
//! routing statistics and churn.

use crate::content::LocationRecord;
use crate::routing::{self, Route, RoutingError};
use parking_lot::RwLock;
use pol_geo::{rbit, OlcCode, RBitKey};
use std::collections::HashMap;

/// Aggregate statistics over all lookups performed on the network.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Total lookups routed.
    pub lookups: u64,
    /// Total hops across all lookups.
    pub total_hops: u64,
    /// Worst single-lookup hop count observed.
    pub max_hops: u32,
}

impl NetworkStats {
    /// Average hops per lookup.
    pub fn mean_hops(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.lookups as f64
        }
    }
}

struct NodeState {
    online: bool,
    records: HashMap<String, LocationRecord>,
}

/// An r-dimensional hypercube DHT.
///
/// The structure is shared-friendly: all operations take `&self`, so an
/// `Arc<Hypercube>` can be handed to every actor in a simulation.
pub struct Hypercube {
    r: u8,
    nodes: Vec<RwLock<NodeState>>,
    stats: RwLock<NetworkStats>,
    /// Offline node → delegate serving its keys after a graceful leave.
    delegations: RwLock<HashMap<u64, RBitKey>>,
    /// Hop budget for lookups; defaults to `r` (always sufficient when all
    /// nodes are online).
    max_hops: u32,
}

impl std::fmt::Debug for Hypercube {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hypercube")
            .field("r", &self.r)
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl Hypercube {
    /// Creates a hypercube with `2^r` online nodes.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero or greater than 20 (over a million nodes is
    /// beyond any sensible simulation).
    pub fn new(r: u8) -> Hypercube {
        assert!((1..=20).contains(&r), "r must be in 1..=20");
        let nodes = (0..(1usize << r))
            .map(|_| RwLock::new(NodeState { online: true, records: HashMap::new() }))
            .collect();
        Hypercube {
            r,
            nodes,
            stats: RwLock::new(NetworkStats::default()),
            delegations: RwLock::new(HashMap::new()),
            max_hops: u32::from(r) * 4,
        }
    }

    /// The dimensionality `r`.
    pub fn dimensions(&self) -> u8 {
        self.r
    }

    /// Number of logical nodes (`2^r`).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes (never true — kept for the
    /// conventional `len`/`is_empty` pair).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The key (node ID) responsible for an Open Location Code.
    pub fn key_for(&self, code: &OlcCode) -> RBitKey {
        rbit::encode(code, self.r)
    }

    /// Routes a lookup for `code` from node 0, recording statistics.
    ///
    /// # Errors
    ///
    /// Propagates [`RoutingError`] from the underlying greedy router.
    pub fn lookup(&self, code: &OlcCode) -> Result<Route, RoutingError> {
        let source = RBitKey::from_bits(0, self.r);
        // A gracefully departed node's keys are served by its delegate.
        let target = self.responsible_node(self.key_for(code));
        let route = routing::route(source, target, self.max_hops, |k| self.is_online(k))?;
        let mut stats = self.stats.write();
        stats.lookups += 1;
        stats.total_hops += u64::from(route.hops());
        stats.max_hops = stats.max_hops.max(route.hops());
        Ok(route)
    }

    /// Looks up the contract registered for an area, if any.
    ///
    /// # Errors
    ///
    /// Propagates routing failures (offline nodes, hop budget).
    pub fn find_contract(&self, code: &OlcCode) -> Result<Option<String>, RoutingError> {
        let route = self.lookup(code)?;
        let node = &self.nodes[route.target().index() as usize];
        Ok(node
            .read()
            .records
            .get(code.as_str())
            .map(|r| r.contract_id.clone()))
    }

    /// Registers the contract deployed for an area. Returns `false` (and
    /// leaves the existing record in place) if one was already registered —
    /// first writer wins, as in the paper's deploy-then-insert flow.
    ///
    /// # Errors
    ///
    /// Propagates routing failures.
    pub fn register_contract(
        &self,
        code: &OlcCode,
        contract_id: impl Into<String>,
    ) -> Result<bool, RoutingError> {
        let route = self.lookup(code)?;
        let node = &self.nodes[route.target().index() as usize];
        let mut state = node.write();
        if state.records.contains_key(code.as_str()) {
            return Ok(false);
        }
        state
            .records
            .insert(code.as_str().to_string(), LocationRecord::new(contract_id, code.as_str()));
        Ok(true)
    }

    /// Appends a verified report CID to an area's record ("garbage-in" —
    /// callers are expected to be verifiers).
    ///
    /// Returns `false` if no contract is registered for the area or the CID
    /// was already present.
    ///
    /// # Errors
    ///
    /// Propagates routing failures.
    pub fn append_cid(
        &self,
        code: &OlcCode,
        cid: impl Into<String>,
    ) -> Result<bool, RoutingError> {
        let route = self.lookup(code)?;
        let node = &self.nodes[route.target().index() as usize];
        let mut state = node.write();
        match state.records.get_mut(code.as_str()) {
            Some(rec) => Ok(rec.push_cid(cid)),
            None => Ok(false),
        }
    }

    /// Returns a copy of the record for an area, if present.
    ///
    /// # Errors
    ///
    /// Propagates routing failures.
    pub fn record(&self, code: &OlcCode) -> Result<Option<LocationRecord>, RoutingError> {
        let route = self.lookup(code)?;
        let node = &self.nodes[route.target().index() as usize];
        Ok(node.read().records.get(code.as_str()).cloned())
    }

    /// Takes a node offline (simulated churn). Content is retained and
    /// becomes reachable again after [`Hypercube::rejoin`].
    pub fn fail_node(&self, key: RBitKey) {
        self.nodes[key.index() as usize].write().online = false;
    }

    /// Gracefully removes a node: its records are handed over to its
    /// nearest online neighbour before it goes offline, and a delegation
    /// pointer is left so lookups keyed to this node are served by the
    /// delegate (the leave protocol of a structured overlay).
    ///
    /// Returns the delegate's key, or `None` when the node had no online
    /// neighbour to hand over to (it then leaves ungracefully).
    pub fn leave_gracefully(&self, key: RBitKey) -> Option<RBitKey> {
        let delegate = key.neighbors().find(|n| self.is_online(*n));
        let records: Vec<(String, LocationRecord)> = {
            let mut state = self.nodes[key.index() as usize].write();
            state.online = false;
            state.records.drain().collect()
        };
        match delegate {
            Some(delegate) => {
                let mut target = self.nodes[delegate.index() as usize].write();
                for (olc, record) in records {
                    target.records.insert(olc, record);
                }
                self.delegations.write().insert(key.index(), delegate);
                Some(delegate)
            }
            None => {
                // No online neighbour: records are stranded back on the
                // (offline) node, as an ungraceful failure would leave
                // them.
                let mut state = self.nodes[key.index() as usize].write();
                for (olc, record) in records {
                    state.records.insert(olc, record);
                }
                None
            }
        }
    }

    /// Brings a node back online. If it had delegated its records on a
    /// graceful leave, they are reclaimed from the delegate.
    pub fn rejoin(&self, key: RBitKey) {
        if let Some(delegate) = self.delegations.write().remove(&key.index()) {
            // Reclaim only the records this node is responsible for.
            let mut reclaimed = Vec::new();
            {
                let mut source = self.nodes[delegate.index() as usize].write();
                let keys: Vec<String> = source
                    .records
                    .iter()
                    .filter(|(olc, _)| {
                        olc.parse::<OlcCode>()
                            .map(|code| self.key_for(&code) == key)
                            .unwrap_or(false)
                    })
                    .map(|(olc, _)| olc.clone())
                    .collect();
                for k in keys {
                    if let Some(record) = source.records.remove(&k) {
                        reclaimed.push((k, record));
                    }
                }
            }
            let mut state = self.nodes[key.index() as usize].write();
            for (olc, record) in reclaimed {
                state.records.insert(olc, record);
            }
            state.online = true;
            return;
        }
        self.nodes[key.index() as usize].write().online = true;
    }

    /// Where lookups for `node` are currently served: the node itself, or
    /// its delegate after a graceful leave.
    pub fn responsible_node(&self, node: RBitKey) -> RBitKey {
        self.delegations.read().get(&node.index()).copied().unwrap_or(node)
    }

    /// Whether a node is online.
    pub fn is_online(&self, key: RBitKey) -> bool {
        self.nodes[key.index() as usize].read().online
    }

    /// Snapshot of routing statistics.
    pub fn stats(&self) -> NetworkStats {
        self.stats.read().clone()
    }

    /// Total number of records stored across all nodes.
    pub fn record_count(&self) -> usize {
        self.nodes.iter().map(|n| n.read().records.len()).sum()
    }

    /// Records stored at one node (cloned), for complex queries.
    pub fn records_at(&self, key: RBitKey) -> Vec<LocationRecord> {
        self.nodes[key.index() as usize]
            .read()
            .records
            .values()
            .cloned()
            .collect()
    }

    /// Iterates over every stored record (cloned), for queries and display.
    pub fn all_records(&self) -> Vec<LocationRecord> {
        let mut out = Vec::new();
        for node in &self.nodes {
            out.extend(node.read().records.values().cloned());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pol_geo::{olc, Coordinates};

    fn code(lat: f64, lon: f64) -> OlcCode {
        olc::encode(Coordinates::new(lat, lon).unwrap(), 10).unwrap()
    }

    #[test]
    fn register_then_find() {
        let dht = Hypercube::new(6);
        let c = code(44.4949, 11.3426);
        assert_eq!(dht.find_contract(&c).unwrap(), None);
        assert!(dht.register_contract(&c, "evm:0xabc").unwrap());
        assert_eq!(dht.find_contract(&c).unwrap().as_deref(), Some("evm:0xabc"));
    }

    #[test]
    fn first_registration_wins() {
        let dht = Hypercube::new(6);
        let c = code(44.4949, 11.3426);
        assert!(dht.register_contract(&c, "app:1").unwrap());
        assert!(!dht.register_contract(&c, "app:2").unwrap());
        assert_eq!(dht.find_contract(&c).unwrap().as_deref(), Some("app:1"));
    }

    #[test]
    fn append_cid_requires_registration() {
        let dht = Hypercube::new(6);
        let c = code(41.9, 12.5);
        assert!(!dht.append_cid(&c, "bafy1").unwrap());
        dht.register_contract(&c, "app:3").unwrap();
        assert!(dht.append_cid(&c, "bafy1").unwrap());
        assert!(!dht.append_cid(&c, "bafy1").unwrap());
        assert_eq!(dht.record(&c).unwrap().unwrap().cids, vec!["bafy1"]);
    }

    #[test]
    fn stats_accumulate_and_bound() {
        let dht = Hypercube::new(8);
        for i in 0..20 {
            let c = code(40.0 + f64::from(i) * 0.3, 9.0 + f64::from(i) * 0.17);
            let _ = dht.lookup(&c).unwrap();
        }
        let stats = dht.stats();
        assert_eq!(stats.lookups, 20);
        assert!(stats.max_hops <= 8);
        assert!(stats.mean_hops() <= 8.0);
    }

    #[test]
    fn churn_blocks_then_recovers() {
        let dht = Hypercube::new(5);
        let c = code(44.4949, 11.3426);
        dht.register_contract(&c, "app:9").unwrap();
        let key = dht.key_for(&c);
        dht.fail_node(key);
        assert!(matches!(dht.find_contract(&c), Err(RoutingError::NodeOffline(_))));
        dht.rejoin(key);
        assert_eq!(dht.find_contract(&c).unwrap().as_deref(), Some("app:9"));
    }

    #[test]
    fn distinct_areas_distinct_records() {
        let dht = Hypercube::new(10);
        let a = code(44.4949, 11.3426);
        let b = code(45.4642, 9.1900);
        dht.register_contract(&a, "app:1").unwrap();
        dht.register_contract(&b, "app:2").unwrap();
        assert_eq!(dht.record_count(), 2);
        assert_eq!(dht.find_contract(&a).unwrap().as_deref(), Some("app:1"));
        assert_eq!(dht.find_contract(&b).unwrap().as_deref(), Some("app:2"));
    }

    #[test]
    #[should_panic(expected = "r must be")]
    fn rejects_zero_dimensions() {
        let _ = Hypercube::new(0);
    }

    #[test]
    fn graceful_leave_hands_records_to_delegate() {
        let dht = Hypercube::new(5);
        let c = code(44.4949, 11.3426);
        dht.register_contract(&c, "app:1").unwrap();
        let key = dht.key_for(&c);
        let delegate = dht.leave_gracefully(key).expect("a neighbour is online");
        assert_ne!(delegate, key);
        assert!(!dht.is_online(key));
        // Lookups keep working through the delegate.
        assert_eq!(dht.find_contract(&c).unwrap().as_deref(), Some("app:1"));
        assert_eq!(dht.responsible_node(key), delegate);
        // The verifier can still append.
        assert!(dht.append_cid(&c, "bafyZ").unwrap());
    }

    #[test]
    fn rejoin_reclaims_delegated_records() {
        let dht = Hypercube::new(5);
        let c = code(44.4949, 11.3426);
        dht.register_contract(&c, "app:2").unwrap();
        let key = dht.key_for(&c);
        let delegate = dht.leave_gracefully(key).unwrap();
        dht.rejoin(key);
        assert_eq!(dht.responsible_node(key), key);
        assert_eq!(dht.find_contract(&c).unwrap().as_deref(), Some("app:2"));
        // The delegate no longer holds this node's record.
        assert!(dht.records_at(delegate).iter().all(|r| r.olc != c.as_str()));
        assert!(!dht.records_at(key).is_empty());
    }

    #[test]
    fn ungraceful_failure_still_blocks() {
        let dht = Hypercube::new(5);
        let c = code(44.4949, 11.3426);
        dht.register_contract(&c, "app:3").unwrap();
        let key = dht.key_for(&c);
        dht.fail_node(key); // crash, no handover
        assert!(dht.find_contract(&c).is_err());
    }
}
