//! Content stored at hypercube nodes.

use serde::{Deserialize, Serialize};

/// The record a node keeps for one location area — the JSON document of
/// Fig. 2.9 in the paper: the contract deployed for the area, the area's
/// Open Location Code, and the CIDs of verified reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocationRecord {
    /// Identifier of the smart contract (or application) for this area.
    pub contract_id: String,
    /// The Open Location Code the contract was deployed for.
    pub olc: String,
    /// Content identifiers of verified reports, in insertion order.
    pub cids: Vec<String>,
}

impl LocationRecord {
    /// Creates a record with no verified reports yet.
    pub fn new(contract_id: impl Into<String>, olc: impl Into<String>) -> LocationRecord {
        LocationRecord { contract_id: contract_id.into(), olc: olc.into(), cids: Vec::new() }
    }

    /// Appends a verified report CID, ignoring exact duplicates.
    ///
    /// Returns `true` if the CID was newly added.
    pub fn push_cid(&mut self, cid: impl Into<String>) -> bool {
        let cid = cid.into();
        if self.cids.contains(&cid) {
            return false;
        }
        self.cids.push(cid);
        true
    }

    /// Renders the record as the JSON document the paper's node content
    /// shows (Fig. 2.9).
    pub fn to_json(&self) -> String {
        let cids: Vec<String> = self.cids.iter().map(|c| format!("\"{c}\"")).collect();
        format!(
            "{{\"contractID\":\"{}\",\"OLC\":\"{}\",\"CIDs\":[{}]}}",
            self.contract_id,
            self.olc,
            cids.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_cid_deduplicates() {
        let mut r = LocationRecord::new("app:1", "8FPH47Q3+HM");
        assert!(r.push_cid("bafy1"));
        assert!(!r.push_cid("bafy1"));
        assert!(r.push_cid("bafy2"));
        assert_eq!(r.cids, vec!["bafy1", "bafy2"]);
    }

    #[test]
    fn json_shape() {
        let mut r = LocationRecord::new("app:7", "8FPH47Q3+HM");
        r.push_cid("bafyA");
        assert_eq!(
            r.to_json(),
            "{\"contractID\":\"app:7\",\"OLC\":\"8FPH47Q3+HM\",\"CIDs\":[\"bafyA\"]}"
        );
    }
}
