//! A distributed hash table with hypercube topology, keyed by Open Location
//! Codes.
//!
//! The paper stores *verified* location reports off-chain in a DHT whose
//! 2^r logical nodes form an r-dimensional hypercube (after Joung et al.):
//! node IDs are r-bit strings, neighbours differ in exactly one bit, and
//! lookups route greedily by Hamming distance, guaranteeing delivery within
//! r hops. Each node is responsible for the location keys that hash to its
//! ID (via the [`pol_geo::rbit`] dual encoding) and stores, per OLC, the
//! smart-contract id deployed for that area plus the CIDs of verified
//! reports ("garbage-in": only verifiers insert content).
//!
//! # Examples
//!
//! ```
//! use pol_hypercube::Hypercube;
//! use pol_geo::{olc, Coordinates};
//!
//! let dht = Hypercube::new(6);
//! let code = olc::encode(Coordinates::new(44.4949, 11.3426)?, 10)?;
//! assert!(dht.find_contract(&code)?.is_none());
//! dht.register_contract(&code, "app:7")?;
//! assert_eq!(dht.find_contract(&code)?.as_deref(), Some("app:7"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod content;
pub mod network;
pub mod query;
pub mod routing;

pub use content::LocationRecord;
pub use network::{Hypercube, NetworkStats, HOP_BUCKETS};
pub use routing::{Route, RoutingError};
