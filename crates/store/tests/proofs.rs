//! Proof differential property test (satellite #4): every committed key
//! must yield an inclusion proof that verifies against the root; absent
//! keys must yield verifying exclusion proofs; and no single-bit
//! mutation of an encoded proof may survive decode + verification.

use pol_store::{verify_proof, MerkleProof, StateBackend, TrieBackend};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// A deterministic entry set with keys drawn from a small universe (so
/// exclusion candidates are plentiful and leaf-level absence — a shallow
/// trie with a different leaf on the path — actually occurs).
fn entry_set(seed: u64, n: usize) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut map = BTreeMap::new();
    for _ in 0..n {
        let k: u16 = rng.gen_range(0..200);
        let key = k.to_be_bytes().to_vec();
        let len = rng.gen_range(0..12usize);
        map.insert(key, (0..len).map(|_| rng.gen()).collect());
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn inclusion_and_exclusion_proofs_verify(seed in 0u64..1_000, n in 1usize..40) {
        let entries = entry_set(seed, n);
        let mut trie = TrieBackend::new();
        let batch: Vec<_> =
            entries.iter().map(|(k, v)| (k.clone(), Some(v.clone()))).collect();
        trie.commit(&batch).unwrap();
        let root = trie.root();

        // Every committed key proves its value.
        for (key, value) in &entries {
            let proof = trie.prove(key).expect("present keys prove");
            let got = verify_proof(&root, key, &proof).expect("inclusion proof verifies");
            prop_assert_eq!(got.as_ref(), Some(value));
        }

        // Every key of the universe that is absent proves its absence.
        for k in 0..200u16 {
            let key = k.to_be_bytes().to_vec();
            if entries.contains_key(&key) {
                continue;
            }
            let proof = trie.prove(&key).expect("absent keys prove too");
            let got = verify_proof(&root, &key, &proof).expect("exclusion proof verifies");
            prop_assert_eq!(got, None);
        }
    }

    /// Flipping any single bit of an encoded proof must break it: either
    /// the strict decoder rejects the bytes, or verification against the
    /// original root fails. A mutated proof never verifies.
    #[test]
    fn single_bit_mutations_are_rejected(
        seed in 0u64..1_000,
        n in 1usize..30,
        probe in 0u16..200,
        bit_pick in any::<u64>(),
    ) {
        let entries = entry_set(seed, n);
        let mut trie = TrieBackend::new();
        let batch: Vec<_> =
            entries.iter().map(|(k, v)| (k.clone(), Some(v.clone()))).collect();
        trie.commit(&batch).unwrap();
        let root = trie.root();

        let key = probe.to_be_bytes().to_vec();
        let proof = trie.prove(&key).expect("every key yields a proof");
        // Sanity: the untampered proof verifies.
        verify_proof(&root, &key, &proof).expect("original proof verifies");

        let mut bytes = proof.encode();
        prop_assert!(!bytes.is_empty());
        let bit = (bit_pick as usize) % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);

        let survived = match MerkleProof::decode(&bytes) {
            Err(_) => false,
            Ok(mutated) => verify_proof(&root, &key, &mutated).is_ok(),
        };
        prop_assert!(!survived, "bit {bit} flip went undetected for key {probe}");
    }
}
