//! Shared conformance suite: every backend must behave as the same
//! key/value store. One deterministic operation stream is applied to all
//! three backends and to a plain `BTreeMap` model; after every commit the
//! backends must agree with the model on gets, lengths, entry lists and —
//! the authenticated part of the contract — on the root. The WAL backend
//! is additionally closed and reopened mid-stream: replay must land it
//! back in the same state.

use pol_store::{MemoryBackend, StateBackend, TrieBackend, WalBackend};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pol-store-conf-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key(rng: &mut StdRng) -> Vec<u8> {
    // A small key universe so deletes and overwrites actually hit.
    let k: u8 = rng.gen_range(0..40);
    vec![7, k, k ^ 0x5A]
}

fn value(rng: &mut StdRng) -> Vec<u8> {
    let len = rng.gen_range(0..24usize);
    (0..len).map(|_| rng.gen()).collect()
}

fn assert_agrees(backend: &dyn StateBackend, model: &BTreeMap<Vec<u8>, Vec<u8>>, step: usize) {
    let name = backend.name();
    assert_eq!(backend.len(), model.len(), "len diverges on {name} at step {step}");
    let entries: Vec<(Vec<u8>, Vec<u8>)> =
        model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    assert_eq!(backend.entries(), entries, "entries diverge on {name} at step {step}");
    for (k, v) in model {
        assert_eq!(backend.get(k).as_ref(), Some(v), "get diverges on {name} at step {step}");
    }
    assert_eq!(backend.get(b"never-written"), None);
    let expect = MemoryBackend::from_entries(entries).root();
    assert_eq!(backend.root(), expect, "root diverges on {name} at step {step}");
}

#[test]
fn backends_conform_to_model_under_random_ops() {
    for seed in [3u64, 17, 99] {
        let mut rng = StdRng::seed_from_u64(seed);
        let dir = temp_dir(&format!("ops-{seed}"));
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut memory = MemoryBackend::new();
        let mut trie = TrieBackend::new();
        let mut wal = Some(WalBackend::open(&dir, 3).unwrap());

        for step in 0..120 {
            let batch: Vec<(Vec<u8>, Option<Vec<u8>>)> = (0..rng.gen_range(0..6usize))
                .map(|_| {
                    let k = key(&mut rng);
                    if rng.gen_bool(0.25) {
                        (k, None)
                    } else {
                        (k, Some(value(&mut rng)))
                    }
                })
                .collect();
            // Batches may repeat a key; last write wins everywhere.
            for (k, v) in &batch {
                match v {
                    Some(v) => {
                        model.insert(k.clone(), v.clone());
                    }
                    None => {
                        model.remove(k);
                    }
                }
            }
            memory.commit(&batch).unwrap();
            trie.commit(&batch).unwrap();
            wal.as_mut().unwrap().commit(&batch).unwrap();

            if step % 7 == 0 {
                memory.flush_block(step as u64).unwrap();
                trie.flush_block(step as u64).unwrap();
                wal.as_mut().unwrap().flush_block(step as u64).unwrap();
            }
            if step % 31 == 30 {
                // Clean mid-stream restart of the persistent backend.
                drop(wal.take());
                wal = Some(WalBackend::open(&dir, 3).unwrap());
            }

            assert_agrees(&memory, &model, step);
            assert_agrees(&trie, &model, step);
            assert_agrees(wal.as_ref().unwrap(), &model, step);
        }

        // Snapshots of all three agree with each other and the original.
        let root = memory.root();
        assert_eq!(memory.snapshot_backend().root(), root);
        assert_eq!(trie.snapshot_backend().root(), root);
        assert_eq!(wal.as_ref().unwrap().snapshot_backend().root(), root);
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn empty_backends_share_the_empty_root() {
    let dir = temp_dir("empty");
    let wal = WalBackend::open(&dir, 8).unwrap();
    assert_eq!(MemoryBackend::new().root(), pol_store::EMPTY_ROOT);
    assert_eq!(TrieBackend::new().root(), pol_store::EMPTY_ROOT);
    assert_eq!(wal.root(), pol_store::EMPTY_ROOT);
    assert!(MemoryBackend::new().is_empty());
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
}
