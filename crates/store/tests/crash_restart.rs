//! Crash-restart property test (the paper-repo's satellite #3): kill the
//! write-ahead log at an arbitrary byte offset, reopen it, and the
//! recovered state must be exactly the uninterrupted run's state after
//! some prefix of the commits — never a torn half-batch, never a corrupt
//! map — with the trie root to match.

use pol_store::{BatchEntry, MemoryBackend, StateBackend, WalBackend};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pol-store-crash-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One deterministic batch stream: the same `(seed, n)` always produces
/// the same commits, so the crashed run and the reference run see
/// identical inputs.
fn batches(seed: u64, n: usize) -> Vec<Vec<BatchEntry>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (0..rng.gen_range(1..5usize))
                .map(|_| {
                    let k: u8 = rng.gen_range(0..30);
                    let key = vec![1, k];
                    if rng.gen_bool(0.2) {
                        (key, None)
                    } else {
                        let len = rng.gen_range(0..16usize);
                        (key, Some((0..len).map(|_| rng.gen()).collect()))
                    }
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncating `wal.bin` at any offset after a full run must recover
    /// to the exact state after `commit_seq` commits — the same entries
    /// and the same authenticated root the uninterrupted run had at that
    /// point.
    #[test]
    fn truncated_log_recovers_a_commit_prefix(
        seed in 0u64..1_000,
        n in 4usize..24,
        snapshot_every in 1u64..9,
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = temp_dir(&format!("prop-{seed}-{n}-{snapshot_every}"));
        let stream = batches(seed, n);

        // Reference run: model state after every commit count 0..=n.
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut states: Vec<BTreeMap<Vec<u8>, Vec<u8>>> = vec![model.clone()];
        {
            let mut wal = WalBackend::open(&dir, snapshot_every).unwrap();
            for (i, batch) in stream.iter().enumerate() {
                wal.commit(batch).unwrap();
                for (k, v) in batch {
                    match v {
                        Some(v) => { model.insert(k.clone(), v.clone()); }
                        None => { model.remove(k); }
                    }
                }
                states.push(model.clone());
                if i % 3 == 2 {
                    wal.flush_block(i as u64).unwrap();
                }
            }
            // Uninterrupted reopen restores the final state exactly.
            let final_entries: Vec<_> =
                model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            prop_assert_eq!(wal.entries(), final_entries.clone());
            drop(wal);
            let reopened = WalBackend::open(&dir, snapshot_every).unwrap();
            prop_assert_eq!(reopened.entries(), final_entries.clone());
            prop_assert_eq!(
                reopened.root(),
                MemoryBackend::from_entries(final_entries).root()
            );
        }

        // Crash: chop the log at an arbitrary byte offset.
        let log_path = dir.join("wal.bin");
        let log_len = std::fs::metadata(&log_path).unwrap().len();
        let cut = (log_len as f64 * cut_frac) as u64;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&log_path)
            .unwrap()
            .set_len(cut)
            .unwrap();

        let recovered = WalBackend::open(&dir, snapshot_every).unwrap();
        let seq = recovered.commit_seq() as usize;
        prop_assert!(seq <= n, "recovered seq {seq} beyond {n} commits");
        prop_assert!(
            recovered.commit_seq() >= recovered.snapshot_seq(),
            "recovery lost snapshotted commits"
        );
        let expect: Vec<_> = states[seq].iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(recovered.entries(), expect.clone(), "recovered state is not the {seq}-commit prefix");
        prop_assert_eq!(
            recovered.root(),
            MemoryBackend::from_entries(expect).root(),
            "recovered root diverges from the uninterrupted run at commit {seq}"
        );

        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
