//! `pol-store` — pluggable persistent state backends with Merkleized
//! commitments and crash-restart recovery.
//!
//! The chain simulator's `WorldState` journals every committed mutation
//! onto a [`StateBackend`]: an untyped, byte-oriented key/value store
//! with batch-atomic commits, a block-boundary flush hook and an
//! *authenticated root* — the commitment `state_digest()` publishes per
//! block. Three implementations ship:
//!
//! * [`MemoryBackend`] — the historical in-memory map, extracted behind
//!   the trait and kept as the default. Its root is recomputed from
//!   scratch on demand.
//! * [`WalBackend`] — an append-only write-ahead log with periodic
//!   snapshots. Every commit is one length-prefixed, checksummed record;
//!   [`WalBackend::open`] replays snapshot + log and tolerates a torn
//!   tail (a crash mid-write loses at most the interrupted commit,
//!   never corrupts the prefix).
//! * [`TrieBackend`] — a copy-on-write binary Merkle trie over
//!   `sha256(key)` paths. The root updates incrementally per commit and
//!   every key yields an inclusion proof (or an exclusion proof when
//!   absent) checkable by the standalone [`verify_proof`] function with
//!   nothing but the root.
//!
//! All three backends produce the **same root for the same contents**:
//! the root is defined as the canonical Merkle-trie commitment over the
//! current entry set, which the trie maintains incrementally and the
//! other two recompute via [`trie::scratch_root`]. That is what lets the
//! differential CI gate assert byte-identical `state_digest()` values
//! across backends and across sequential/parallel execution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod memory;
pub mod trie;
pub mod wal;

pub use memory::MemoryBackend;
pub use trie::{
    scratch_root, verify_proof, MerkleProof, ProofClaim, ProofError, TrieBackend, EMPTY_ROOT,
};
pub use wal::WalBackend;

use std::path::PathBuf;

/// One mutation of a commit batch: `Some` writes the value, `None`
/// deletes the key.
pub type BatchEntry = (Vec<u8>, Option<Vec<u8>>);

/// Errors surfaced by the storage layer.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// A persisted artifact failed validation (bad magic, checksum or
    /// framing) beyond what torn-tail recovery can absorb.
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage i/o error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt storage artifact: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// A persistent (or persistable) key/value state store with batch-atomic
/// commits and an authenticated root commitment.
///
/// Keys and values are opaque byte strings; the typed layer
/// (`pol-ledger::state::codec`) owns the canonical encoding. The
/// contract every implementation must honour (pinned by the shared
/// conformance suite):
///
/// * [`StateBackend::commit`] applies a batch atomically — after a
///   crash, either the whole batch is visible or none of it is;
/// * [`StateBackend::root`] is a pure function of the current entry
///   set — equal contents give equal roots on *every* backend;
/// * [`StateBackend::flush_block`] marks a block boundary (durability /
///   snapshot policy hook; a no-op for volatile backends).
pub trait StateBackend: Send + Sync {
    /// A short static name ("memory", "wal", "trie") for reports.
    fn name(&self) -> &'static str;

    /// Reads the value stored under `key`.
    fn get(&self, key: &[u8]) -> Option<Vec<u8>>;

    /// Applies one batch of puts/deletes atomically.
    ///
    /// # Errors
    ///
    /// I/O failure on persistent backends.
    fn commit(&mut self, batch: &[BatchEntry]) -> Result<(), StoreError>;

    /// The authenticated commitment over the current contents: the
    /// canonical binary-Merkle-trie root over `sha256(key)` paths (see
    /// [`trie::scratch_root`]). Empty store ⇒ [`EMPTY_ROOT`].
    fn root(&self) -> [u8; 32];

    /// Marks a block boundary at `height` (snapshot/durability hook).
    ///
    /// # Errors
    ///
    /// I/O failure on persistent backends.
    fn flush_block(&mut self, height: u64) -> Result<(), StoreError> {
        let _ = height;
        Ok(())
    }

    /// Number of live entries.
    fn len(&self) -> usize;

    /// Whether the store holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of every entry, sorted by key (restore, conformance
    /// and explorer paths — not a hot-path API).
    fn entries(&self) -> Vec<(Vec<u8>, Vec<u8>)>;

    /// An inclusion/exclusion proof for `key` against [`StateBackend::root`],
    /// where the backend supports proving (the Merkle trie does; the
    /// others return `None`).
    fn prove(&self, key: &[u8]) -> Option<MerkleProof> {
        let _ = key;
        None
    }

    /// A self-contained copy of the current contents. Persistent
    /// backends clone into a volatile store (the copy shares no files
    /// with the original); the root is preserved exactly.
    fn snapshot_backend(&self) -> Box<dyn StateBackend>;
}

/// Declarative backend selection, for CLI flags and chain construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendConfig {
    /// Volatile in-memory map (the default).
    Memory,
    /// Append-only write-ahead log + snapshots under `dir`.
    Wal {
        /// Directory holding `wal.bin` and `snapshot.bin`.
        dir: PathBuf,
        /// Log records accumulated before `flush_block` rolls a snapshot.
        snapshot_every: u64,
    },
    /// Copy-on-write Merkle trie with incremental roots and proofs.
    Trie,
}

impl BackendConfig {
    /// Opens (or creates) the configured backend, replaying any
    /// persisted state.
    ///
    /// # Errors
    ///
    /// Propagates I/O and corruption errors from [`WalBackend::open`].
    pub fn open(&self) -> Result<Box<dyn StateBackend>, StoreError> {
        Ok(match self {
            BackendConfig::Memory => Box::new(MemoryBackend::new()),
            BackendConfig::Wal { dir, snapshot_every } => {
                Box::new(WalBackend::open(dir, *snapshot_every)?)
            }
            BackendConfig::Trie => Box::new(TrieBackend::new()),
        })
    }
}
