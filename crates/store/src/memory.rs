//! The in-memory backend: the historical `WorldState` map, extracted
//! behind [`StateBackend`] and kept as the default. Volatile by design —
//! its job is to be the fastest commit path and the semantic baseline
//! the persistent backends are conformance-tested against.

use crate::trie::map_root;
use crate::{BatchEntry, StateBackend, StoreError};
use std::collections::BTreeMap;

/// A volatile sorted-map backend. [`StateBackend::root`] recomputes the
/// canonical trie commitment from scratch on every call (`O(n log n)`) —
/// the cost `storage_bench` contrasts with the trie's incremental root.
#[derive(Debug, Default, Clone)]
pub struct MemoryBackend {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
}

impl MemoryBackend {
    /// An empty store.
    pub fn new() -> MemoryBackend {
        MemoryBackend::default()
    }

    /// Builds a store from an entry list (snapshot restore).
    pub fn from_entries(entries: Vec<(Vec<u8>, Vec<u8>)>) -> MemoryBackend {
        MemoryBackend { map: entries.into_iter().collect() }
    }
}

impl StateBackend for MemoryBackend {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.map.get(key).cloned()
    }

    fn commit(&mut self, batch: &[BatchEntry]) -> Result<(), StoreError> {
        for (key, value) in batch {
            match value {
                Some(v) => {
                    self.map.insert(key.clone(), v.clone());
                }
                None => {
                    self.map.remove(key);
                }
            }
        }
        Ok(())
    }

    fn root(&self) -> [u8; 32] {
        map_root(&self.map)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn entries(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.map.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    fn snapshot_backend(&self) -> Box<dyn StateBackend> {
        Box::new(self.clone())
    }
}
