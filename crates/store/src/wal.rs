//! The append-only write-ahead-log backend with periodic snapshots and
//! crash-restart replay.
//!
//! On-disk layout under the backend's directory:
//!
//! ```text
//! wal.bin       append-only commit log
//! snapshot.bin  full state image, rolled by the snapshot policy
//! ```
//!
//! **Log record** (one per [`StateBackend::commit`], so a batch is the
//! atomicity unit):
//!
//! ```text
//! 0xC1 ‖ seq:u64 ‖ n:u32 ‖ n × (klen:u32 ‖ key ‖ flag:u8 ‖ [vlen:u32 ‖ value]) ‖ check:8
//! ```
//!
//! `check` is the first 8 bytes of `sha256` over everything before it.
//! Replay stops at the first incomplete or corrupt record and truncates
//! the file there: a crash mid-append loses at most the interrupted
//! commit and never tears an earlier one — the property the
//! crash-restart proptest pins by killing the log at arbitrary byte
//! offsets.
//!
//! **Snapshot** (`POLSNAP1` magic): the full entry set as of commit
//! `seq`, written to a temp file and atomically renamed. After a
//! snapshot the log is truncated; records with `seq` at or below the
//! snapshot's are skipped on replay, so a crash between rename and
//! truncate is harmless. The policy is block-aligned: `flush_block`
//! rolls a snapshot once `snapshot_every` commits have accumulated in
//! the log, so restart cost stays bounded no matter how long the chain
//! runs.

use crate::trie::map_root;
use crate::{BatchEntry, MemoryBackend, StateBackend, StoreError};
use pol_crypto::sha256;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The WAL's resident map: raw key bytes to raw value bytes.
type EntryMap = BTreeMap<Vec<u8>, Vec<u8>>;

const RECORD_MAGIC: u8 = 0xC1;
const SNAPSHOT_MAGIC: &[u8; 8] = b"POLSNAP1";
const CHECK_LEN: usize = 8;

/// Default number of logged commits that triggers a snapshot at the next
/// block boundary.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 4_096;

/// The write-ahead-log backend. All reads are served from the in-memory
/// image; the log and snapshot files exist to rebuild that image after a
/// restart (clean or crashed).
pub struct WalBackend {
    dir: PathBuf,
    map: EntryMap,
    log: File,
    /// Monotone commit sequence number (1-based; 0 = nothing committed).
    commit_seq: u64,
    /// Commit seq the current snapshot covers (0 = no snapshot).
    snapshot_seq: u64,
    /// Records currently in the log (commits since the last snapshot).
    commits_in_log: u64,
    snapshot_every: u64,
}

impl std::fmt::Debug for WalBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalBackend")
            .field("dir", &self.dir)
            .field("entries", &self.map.len())
            .field("commit_seq", &self.commit_seq)
            .field("snapshot_seq", &self.snapshot_seq)
            .finish()
    }
}

fn check_of(payload: &[u8]) -> [u8; CHECK_LEN] {
    let digest = sha256(payload);
    let mut out = [0u8; CHECK_LEN];
    out.copy_from_slice(&digest[..CHECK_LEN]);
    out
}

fn push_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    buf.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    buf.extend_from_slice(bytes);
}

/// Encodes one commit batch as a log record (checksum included).
fn encode_record(seq: u64, batch: &[BatchEntry]) -> Vec<u8> {
    let mut buf = vec![RECORD_MAGIC];
    buf.extend_from_slice(&seq.to_be_bytes());
    buf.extend_from_slice(&(batch.len() as u32).to_be_bytes());
    for (key, value) in batch {
        push_bytes(&mut buf, key);
        match value {
            Some(v) => {
                buf.push(1);
                push_bytes(&mut buf, v);
            }
            None => buf.push(0),
        }
    }
    let check = check_of(&buf);
    buf.extend_from_slice(&check);
    buf
}

/// Cursor-based reader over a byte buffer; `None` = ran off the end.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let slice = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(slice)
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_be_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_be_bytes(self.take(8)?.try_into().ok()?))
    }
}

/// One decoded log record.
struct Record {
    seq: u64,
    batch: Vec<BatchEntry>,
    /// Byte offset just past this record.
    end: usize,
}

/// Decodes the record starting at `at`; `None` for a torn, corrupt or
/// absent record (replay stops there).
fn decode_record(bytes: &[u8], at: usize) -> Option<Record> {
    let mut cur = Cursor { bytes, at };
    if *cur.take(1)?.first()? != RECORD_MAGIC {
        return None;
    }
    let seq = cur.u64()?;
    let n = cur.u32()? as usize;
    let mut batch = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let klen = cur.u32()? as usize;
        let key = cur.take(klen)?.to_vec();
        let flag = *cur.take(1)?.first()?;
        let value = match flag {
            0 => None,
            1 => {
                let vlen = cur.u32()? as usize;
                Some(cur.take(vlen)?.to_vec())
            }
            _ => return None,
        };
        batch.push((key, value));
    }
    let payload_end = cur.at;
    let check: [u8; CHECK_LEN] = cur.take(CHECK_LEN)?.try_into().ok()?;
    if check != check_of(&bytes[at..payload_end]) {
        return None;
    }
    Some(Record { seq, batch, end: cur.at })
}

impl WalBackend {
    /// Opens (or creates) a WAL store under `dir`, replaying
    /// `snapshot.bin` and then every intact `wal.bin` record. A torn or
    /// corrupt log tail is truncated away; the state observed is exactly
    /// the longest durable commit prefix.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`StoreError::Corrupt`] when the snapshot itself
    /// (not the log tail) fails validation.
    pub fn open(dir: impl AsRef<Path>, snapshot_every: u64) -> Result<WalBackend, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let snapshot_path = dir.join("snapshot.bin");
        let log_path = dir.join("wal.bin");

        let (mut map, snapshot_seq) = if snapshot_path.exists() {
            load_snapshot(&snapshot_path)?
        } else {
            (BTreeMap::new(), 0)
        };

        let mut log = OpenOptions::new().create(true).read(true).append(true).open(&log_path)?;
        let mut bytes = Vec::new();
        log.seek(SeekFrom::Start(0))?;
        log.read_to_end(&mut bytes)?;

        let mut at = 0usize;
        let mut commit_seq = snapshot_seq;
        let mut commits_in_log = 0u64;
        while let Some(record) = decode_record(&bytes, at) {
            at = record.end;
            // A crash between snapshot-rename and log-truncate leaves
            // already-snapshotted records behind: skip, don't re-apply.
            if record.seq <= snapshot_seq {
                continue;
            }
            for (key, value) in record.batch {
                match value {
                    Some(v) => {
                        map.insert(key, v);
                    }
                    None => {
                        map.remove(&key);
                    }
                }
            }
            commit_seq = record.seq;
            commits_in_log += 1;
        }
        if at < bytes.len() {
            // Torn tail: drop the partial record so future appends start
            // on a clean boundary.
            log.set_len(at as u64)?;
            log.seek(SeekFrom::End(0))?;
        }

        Ok(WalBackend {
            dir,
            map,
            log,
            commit_seq,
            snapshot_seq,
            commits_in_log,
            snapshot_every: snapshot_every.max(1),
        })
    }

    /// The last durable commit sequence number (0 before any commit).
    pub fn commit_seq(&self) -> u64 {
        self.commit_seq
    }

    /// The commit sequence covered by the on-disk snapshot (0 = none).
    pub fn snapshot_seq(&self) -> u64 {
        self.snapshot_seq
    }

    /// Writes a full snapshot now and truncates the log. Called by the
    /// block-boundary policy; also available for explicit checkpoints.
    ///
    /// # Errors
    ///
    /// I/O failures while writing or renaming the snapshot.
    pub fn snapshot_now(&mut self) -> Result<(), StoreError> {
        let mut buf = Vec::new();
        buf.extend_from_slice(SNAPSHOT_MAGIC);
        buf.extend_from_slice(&self.commit_seq.to_be_bytes());
        buf.extend_from_slice(&(self.map.len() as u64).to_be_bytes());
        for (key, value) in &self.map {
            push_bytes(&mut buf, key);
            push_bytes(&mut buf, value);
        }
        let check = check_of(&buf);
        buf.extend_from_slice(&check);

        let tmp = self.dir.join("snapshot.tmp");
        let fin = self.dir.join("snapshot.bin");
        std::fs::write(&tmp, &buf)?;
        std::fs::rename(&tmp, &fin)?;
        self.snapshot_seq = self.commit_seq;
        self.log.set_len(0)?;
        self.log.seek(SeekFrom::End(0))?;
        self.commits_in_log = 0;
        Ok(())
    }
}

fn load_snapshot(path: &Path) -> Result<(EntryMap, u64), StoreError> {
    let bytes = std::fs::read(path)?;
    let corrupt = |msg: &str| StoreError::Corrupt(format!("{}: {msg}", path.display()));
    if bytes.len() < SNAPSHOT_MAGIC.len() + 16 + CHECK_LEN {
        return Err(corrupt("snapshot shorter than header"));
    }
    let (payload, check) = bytes.split_at(bytes.len() - CHECK_LEN);
    if check != check_of(payload) {
        return Err(corrupt("snapshot checksum mismatch"));
    }
    let mut cur = Cursor { bytes: payload, at: 0 };
    if cur.take(SNAPSHOT_MAGIC.len()) != Some(SNAPSHOT_MAGIC.as_slice()) {
        return Err(corrupt("bad snapshot magic"));
    }
    let seq = cur.u64().ok_or_else(|| corrupt("truncated seq"))?;
    let count = cur.u64().ok_or_else(|| corrupt("truncated count"))?;
    let mut map = BTreeMap::new();
    for _ in 0..count {
        let klen = cur.u32().ok_or_else(|| corrupt("truncated key length"))? as usize;
        let key = cur.take(klen).ok_or_else(|| corrupt("truncated key"))?.to_vec();
        let vlen = cur.u32().ok_or_else(|| corrupt("truncated value length"))? as usize;
        let value = cur.take(vlen).ok_or_else(|| corrupt("truncated value"))?.to_vec();
        map.insert(key, value);
    }
    if cur.at != payload.len() {
        return Err(corrupt("trailing bytes after entries"));
    }
    Ok((map, seq))
}

impl StateBackend for WalBackend {
    fn name(&self) -> &'static str {
        "wal"
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.map.get(key).cloned()
    }

    fn commit(&mut self, batch: &[BatchEntry]) -> Result<(), StoreError> {
        if batch.is_empty() {
            return Ok(());
        }
        let seq = self.commit_seq + 1;
        let record = encode_record(seq, batch);
        // Durability point: the record hits the log before the in-memory
        // image changes, so a crash right here replays cleanly either way.
        self.log.write_all(&record)?;
        self.commit_seq = seq;
        self.commits_in_log += 1;
        for (key, value) in batch {
            match value {
                Some(v) => {
                    self.map.insert(key.clone(), v.clone());
                }
                None => {
                    self.map.remove(key);
                }
            }
        }
        Ok(())
    }

    fn root(&self) -> [u8; 32] {
        map_root(&self.map)
    }

    fn flush_block(&mut self, _height: u64) -> Result<(), StoreError> {
        self.log.flush()?;
        if self.commits_in_log >= self.snapshot_every {
            self.snapshot_now()?;
        }
        Ok(())
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn entries(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.map.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    fn snapshot_backend(&self) -> Box<dyn StateBackend> {
        // A clone must not share the log file; it degrades to a volatile
        // copy with the identical contents (and therefore root).
        Box::new(MemoryBackend::from_entries(self.entries()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pol-store-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn put(k: &str, v: &str) -> BatchEntry {
        (k.as_bytes().to_vec(), Some(v.as_bytes().to_vec()))
    }

    fn del(k: &str) -> BatchEntry {
        (k.as_bytes().to_vec(), None)
    }

    #[test]
    fn clean_restart_replays_log() {
        let dir = temp_dir("clean");
        let root = {
            let mut wal = WalBackend::open(&dir, 1_000).unwrap();
            wal.commit(&[put("a", "1"), put("b", "2")]).unwrap();
            wal.commit(&[del("a"), put("c", "3")]).unwrap();
            wal.root()
        };
        let reopened = WalBackend::open(&dir, 1_000).unwrap();
        assert_eq!(reopened.commit_seq(), 2);
        assert_eq!(reopened.get(b"a"), None);
        assert_eq!(reopened.get(b"b"), Some(b"2".to_vec()));
        assert_eq!(reopened.get(b"c"), Some(b"3".to_vec()));
        assert_eq!(reopened.root(), root);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_then_restart_skips_replayed_records() {
        let dir = temp_dir("snap");
        {
            let mut wal = WalBackend::open(&dir, 2).unwrap();
            wal.commit(&[put("a", "1")]).unwrap();
            wal.commit(&[put("b", "2")]).unwrap();
            wal.flush_block(1).unwrap(); // rolls a snapshot (2 >= 2)
            assert_eq!(wal.snapshot_seq(), 2);
            wal.commit(&[put("c", "3")]).unwrap();
        }
        let reopened = WalBackend::open(&dir, 2).unwrap();
        assert_eq!(reopened.snapshot_seq(), 2);
        assert_eq!(reopened.commit_seq(), 3);
        assert_eq!(reopened.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_loses_only_the_interrupted_commit() {
        let dir = temp_dir("torn");
        let (mid_root, full_len) = {
            let mut wal = WalBackend::open(&dir, 1_000).unwrap();
            wal.commit(&[put("a", "1")]).unwrap();
            let mid = wal.root();
            wal.commit(&[put("b", "2")]).unwrap();
            (mid, std::fs::metadata(dir.join("wal.bin")).unwrap().len())
        };
        // Chop 3 bytes off the second record: it must be dropped whole.
        let log_path = dir.join("wal.bin");
        let log = OpenOptions::new().write(true).open(&log_path).unwrap();
        log.set_len(full_len - 3).unwrap();
        drop(log);
        let reopened = WalBackend::open(&dir, 1_000).unwrap();
        assert_eq!(reopened.commit_seq(), 1, "partial record must not apply");
        assert_eq!(reopened.get(b"b"), None);
        assert_eq!(reopened.root(), mid_root);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_flipped_byte_stops_replay_at_prefix() {
        let dir = temp_dir("flip");
        {
            let mut wal = WalBackend::open(&dir, 1_000).unwrap();
            wal.commit(&[put("a", "1")]).unwrap();
            wal.commit(&[put("b", "2")]).unwrap();
        }
        let log_path = dir.join("wal.bin");
        let mut bytes = std::fs::read(&log_path).unwrap();
        let mid = bytes.len() / 2 + 4; // inside the second record
        bytes[mid] ^= 0xFF;
        std::fs::write(&log_path, &bytes).unwrap();
        let reopened = WalBackend::open(&dir, 1_000).unwrap();
        assert_eq!(reopened.commit_seq(), 1);
        assert_eq!(reopened.get(b"a"), Some(b"1".to_vec()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn appends_after_torn_recovery_stay_intact() {
        let dir = temp_dir("resume");
        {
            let mut wal = WalBackend::open(&dir, 1_000).unwrap();
            wal.commit(&[put("a", "1")]).unwrap();
            wal.commit(&[put("b", "2")]).unwrap();
        }
        let log_path = dir.join("wal.bin");
        let len = std::fs::metadata(&log_path).unwrap().len();
        OpenOptions::new().write(true).open(&log_path).unwrap().set_len(len - 1).unwrap();
        {
            let mut wal = WalBackend::open(&dir, 1_000).unwrap();
            assert_eq!(wal.commit_seq(), 1);
            wal.commit(&[put("c", "3")]).unwrap();
        }
        let reopened = WalBackend::open(&dir, 1_000).unwrap();
        assert_eq!(reopened.commit_seq(), 2);
        assert_eq!(reopened.get(b"c"), Some(b"3".to_vec()));
        assert_eq!(reopened.get(b"b"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
