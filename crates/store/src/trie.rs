//! Copy-on-write binary Merkle trie over `sha256(key)` paths.
//!
//! Each key is addressed by the bit string of its SHA-256 hash. A leaf
//! sits at the shallowest depth where its hash prefix is unique, so with
//! hashed (uniformly distributed) keys the expected path length is
//! `log2(n)`, not 256. The structure is *canonical*: the shape — and
//! therefore the root — is a pure function of the entry set, which is
//! what lets the non-trie backends recompute the identical commitment
//! from scratch ([`scratch_root`]) and lets deletions restore exactly
//! the shape an insert-only build would have produced.
//!
//! Hash rules (domain-separated):
//!
//! ```text
//! leaf   = sha256(0x00 ‖ key_hash ‖ value_hash)      value_hash = sha256(value)
//! branch = sha256(0x01 ‖ left ‖ right)               absent child = 32 zero bytes
//! empty trie root = 32 zero bytes
//! ```
//!
//! Nodes are immutable and shared behind `Arc`: an insert or delete
//! clones only the path from the root to the touched leaf (copy-on-write),
//! so commits are `O(k · log n)` and historical snapshots are cheap.
//!
//! [`TrieBackend::prove`] produces inclusion proofs for present keys and
//! two kinds of exclusion proof for absent ones (the search path ends in
//! an empty slot, or in a leaf for a *different* key that owns the
//! shared prefix). [`verify_proof`] checks either against a bare root —
//! the light-client side of the paper's proof-of-location story needs
//! nothing else.

use crate::{BatchEntry, StateBackend, StoreError};
use pol_crypto::sha256;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The root commitment of an empty trie.
pub const EMPTY_ROOT: [u8; 32] = [0u8; 32];

/// Bit `depth` (big-endian, MSB-first) of a 32-byte hash.
fn bit(hash: &[u8; 32], depth: usize) -> bool {
    (hash[depth / 8] >> (7 - depth % 8)) & 1 == 1
}

/// `sha256(0x00 ‖ key_hash ‖ value_hash)` — the leaf commitment.
fn leaf_hash(key_hash: &[u8; 32], value_hash: &[u8; 32]) -> [u8; 32] {
    let mut buf = [0u8; 65];
    buf[1..33].copy_from_slice(key_hash);
    buf[33..65].copy_from_slice(value_hash);
    sha256(&buf)
}

/// `sha256(0x01 ‖ left ‖ right)` — the branch commitment.
fn branch_hash(left: &[u8; 32], right: &[u8; 32]) -> [u8; 32] {
    let mut buf = [0u8; 65];
    buf[0] = 1;
    buf[1..33].copy_from_slice(left);
    buf[33..65].copy_from_slice(right);
    sha256(&buf)
}

#[derive(Debug)]
enum Node {
    Leaf { key_hash: [u8; 32], value_hash: [u8; 32], hash: [u8; 32] },
    Branch { left: Option<Arc<Node>>, right: Option<Arc<Node>>, hash: [u8; 32] },
}

impl Node {
    fn leaf(key_hash: [u8; 32], value_hash: [u8; 32]) -> Node {
        let hash = leaf_hash(&key_hash, &value_hash);
        Node::Leaf { key_hash, value_hash, hash }
    }

    fn branch(left: Option<Arc<Node>>, right: Option<Arc<Node>>) -> Node {
        let hash = branch_hash(&child_hash(&left), &child_hash(&right));
        Node::Branch { left, right, hash }
    }

    fn hash(&self) -> [u8; 32] {
        match self {
            Node::Leaf { hash, .. } | Node::Branch { hash, .. } => *hash,
        }
    }

    fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    fn key_hash(&self) -> [u8; 32] {
        match self {
            Node::Leaf { key_hash, .. } => *key_hash,
            Node::Branch { .. } => unreachable!("key_hash of a branch"),
        }
    }
}

fn child_hash(child: &Option<Arc<Node>>) -> [u8; 32] {
    child.as_ref().map(|n| n.hash()).unwrap_or(EMPTY_ROOT)
}

/// Places two leaves with distinct key hashes under one subtree rooted
/// at `depth`, descending until their paths diverge.
fn join(depth: usize, a: Arc<Node>, b: Arc<Node>) -> Arc<Node> {
    assert!(depth < 256, "state key hash collision");
    let (ka, kb) = (a.key_hash(), b.key_hash());
    match (bit(&ka, depth), bit(&kb, depth)) {
        (false, false) => Arc::new(Node::branch(Some(join(depth + 1, a, b)), None)),
        (true, true) => Arc::new(Node::branch(None, Some(join(depth + 1, a, b)))),
        (false, true) => Arc::new(Node::branch(Some(a), Some(b))),
        (true, false) => Arc::new(Node::branch(Some(b), Some(a))),
    }
}

/// Copy-on-write insert/update of `(key_hash → value_hash)`.
fn insert(slot: Option<Arc<Node>>, depth: usize, kh: [u8; 32], vh: [u8; 32]) -> Arc<Node> {
    match slot {
        None => Arc::new(Node::leaf(kh, vh)),
        Some(node) => match &*node {
            Node::Leaf { key_hash, .. } if *key_hash == kh => Arc::new(Node::leaf(kh, vh)),
            Node::Leaf { .. } => join(depth, node.clone(), Arc::new(Node::leaf(kh, vh))),
            Node::Branch { left, right, .. } => {
                let (mut l, mut r) = (left.clone(), right.clone());
                if bit(&kh, depth) {
                    r = Some(insert(r, depth + 1, kh, vh));
                } else {
                    l = Some(insert(l, depth + 1, kh, vh));
                }
                Arc::new(Node::branch(l, r))
            }
        },
    }
}

/// Copy-on-write delete; returns the replacement subtree and whether
/// anything changed. Collapses single-leaf branches on the way up so the
/// shape stays canonical (a leaf always sits at the shallowest depth
/// where its prefix is unique).
fn remove(slot: Option<Arc<Node>>, depth: usize, kh: &[u8; 32]) -> (Option<Arc<Node>>, bool) {
    match slot {
        None => (None, false),
        Some(node) => match &*node {
            Node::Leaf { key_hash, .. } => {
                if key_hash == kh {
                    (None, true)
                } else {
                    (Some(node.clone()), false)
                }
            }
            Node::Branch { left, right, .. } => {
                let goes_right = bit(kh, depth);
                let (child, other) =
                    if goes_right { (right.clone(), left) } else { (left.clone(), right) };
                let (new_child, changed) = remove(child, depth + 1, kh);
                if !changed {
                    return (Some(node.clone()), false);
                }
                let replacement = match (&new_child, other) {
                    // Subtree emptied and the sibling is a lone leaf (or
                    // absent): lift it — a branch only exists where at
                    // least two keys share the prefix.
                    (None, None) => None,
                    (None, Some(sib)) if sib.is_leaf() => Some(sib.clone()),
                    (Some(c), None) if c.is_leaf() => Some(c.clone()),
                    _ => {
                        let (l, r) = if goes_right {
                            (other.clone(), new_child)
                        } else {
                            (new_child, other.clone())
                        };
                        Some(Arc::new(Node::branch(l, r)))
                    }
                };
                (replacement, true)
            }
        },
    }
}

/// The canonical trie root over an arbitrary entry set, built from
/// scratch in `O(n log n)`: this is the commitment definition every
/// backend's [`StateBackend::root`] must agree with. `leaves` yields
/// `(sha256(key), sha256(value))` pairs in any order.
pub fn scratch_root<I: IntoIterator<Item = ([u8; 32], [u8; 32])>>(leaves: I) -> [u8; 32] {
    let mut hashed: Vec<([u8; 32], [u8; 32])> =
        leaves.into_iter().map(|(kh, vh)| (kh, leaf_hash(&kh, &vh))).collect();
    hashed.sort_unstable_by_key(|a| a.0);
    build(&hashed, 0)
}

fn build(leaves: &[([u8; 32], [u8; 32])], depth: usize) -> [u8; 32] {
    match leaves.len() {
        0 => EMPTY_ROOT,
        1 => leaves[0].1,
        _ => {
            assert!(depth < 256, "state key hash collision");
            // Sorted by hash ⇒ sorted by bit path: one partition point
            // splits the zero-bit prefix from the one-bit suffix.
            let split = leaves.partition_point(|(kh, _)| !bit(kh, depth));
            branch_hash(&build(&leaves[..split], depth + 1), &build(&leaves[split..], depth + 1))
        }
    }
}

/// What a [`MerkleProof`] asserts about its key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofClaim {
    /// The key is present and maps to these value bytes.
    Present(Vec<u8>),
    /// The key is absent: its search path ends in an empty slot.
    AbsentEmpty,
    /// The key is absent: its search path ends at the leaf of a
    /// *different* key that owns the shared prefix.
    AbsentLeaf {
        /// `sha256(key)` of the leaf actually occupying the path.
        other_key_hash: [u8; 32],
        /// `sha256(value)` of that leaf.
        other_value_hash: [u8; 32],
    },
}

/// A Merkle inclusion/exclusion proof, verifiable against a bare root
/// by [`verify_proof`]. `siblings[i]` is the hash of the sibling subtree
/// at depth `i + 1` (absent sibling = 32 zero bytes); the bit path comes
/// from the key being proven, so it is not stored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// The claim being proven.
    pub claim: ProofClaim,
    /// Sibling hashes from the root down to the terminal slot.
    pub siblings: Vec<[u8; 32]>,
}

impl MerkleProof {
    /// Canonical byte encoding (what a light client would receive).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match &self.claim {
            ProofClaim::Present(value) => {
                out.push(1);
                out.extend_from_slice(&(value.len() as u32).to_be_bytes());
                out.extend_from_slice(value);
            }
            ProofClaim::AbsentEmpty => out.push(2),
            ProofClaim::AbsentLeaf { other_key_hash, other_value_hash } => {
                out.push(3);
                out.extend_from_slice(other_key_hash);
                out.extend_from_slice(other_value_hash);
            }
        }
        out.extend_from_slice(&(self.siblings.len() as u16).to_be_bytes());
        for sibling in &self.siblings {
            out.extend_from_slice(sibling);
        }
        out
    }

    /// Strict inverse of [`MerkleProof::encode`]: every byte must be
    /// consumed and every length must be exact.
    ///
    /// # Errors
    ///
    /// [`ProofError::Malformed`] on any framing violation.
    pub fn decode(bytes: &[u8]) -> Result<MerkleProof, ProofError> {
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Result<&[u8], ProofError> {
            let end = at.checked_add(n).ok_or(ProofError::Malformed("length overflow"))?;
            let slice =
                bytes.get(*at..end).ok_or(ProofError::Malformed("truncated proof encoding"))?;
            *at = end;
            Ok(slice)
        };
        let tag = take(&mut at, 1)?[0];
        let claim = match tag {
            1 => {
                let len =
                    u32::from_be_bytes(take(&mut at, 4)?.try_into().expect("4 bytes")) as usize;
                ProofClaim::Present(take(&mut at, len)?.to_vec())
            }
            2 => ProofClaim::AbsentEmpty,
            3 => {
                let okh: [u8; 32] = take(&mut at, 32)?.try_into().expect("32 bytes");
                let ovh: [u8; 32] = take(&mut at, 32)?.try_into().expect("32 bytes");
                ProofClaim::AbsentLeaf { other_key_hash: okh, other_value_hash: ovh }
            }
            _ => return Err(ProofError::Malformed("unknown claim tag")),
        };
        let count = u16::from_be_bytes(take(&mut at, 2)?.try_into().expect("2 bytes")) as usize;
        if count > 256 {
            return Err(ProofError::Malformed("sibling path longer than 256"));
        }
        let mut siblings = Vec::with_capacity(count);
        for _ in 0..count {
            siblings.push(take(&mut at, 32)?.try_into().expect("32 bytes"));
        }
        if at != bytes.len() {
            return Err(ProofError::Malformed("trailing bytes after proof"));
        }
        Ok(MerkleProof { claim, siblings })
    }
}

/// Why a proof failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofError {
    /// The recomputed root does not match the trusted root.
    RootMismatch,
    /// Framing/structure violation.
    Malformed(&'static str),
    /// An exclusion-by-leaf proof whose leaf does not share the absent
    /// key's path prefix.
    PrefixMismatch,
    /// An exclusion-by-leaf proof whose leaf *is* the key it claims
    /// absent.
    SameKey,
}

impl std::fmt::Display for ProofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofError::RootMismatch => write!(f, "recomputed root does not match"),
            ProofError::Malformed(msg) => write!(f, "malformed proof: {msg}"),
            ProofError::PrefixMismatch => write!(f, "exclusion leaf off the key's path"),
            ProofError::SameKey => write!(f, "exclusion leaf is the key itself"),
        }
    }
}

impl std::error::Error for ProofError {}

/// Verifies `proof` for `key` against `root` with no other state — the
/// standalone light-client check. Returns the proven value for an
/// inclusion proof, `None` for a valid exclusion proof.
///
/// # Errors
///
/// Any [`ProofError`] when the proof does not bind `key` to `root`.
pub fn verify_proof(
    root: &[u8; 32],
    key: &[u8],
    proof: &MerkleProof,
) -> Result<Option<Vec<u8>>, ProofError> {
    let kh = sha256(key);
    let depth = proof.siblings.len();
    if depth > 256 {
        return Err(ProofError::Malformed("sibling path longer than 256"));
    }
    let mut cur = match &proof.claim {
        ProofClaim::Present(value) => leaf_hash(&kh, &sha256(value)),
        ProofClaim::AbsentEmpty => EMPTY_ROOT,
        ProofClaim::AbsentLeaf { other_key_hash, other_value_hash } => {
            if *other_key_hash == kh {
                return Err(ProofError::SameKey);
            }
            // The occupying leaf must sit on the absent key's path: its
            // hash shares the first `depth` bits.
            if (0..depth).any(|i| bit(other_key_hash, i) != bit(&kh, i)) {
                return Err(ProofError::PrefixMismatch);
            }
            leaf_hash(other_key_hash, other_value_hash)
        }
    };
    for i in (0..depth).rev() {
        let sibling = &proof.siblings[i];
        cur = if bit(&kh, i) { branch_hash(sibling, &cur) } else { branch_hash(&cur, sibling) };
    }
    if cur != *root {
        return Err(ProofError::RootMismatch);
    }
    Ok(match &proof.claim {
        ProofClaim::Present(value) => Some(value.clone()),
        _ => None,
    })
}

/// The copy-on-write Merkle trie backend: incremental `O(k log n)` root
/// maintenance per commit plus inclusion/exclusion proofs. A plain
/// sorted map serves point reads and iteration; the trie carries the
/// commitment.
#[derive(Debug, Default, Clone)]
pub struct TrieBackend {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    root: Option<Arc<Node>>,
}

impl TrieBackend {
    /// An empty trie.
    pub fn new() -> TrieBackend {
        TrieBackend::default()
    }

    /// An inclusion proof for a present `key`, or an exclusion proof for
    /// an absent one — always succeeds.
    pub fn prove_key(&self, key: &[u8]) -> MerkleProof {
        let kh = sha256(key);
        let mut siblings = Vec::new();
        let mut cursor = self.root.clone();
        let mut depth = 0usize;
        loop {
            match cursor {
                None => return MerkleProof { claim: ProofClaim::AbsentEmpty, siblings },
                Some(node) => match &*node {
                    Node::Leaf { key_hash, value_hash, .. } => {
                        let claim = if *key_hash == kh {
                            let value = self.map.get(key).cloned().expect("map and trie in sync");
                            ProofClaim::Present(value)
                        } else {
                            ProofClaim::AbsentLeaf {
                                other_key_hash: *key_hash,
                                other_value_hash: *value_hash,
                            }
                        };
                        return MerkleProof { claim, siblings };
                    }
                    Node::Branch { left, right, .. } => {
                        if bit(&kh, depth) {
                            siblings.push(child_hash(left));
                            cursor = right.clone();
                        } else {
                            siblings.push(child_hash(right));
                            cursor = left.clone();
                        }
                        depth += 1;
                    }
                },
            }
        }
    }
}

impl StateBackend for TrieBackend {
    fn name(&self) -> &'static str {
        "trie"
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.map.get(key).cloned()
    }

    fn commit(&mut self, batch: &[BatchEntry]) -> Result<(), StoreError> {
        for (key, value) in batch {
            let kh = sha256(key);
            match value {
                Some(v) => {
                    self.root = Some(insert(self.root.take(), 0, kh, sha256(v)));
                    self.map.insert(key.clone(), v.clone());
                }
                None => {
                    let (root, _) = remove(self.root.take(), 0, &kh);
                    self.root = root;
                    self.map.remove(key);
                }
            }
        }
        Ok(())
    }

    fn root(&self) -> [u8; 32] {
        child_hash(&self.root)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn entries(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.map.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    fn prove(&self, key: &[u8]) -> Option<MerkleProof> {
        Some(self.prove_key(key))
    }

    fn snapshot_backend(&self) -> Box<dyn StateBackend> {
        Box::new(self.clone())
    }
}

/// Convenience: the scratch root over a plain byte map (what the
/// non-trie backends use to implement [`StateBackend::root`]).
pub(crate) fn map_root(map: &BTreeMap<Vec<u8>, Vec<u8>>) -> [u8; 32] {
    scratch_root(map.iter().map(|(k, v)| (sha256(k), sha256(v))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(i: u32) -> (Vec<u8>, Vec<u8>) {
        (format!("key-{i}").into_bytes(), format!("value-{i}").into_bytes())
    }

    #[test]
    fn empty_root_is_zero_and_single_leaf_matches_scratch() {
        let mut trie = TrieBackend::new();
        assert_eq!(trie.root(), EMPTY_ROOT);
        let (k, v) = kv(1);
        trie.commit(&[(k.clone(), Some(v.clone()))]).unwrap();
        assert_eq!(trie.root(), scratch_root([(sha256(&k), sha256(&v))]));
    }

    #[test]
    fn incremental_root_matches_scratch_build_under_churn() {
        let mut trie = TrieBackend::new();
        let mut model = BTreeMap::new();
        for i in 0..200u32 {
            let (k, v) = kv(i);
            trie.commit(&[(k.clone(), Some(v.clone()))]).unwrap();
            model.insert(k, v);
            if i % 3 == 0 {
                let (dk, _) = kv(i / 2);
                trie.commit(&[(dk.clone(), None)]).unwrap();
                model.remove(&dk);
            }
            if i % 7 == 0 {
                // Overwrite an existing key with a new value.
                let (ok, _) = kv(i.saturating_sub(1));
                if model.contains_key(&ok) {
                    let nv = format!("updated-{i}").into_bytes();
                    trie.commit(&[(ok.clone(), Some(nv.clone()))]).unwrap();
                    model.insert(ok, nv);
                }
            }
            assert_eq!(trie.root(), map_root(&model), "divergence after op {i}");
            assert_eq!(trie.len(), model.len());
        }
    }

    #[test]
    fn inclusion_and_exclusion_proofs_verify() {
        let mut trie = TrieBackend::new();
        for i in 0..64u32 {
            let (k, v) = kv(i);
            trie.commit(&[(k, Some(v))]).unwrap();
        }
        let root = trie.root();
        for i in 0..64u32 {
            let (k, v) = kv(i);
            let proof = trie.prove_key(&k);
            assert!(matches!(proof.claim, ProofClaim::Present(_)));
            assert_eq!(verify_proof(&root, &k, &proof).unwrap(), Some(v));
        }
        for i in 100..164u32 {
            let (k, _) = kv(i);
            let proof = trie.prove_key(&k);
            assert!(!matches!(proof.claim, ProofClaim::Present(_)));
            assert_eq!(verify_proof(&root, &k, &proof).unwrap(), None);
        }
    }

    #[test]
    fn proof_encoding_round_trips() {
        let mut trie = TrieBackend::new();
        for i in 0..16u32 {
            let (k, v) = kv(i);
            trie.commit(&[(k, Some(v))]).unwrap();
        }
        for i in [0u32, 5, 15, 999] {
            let (k, _) = kv(i);
            let proof = trie.prove_key(&k);
            let decoded = MerkleProof::decode(&proof.encode()).unwrap();
            assert_eq!(decoded, proof);
            assert!(verify_proof(&trie.root(), &k, &decoded).is_ok());
        }
    }

    #[test]
    fn wrong_value_or_wrong_root_rejected() {
        let mut trie = TrieBackend::new();
        let (k, v) = kv(1);
        trie.commit(&[(k.clone(), Some(v))]).unwrap();
        let root = trie.root();
        let mut proof = trie.prove_key(&k);
        if let ProofClaim::Present(value) = &mut proof.claim {
            value[0] ^= 1;
        }
        assert_eq!(verify_proof(&root, &k, &proof), Err(ProofError::RootMismatch));
        let good = trie.prove_key(&k);
        let mut bad_root = root;
        bad_root[31] ^= 0x80;
        assert_eq!(verify_proof(&bad_root, &k, &good), Err(ProofError::RootMismatch));
    }

    #[test]
    fn snapshot_is_independent() {
        let mut trie = TrieBackend::new();
        let (k, v) = kv(7);
        trie.commit(&[(k.clone(), Some(v))]).unwrap();
        let snap = trie.snapshot_backend();
        let before = snap.root();
        trie.commit(&[(k, None)]).unwrap();
        assert_eq!(snap.root(), before, "snapshot mutated by original");
        assert_ne!(trie.root(), before);
    }
}
