//! Programs and label resolution.

use crate::opcode::AvmOp;
use std::collections::HashMap;

/// An AVM program with resolved branch targets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AvmProgram {
    ops: Vec<AvmOp>,
    /// label id → instruction index.
    labels: HashMap<usize, usize>,
}

impl AvmProgram {
    /// Builds a program, indexing its labels.
    ///
    /// # Panics
    ///
    /// Panics if a label id appears twice — programs are built by the
    /// compiler backend, so this is a codegen bug, not an input error.
    pub fn new(ops: Vec<AvmOp>) -> AvmProgram {
        let mut labels = HashMap::new();
        for (idx, op) in ops.iter().enumerate() {
            if let AvmOp::Label(id) = op {
                let prev = labels.insert(*id, idx);
                assert!(prev.is_none(), "duplicate label {id}");
            }
        }
        AvmProgram { ops, labels }
    }

    /// The instruction list.
    pub fn ops(&self) -> &[AvmOp] {
        &self.ops
    }

    /// Resolves a label to its instruction index.
    pub fn resolve(&self, label: usize) -> Option<usize> {
        self.labels.get(&label).copied()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// The prepared, cache-resident form of an [`AvmProgram`]: per-instruction
/// pre-resolved branch targets and pre-computed cost rows, derived once
/// (via the ledger's `CodeCache`) so the interpreter's hot loop neither
/// probes the label `HashMap` per branch nor re-matches the cost table
/// per op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedAvm {
    /// Per-instruction branch target ([`PreparedAvm::UNRESOLVED`] when
    /// the instruction is not a branch or its label does not exist —
    /// the latter only fails if the branch is actually taken).
    targets: Vec<u32>,
    /// Per-instruction opcode cost (the TEAL cost table, pre-applied).
    costs: Vec<u64>,
}

impl PreparedAvm {
    /// Sentinel for "no target here".
    pub const UNRESOLVED: u32 = u32::MAX;

    /// Derives the prepared rows from a program.
    pub fn prepare(program: &AvmProgram) -> PreparedAvm {
        let targets = program
            .ops()
            .iter()
            .map(|op| match op {
                AvmOp::B(label) | AvmOp::Bz(label) | AvmOp::Bnz(label) => {
                    program.resolve(*label).map_or(PreparedAvm::UNRESOLVED, |idx| idx as u32)
                }
                _ => PreparedAvm::UNRESOLVED,
            })
            .collect();
        let costs = program.ops().iter().map(crate::cost::op_cost).collect();
        PreparedAvm { targets, costs }
    }

    /// The pre-resolved target of the branch at instruction `idx`
    /// (`None` = the branch's label does not exist).
    pub fn branch_target(&self, idx: usize) -> Option<usize> {
        match self.targets[idx] {
            PreparedAvm::UNRESOLVED => None,
            target => Some(target as usize),
        }
    }

    /// The opcode cost of instruction `idx`.
    pub fn cost(&self, idx: usize) -> u64 {
        self.costs[idx]
    }
}

/// Programs are stored in the journaled world state as shared blobs, so
/// speculative executors re-reading an installed app clone an `Arc`, not
/// the instruction list.
impl pol_ledger::StateBlob for AvmProgram {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn blob_eq(&self, other: &dyn pol_ledger::StateBlob) -> bool {
        other.as_any().downcast_ref::<AvmProgram>() == Some(self)
    }

    fn digest_bytes(&self) -> Vec<u8> {
        crate::teal::render(self).into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve() {
        let p = AvmProgram::new(vec![AvmOp::PushInt(1), AvmOp::Label(7), AvmOp::Return]);
        assert_eq!(p.resolve(7), Some(1));
        assert_eq!(p.resolve(8), None);
        assert_eq!(p.len(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_labels_panic() {
        let _ = AvmProgram::new(vec![AvmOp::Label(1), AvmOp::Label(1)]);
    }
}
