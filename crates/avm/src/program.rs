//! Programs and label resolution.

use crate::opcode::AvmOp;
use std::collections::HashMap;

/// An AVM program with resolved branch targets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AvmProgram {
    ops: Vec<AvmOp>,
    /// label id → instruction index.
    labels: HashMap<usize, usize>,
}

impl AvmProgram {
    /// Builds a program, indexing its labels.
    ///
    /// # Panics
    ///
    /// Panics if a label id appears twice — programs are built by the
    /// compiler backend, so this is a codegen bug, not an input error.
    pub fn new(ops: Vec<AvmOp>) -> AvmProgram {
        let mut labels = HashMap::new();
        for (idx, op) in ops.iter().enumerate() {
            if let AvmOp::Label(id) = op {
                let prev = labels.insert(*id, idx);
                assert!(prev.is_none(), "duplicate label {id}");
            }
        }
        AvmProgram { ops, labels }
    }

    /// The instruction list.
    pub fn ops(&self) -> &[AvmOp] {
        &self.ops
    }

    /// Resolves a label to its instruction index.
    pub fn resolve(&self, label: usize) -> Option<usize> {
        self.labels.get(&label).copied()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Programs are stored in the journaled world state as shared blobs, so
/// speculative executors re-reading an installed app clone an `Arc`, not
/// the instruction list.
impl pol_ledger::StateBlob for AvmProgram {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn blob_eq(&self, other: &dyn pol_ledger::StateBlob) -> bool {
        other.as_any().downcast_ref::<AvmProgram>() == Some(self)
    }

    fn digest_bytes(&self) -> Vec<u8> {
        crate::teal::render(self).into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve() {
        let p = AvmProgram::new(vec![AvmOp::PushInt(1), AvmOp::Label(7), AvmOp::Return]);
        assert_eq!(p.resolve(7), Some(1));
        assert_eq!(p.resolve(8), None);
        assert_eq!(p.len(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_labels_panic() {
        let _ = AvmProgram::new(vec![AvmOp::Label(1), AvmOp::Label(1)]);
    }
}
