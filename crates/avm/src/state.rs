//! Application state: typed values, global state and boxes.

use std::collections::HashMap;

/// A TEAL stack/state value: the AVM is bi-typed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TealValue {
    /// A 64-bit unsigned integer.
    Uint(u64),
    /// An octet string (up to 4 KiB on the real AVM).
    Bytes(Vec<u8>),
}

impl TealValue {
    /// The integer value.
    ///
    /// # Errors
    ///
    /// Returns `None` for byte values.
    pub fn as_uint(&self) -> Option<u64> {
        match self {
            TealValue::Uint(v) => Some(*v),
            TealValue::Bytes(_) => None,
        }
    }

    /// The byte value.
    ///
    /// # Errors
    ///
    /// Returns `None` for integer values.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            TealValue::Bytes(b) => Some(b),
            TealValue::Uint(_) => None,
        }
    }
}

/// Persistent state of one application.
#[derive(Debug, Clone, Default)]
pub struct AppState {
    /// The approval program.
    pub program: crate::program::AvmProgram,
    /// Global key-value state.
    pub global: HashMap<Vec<u8>, TealValue>,
    /// Box storage (the map the contract keeps per prover DID).
    pub boxes: HashMap<Vec<u8>, Vec<u8>>,
    /// Creator address.
    pub creator: pol_ledger::Address,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(TealValue::Uint(7).as_uint(), Some(7));
        assert_eq!(TealValue::Uint(7).as_bytes(), None);
        let b = TealValue::Bytes(vec![1, 2]);
        assert_eq!(b.as_bytes(), Some(&[1u8, 2][..]));
        assert_eq!(b.as_uint(), None);
    }
}
