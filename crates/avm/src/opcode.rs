//! The AVM instruction set (assembly-level, TEAL-style).

/// One AVM instruction.
///
/// Branch targets reference [`crate::program::AvmProgram`] label indices,
/// resolved when the program is built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AvmOp {
    /// Push an integer constant.
    PushInt(u64),
    /// Push a byte-string constant.
    PushBytes(Vec<u8>),
    /// Pop two ints, push their sum.
    ///
    /// # Panics (at run time → [`crate::AvmError::Arithmetic`])
    ///
    /// Overflow rejects the program, as on the real AVM.
    Add,
    /// Pop two ints, push the difference (underflow rejects).
    Sub,
    /// Pop two ints, push the product (overflow rejects).
    Mul,
    /// Pop two ints, push the quotient (division by zero rejects).
    Div,
    /// Pop two ints, push the remainder (modulo zero rejects).
    Mod,
    /// Pop two ints, push `a < b`.
    Lt,
    /// Pop two ints, push `a > b`.
    Gt,
    /// Pop two ints, push `a <= b`.
    Le,
    /// Pop two ints, push `a >= b`.
    Ge,
    /// Pop two values (same type), push equality as 0/1.
    Eq,
    /// Pop two values (same type), push inequality as 0/1.
    Ne,
    /// Pop two ints, push logical AND.
    AndL,
    /// Pop two ints, push logical OR.
    OrL,
    /// Pop an int, push logical NOT.
    NotL,
    /// Pop bytes, push SHA-256 digest.
    Sha256,
    /// Pop bytes, push Keccak-256 digest.
    Keccak256,
    /// Pop two byte strings, push their concatenation.
    Concat,
    /// Pop bytes, push length as int.
    Len,
    /// Pop an int, push its 8-byte big-endian encoding.
    Itob,
    /// Pop 8 bytes, push the big-endian integer.
    Btoi,
    /// Duplicate the top of stack.
    Dup,
    /// Swap the top two values.
    Swap,
    /// Discard the top of stack.
    Pop,
    /// Store top of stack into scratch slot.
    Store(u8),
    /// Load scratch slot onto the stack.
    Load(u8),
    /// Push a transaction field.
    Txn(TxnField),
    /// Push application argument `i` (bytes).
    TxnArg(u8),
    /// Push a global field.
    Global(GlobalField),
    /// Unconditional branch to label.
    B(usize),
    /// Pop an int; branch if zero.
    Bz(usize),
    /// Pop an int; branch if non-zero.
    Bnz(usize),
    /// Label marker (no-op; branch target).
    Label(usize),
    /// Pop an int; reject the call if it is zero.
    Assert,
    /// Pop key and value; write application global state.
    AppGlobalPut,
    /// Pop key; push global state value (or 0-int if absent) then a
    /// presence flag — `app_global_get_ex` semantics.
    AppGlobalGet,
    /// Pop key and value (bytes); write a box.
    BoxPut,
    /// Pop key; push box contents and a presence flag.
    BoxGet,
    /// Pop key; delete a box, pushing whether it existed.
    BoxDel,
    /// Pop receiver (bytes, 20-byte address) and amount; pay out of the
    /// application account (an inner transaction).
    InnerPay,
    /// Pop bytes; append to the call's log.
    Log,
    /// Push the application account's balance (µAlgo).
    AppBalance,
    /// Pop an int; halt, approving iff non-zero.
    Return,
}

/// Transaction fields exposed to programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnField {
    /// The call's sender address (bytes).
    Sender,
    /// The called application id (0 during creation).
    ApplicationId,
    /// Number of application arguments.
    NumAppArgs,
    /// µAlgo payment grouped with the call.
    Amount,
}

/// Global fields exposed to programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalField {
    /// Current round.
    Round,
    /// Latest block timestamp (seconds).
    LatestTimestamp,
    /// The executing application's id.
    CurrentApplicationId,
}
