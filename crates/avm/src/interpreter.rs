//! The AVM interpreter and application ledger.

use crate::cost::{self, CALL_BUDGET};
use crate::opcode::{AvmOp, GlobalField, TxnField};
use crate::program::AvmProgram;
use crate::state::{AppState, TealValue};
use pol_crypto::{keccak256, sha256};
use pol_ledger::Address;
use std::collections::HashMap;

/// Machine-level failures. Program *rejection* is not an error — it is a
/// normal [`AppOutcome`] with `approved == false`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AvmError {
    /// Call target does not exist.
    UnknownApp(u64),
    /// Pop on an empty stack.
    StackError,
    /// An operand had the wrong TEAL type.
    TypeError(&'static str),
    /// Overflow, underflow or division by zero.
    Arithmetic(&'static str),
    /// The per-call opcode budget was exhausted.
    BudgetExceeded {
        /// The budget in force.
        budget: u64,
    },
    /// Branch to an unknown label.
    BadBranch(usize),
    /// The grouped payment exceeds the sender's balance.
    InsufficientPayment,
    /// Creation program rejected.
    CreateRejected,
}

impl std::fmt::Display for AvmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AvmError::UnknownApp(id) => write!(f, "unknown application {id}"),
            AvmError::StackError => write!(f, "stack underflow"),
            AvmError::TypeError(msg) => write!(f, "type error: {msg}"),
            AvmError::Arithmetic(msg) => write!(f, "arithmetic error: {msg}"),
            AvmError::BudgetExceeded { budget } => write!(f, "opcode budget {budget} exceeded"),
            AvmError::BadBranch(l) => write!(f, "branch to unknown label {l}"),
            AvmError::InsufficientPayment => write!(f, "insufficient balance for payment"),
            AvmError::CreateRejected => write!(f, "creation program rejected"),
        }
    }
}

impl std::error::Error for AvmError {}

/// Parameters of an application call.
#[derive(Debug, Clone)]
pub struct AppCallParams {
    /// The calling account.
    pub sender: Address,
    /// Application to call (`0` only internally, during creation).
    pub app_id: u64,
    /// Application arguments.
    pub args: Vec<Vec<u8>>,
    /// µAlgo payment grouped with the call (credited to the app account).
    pub payment: u64,
    /// Current round.
    pub round: u64,
    /// Latest block timestamp, seconds.
    pub timestamp_s: u64,
}

impl AppCallParams {
    /// Builds default parameters for calling `app_id` from `sender`.
    pub fn new(sender: Address, app_id: u64) -> AppCallParams {
        AppCallParams { sender, app_id, args: Vec::new(), payment: 0, round: 1, timestamp_s: 1 }
    }

    /// Sets the application arguments (builder style).
    pub fn with_args(mut self, args: Vec<Vec<u8>>) -> AppCallParams {
        self.args = args;
        self
    }

    /// Sets the grouped payment (builder style).
    pub fn with_payment(mut self, payment: u64) -> AppCallParams {
        self.payment = payment;
        self
    }
}

/// Result of an application call.
#[derive(Debug, Clone)]
pub struct AppOutcome {
    /// Whether the approval program approved.
    pub approved: bool,
    /// Opcode budget consumed.
    pub cost: u64,
    /// `log` records emitted.
    pub logs: Vec<Vec<u8>>,
    /// Inner payments executed (receiver, µAlgo).
    pub inner_payments: Vec<(Address, u64)>,
}

/// The AVM application ledger.
#[derive(Debug, Default)]
pub struct Avm {
    apps: HashMap<u64, AppState>,
    next_app_id: u64,
}

/// µAlgo balances, threaded through calls by the chain simulator.
pub type Balances = HashMap<Address, u128>;

impl Avm {
    /// Creates an empty ledger.
    pub fn new() -> Avm {
        Avm { apps: HashMap::new(), next_app_id: 1 }
    }

    /// Number of created applications.
    pub fn app_count(&self) -> usize {
        self.apps.len()
    }

    /// The escrow address of an application account.
    pub fn app_address(app_id: u64) -> Address {
        let mut preimage = b"algorand-app".to_vec();
        preimage.extend_from_slice(&app_id.to_be_bytes());
        let digest = keccak256(&preimage);
        let mut out = [0u8; 20];
        out.copy_from_slice(&digest[12..]);
        Address(out)
    }

    /// Reads a global state value.
    pub fn global(&self, app_id: u64, key: &[u8]) -> Option<TealValue> {
        self.apps.get(&app_id).and_then(|a| a.global.get(key).cloned())
    }

    /// Reads a box.
    pub fn box_value(&self, app_id: u64, key: &[u8]) -> Option<Vec<u8>> {
        self.apps.get(&app_id).and_then(|a| a.boxes.get(key).cloned())
    }

    /// Number of boxes held by an app.
    pub fn box_count(&self, app_id: u64) -> usize {
        self.apps.get(&app_id).map_or(0, |a| a.boxes.len())
    }

    /// Creates an application: runs `program` once with
    /// `ApplicationID == 0` (creation semantics); if it approves, the app
    /// is installed and its id returned.
    ///
    /// # Errors
    ///
    /// Machine errors, or [`AvmError::CreateRejected`] if the creation run
    /// rejects.
    pub fn create_app(
        &mut self,
        creator: Address,
        program: AvmProgram,
        balances: &mut Balances,
    ) -> Result<u64, AvmError> {
        self.create_app_with_args(creator, program, Vec::new(), balances)
    }

    /// [`Avm::create_app`] with creation arguments (constructor values).
    ///
    /// # Errors
    ///
    /// Same as [`Avm::create_app`].
    pub fn create_app_with_args(
        &mut self,
        creator: Address,
        program: AvmProgram,
        args: Vec<Vec<u8>>,
        balances: &mut Balances,
    ) -> Result<u64, AvmError> {
        let app_id = self.next_app_id;
        let state = AppState { program, global: HashMap::new(), boxes: HashMap::new(), creator };
        self.apps.insert(app_id, state);
        let params =
            AppCallParams { sender: creator, app_id, args, payment: 0, round: 1, timestamp_s: 1 };
        match self.run(&params, true, balances) {
            Ok(outcome) if outcome.approved => {
                self.next_app_id += 1;
                Ok(app_id)
            }
            Ok(_) => {
                self.apps.remove(&app_id);
                Err(AvmError::CreateRejected)
            }
            Err(e) => {
                self.apps.remove(&app_id);
                Err(e)
            }
        }
    }

    /// Executes an application call. State changes and inner payments are
    /// rolled back when the program rejects.
    ///
    /// # Errors
    ///
    /// Machine errors ([`AvmError`]); rejection is NOT an error.
    pub fn call(
        &mut self,
        params: AppCallParams,
        balances: &mut Balances,
    ) -> Result<AppOutcome, AvmError> {
        if !self.apps.contains_key(&params.app_id) {
            return Err(AvmError::UnknownApp(params.app_id));
        }
        self.run(&params, false, balances)
    }

    fn run(
        &mut self,
        params: &AppCallParams,
        creating: bool,
        balances: &mut Balances,
    ) -> Result<AppOutcome, AvmError> {
        let app_address = Avm::app_address(params.app_id);
        let state_snapshot = self.apps[&params.app_id].clone();
        let balance_snapshot = balances.clone();
        // Apply the grouped payment first.
        if params.payment > 0 {
            let from = balances.entry(params.sender).or_insert(0);
            if *from < u128::from(params.payment) {
                return Err(AvmError::InsufficientPayment);
            }
            *from -= u128::from(params.payment);
            *balances.entry(app_address).or_insert(0) += u128::from(params.payment);
        }
        let result = self.execute(params, creating, app_address, balances);
        match &result {
            Ok(outcome) if outcome.approved => {}
            _ => {
                // Reject or machine error: roll everything back.
                self.apps.insert(params.app_id, state_snapshot);
                *balances = balance_snapshot;
            }
        }
        result
    }

    #[allow(clippy::too_many_lines)]
    fn execute(
        &mut self,
        params: &AppCallParams,
        creating: bool,
        app_address: Address,
        balances: &mut Balances,
    ) -> Result<AppOutcome, AvmError> {
        let program = self.apps[&params.app_id].program.clone();
        let mut stack: Vec<TealValue> = Vec::with_capacity(16);
        let mut scratch: HashMap<u8, TealValue> = HashMap::new();
        let mut pc = 0usize;
        let mut cost = 0u64;
        let mut logs = Vec::new();
        let mut inner_payments = Vec::new();

        macro_rules! pop {
            () => {
                stack.pop().ok_or(AvmError::StackError)?
            };
        }
        macro_rules! pop_int {
            () => {
                pop!().as_uint().ok_or(AvmError::TypeError("expected uint64"))?
            };
        }
        macro_rules! pop_bytes {
            () => {
                match pop!() {
                    TealValue::Bytes(b) => b,
                    TealValue::Uint(_) => return Err(AvmError::TypeError("expected bytes")),
                }
            };
        }
        macro_rules! branch {
            ($label:expr) => {{
                pc = program.resolve($label).ok_or(AvmError::BadBranch($label))?;
                continue;
            }};
        }

        let ops = program.ops();
        while pc < ops.len() {
            let op = &ops[pc];
            cost += cost::op_cost(op);
            if cost > CALL_BUDGET {
                return Err(AvmError::BudgetExceeded { budget: CALL_BUDGET });
            }
            pc += 1;
            match op {
                AvmOp::PushInt(v) => stack.push(TealValue::Uint(*v)),
                AvmOp::PushBytes(b) => stack.push(TealValue::Bytes(b.clone())),
                AvmOp::Add => {
                    let (b, a) = (pop_int!(), pop_int!());
                    stack.push(TealValue::Uint(
                        a.checked_add(b).ok_or(AvmError::Arithmetic("overflow"))?,
                    ));
                }
                AvmOp::Sub => {
                    let (b, a) = (pop_int!(), pop_int!());
                    stack.push(TealValue::Uint(
                        a.checked_sub(b).ok_or(AvmError::Arithmetic("underflow"))?,
                    ));
                }
                AvmOp::Mul => {
                    let (b, a) = (pop_int!(), pop_int!());
                    stack.push(TealValue::Uint(
                        a.checked_mul(b).ok_or(AvmError::Arithmetic("overflow"))?,
                    ));
                }
                AvmOp::Div => {
                    let (b, a) = (pop_int!(), pop_int!());
                    stack.push(TealValue::Uint(
                        a.checked_div(b).ok_or(AvmError::Arithmetic("division by zero"))?,
                    ));
                }
                AvmOp::Mod => {
                    let (b, a) = (pop_int!(), pop_int!());
                    stack.push(TealValue::Uint(
                        a.checked_rem(b).ok_or(AvmError::Arithmetic("modulo zero"))?,
                    ));
                }
                AvmOp::Lt => cmp_int(&mut stack, |a, b| a < b)?,
                AvmOp::Gt => cmp_int(&mut stack, |a, b| a > b)?,
                AvmOp::Le => cmp_int(&mut stack, |a, b| a <= b)?,
                AvmOp::Ge => cmp_int(&mut stack, |a, b| a >= b)?,
                AvmOp::Eq => {
                    let (b, a) = (pop!(), pop!());
                    stack.push(TealValue::Uint(u64::from(a == b)));
                }
                AvmOp::Ne => {
                    let (b, a) = (pop!(), pop!());
                    stack.push(TealValue::Uint(u64::from(a != b)));
                }
                AvmOp::AndL => cmp_int(&mut stack, |a, b| a != 0 && b != 0)?,
                AvmOp::OrL => cmp_int(&mut stack, |a, b| a != 0 || b != 0)?,
                AvmOp::NotL => {
                    let a = pop_int!();
                    stack.push(TealValue::Uint(u64::from(a == 0)));
                }
                AvmOp::Sha256 => {
                    let b = pop_bytes!();
                    stack.push(TealValue::Bytes(sha256(&b).to_vec()));
                }
                AvmOp::Keccak256 => {
                    let b = pop_bytes!();
                    stack.push(TealValue::Bytes(keccak256(&b).to_vec()));
                }
                AvmOp::Concat => {
                    let b = pop_bytes!();
                    let mut a = pop_bytes!();
                    a.extend_from_slice(&b);
                    stack.push(TealValue::Bytes(a));
                }
                AvmOp::Len => {
                    let b = pop_bytes!();
                    stack.push(TealValue::Uint(b.len() as u64));
                }
                AvmOp::Itob => {
                    let v = pop_int!();
                    stack.push(TealValue::Bytes(v.to_be_bytes().to_vec()));
                }
                AvmOp::Btoi => {
                    let b = pop_bytes!();
                    if b.len() > 8 {
                        return Err(AvmError::TypeError("btoi input longer than 8 bytes"));
                    }
                    let mut buf = [0u8; 8];
                    buf[8 - b.len()..].copy_from_slice(&b);
                    stack.push(TealValue::Uint(u64::from_be_bytes(buf)));
                }
                AvmOp::Dup => {
                    let v = stack.last().ok_or(AvmError::StackError)?.clone();
                    stack.push(v);
                }
                AvmOp::Swap => {
                    let len = stack.len();
                    if len < 2 {
                        return Err(AvmError::StackError);
                    }
                    stack.swap(len - 1, len - 2);
                }
                AvmOp::Pop => {
                    let _ = pop!();
                }
                AvmOp::Store(slot) => {
                    let v = pop!();
                    scratch.insert(*slot, v);
                }
                AvmOp::Load(slot) => {
                    stack.push(scratch.get(slot).cloned().unwrap_or(TealValue::Uint(0)));
                }
                AvmOp::Txn(field) => stack.push(match field {
                    TxnField::Sender => TealValue::Bytes(params.sender.0.to_vec()),
                    TxnField::ApplicationId => {
                        TealValue::Uint(if creating { 0 } else { params.app_id })
                    }
                    TxnField::NumAppArgs => TealValue::Uint(params.args.len() as u64),
                    TxnField::Amount => TealValue::Uint(params.payment),
                }),
                AvmOp::TxnArg(i) => {
                    let arg = params.args.get(*i as usize).cloned().unwrap_or_default();
                    stack.push(TealValue::Bytes(arg));
                }
                AvmOp::Global(field) => stack.push(match field {
                    GlobalField::Round => TealValue::Uint(params.round),
                    GlobalField::LatestTimestamp => TealValue::Uint(params.timestamp_s),
                    GlobalField::CurrentApplicationId => TealValue::Uint(params.app_id),
                }),
                AvmOp::B(l) => branch!(*l),
                AvmOp::Bz(l) => {
                    if pop_int!() == 0 {
                        branch!(*l);
                    }
                }
                AvmOp::Bnz(l) => {
                    if pop_int!() != 0 {
                        branch!(*l);
                    }
                }
                AvmOp::Label(_) => {}
                AvmOp::Assert => {
                    if pop_int!() == 0 {
                        return Ok(AppOutcome { approved: false, cost, logs, inner_payments });
                    }
                }
                AvmOp::AppGlobalPut => {
                    let value = pop!();
                    let key = pop_bytes!();
                    let app = self.apps.get_mut(&params.app_id).expect("checked");
                    app.global.insert(key, value);
                }
                AvmOp::AppGlobalGet => {
                    let key = pop_bytes!();
                    let app = &self.apps[&params.app_id];
                    match app.global.get(&key) {
                        Some(v) => {
                            stack.push(v.clone());
                            stack.push(TealValue::Uint(1));
                        }
                        None => {
                            stack.push(TealValue::Uint(0));
                            stack.push(TealValue::Uint(0));
                        }
                    }
                }
                AvmOp::BoxPut => {
                    let value = pop_bytes!();
                    let key = pop_bytes!();
                    let app = self.apps.get_mut(&params.app_id).expect("checked");
                    app.boxes.insert(key, value);
                }
                AvmOp::BoxGet => {
                    let key = pop_bytes!();
                    let app = &self.apps[&params.app_id];
                    match app.boxes.get(&key) {
                        Some(v) => {
                            stack.push(TealValue::Bytes(v.clone()));
                            stack.push(TealValue::Uint(1));
                        }
                        None => {
                            stack.push(TealValue::Bytes(Vec::new()));
                            stack.push(TealValue::Uint(0));
                        }
                    }
                }
                AvmOp::BoxDel => {
                    let key = pop_bytes!();
                    let app = self.apps.get_mut(&params.app_id).expect("checked");
                    let existed = app.boxes.remove(&key).is_some();
                    stack.push(TealValue::Uint(u64::from(existed)));
                }
                AvmOp::InnerPay => {
                    let amount = pop_int!();
                    let receiver_bytes = pop_bytes!();
                    if receiver_bytes.len() != 20 {
                        return Err(AvmError::TypeError("receiver must be a 20-byte address"));
                    }
                    let mut addr = [0u8; 20];
                    addr.copy_from_slice(&receiver_bytes);
                    let receiver = Address(addr);
                    let app_balance = balances.entry(app_address).or_insert(0);
                    if *app_balance < u128::from(amount) {
                        // Inner transaction failure rejects the whole call.
                        return Ok(AppOutcome { approved: false, cost, logs, inner_payments });
                    }
                    *app_balance -= u128::from(amount);
                    *balances.entry(receiver).or_insert(0) += u128::from(amount);
                    inner_payments.push((receiver, amount));
                }
                AvmOp::Log => {
                    let b = pop_bytes!();
                    logs.push(b);
                }
                AvmOp::AppBalance => {
                    let bal = balances.get(&app_address).copied().unwrap_or(0);
                    stack.push(TealValue::Uint(bal.min(u128::from(u64::MAX)) as u64));
                }
                AvmOp::Return => {
                    let approved = pop_int!() != 0;
                    return Ok(AppOutcome { approved, cost, logs, inner_payments });
                }
            }
        }
        // Falling off the end rejects, as on the real AVM.
        Ok(AppOutcome { approved: false, cost, logs, inner_payments })
    }
}

fn cmp_int(stack: &mut Vec<TealValue>, f: impl Fn(u64, u64) -> bool) -> Result<(), AvmError> {
    let b = stack
        .pop()
        .ok_or(AvmError::StackError)?
        .as_uint()
        .ok_or(AvmError::TypeError("expected uint64"))?;
    let a = stack
        .pop()
        .ok_or(AvmError::StackError)?
        .as_uint()
        .ok_or(AvmError::TypeError("expected uint64"))?;
    stack.push(TealValue::Uint(u64::from(f(a, b))));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::AvmOp::*;

    fn approve_program(body: Vec<AvmOp>) -> AvmProgram {
        let mut ops = body;
        ops.push(PushInt(1));
        ops.push(Return);
        AvmProgram::new(ops)
    }

    fn setup(body: Vec<AvmOp>) -> (Avm, u64, Balances) {
        let mut avm = Avm::new();
        let mut balances = Balances::new();
        let id = avm.create_app(Address::ZERO, approve_program(body), &mut balances).unwrap();
        (avm, id, balances)
    }

    #[test]
    fn create_and_call() {
        let (mut avm, id, mut balances) = setup(vec![]);
        let out = avm.call(AppCallParams::new(Address::ZERO, id), &mut balances).unwrap();
        assert!(out.approved);
        assert_eq!(avm.app_count(), 1);
    }

    #[test]
    fn rejecting_create_fails() {
        let mut avm = Avm::new();
        let mut balances = Balances::new();
        let program = AvmProgram::new(vec![PushInt(0), Return]);
        assert_eq!(
            avm.create_app(Address::ZERO, program, &mut balances),
            Err(AvmError::CreateRejected)
        );
        assert_eq!(avm.app_count(), 0);
    }

    #[test]
    fn global_state_round_trip() {
        let body = vec![PushBytes(b"Creator".to_vec()), Txn(TxnField::Sender), AppGlobalPut];
        let (avm, id, _) = setup(body);
        assert_eq!(avm.global(id, b"Creator"), Some(TealValue::Bytes(Address::ZERO.0.to_vec())));
    }

    #[test]
    fn boxes_round_trip() {
        // On create: put box. On call: read it, check presence, delete it.
        let lbl_create = 0;
        let ops = vec![
            Txn(TxnField::ApplicationId),
            Bz(lbl_create),
            PushBytes(b"did-1".to_vec()),
            BoxGet,
            Assert, // present
            PushBytes(b"proof".to_vec()),
            Eq,
            Assert, // value matches
            PushBytes(b"did-1".to_vec()),
            BoxDel,
            Assert, // existed
            PushInt(1),
            Return,
            Label(lbl_create),
            PushBytes(b"did-1".to_vec()),
            PushBytes(b"proof".to_vec()),
            BoxPut,
            PushInt(1),
            Return,
        ];
        let mut avm = Avm::new();
        let mut balances = Balances::new();
        let id = avm.create_app(Address::ZERO, AvmProgram::new(ops), &mut balances).unwrap();
        assert_eq!(avm.box_value(id, b"did-1").as_deref(), Some(&b"proof"[..]));
        let out = avm.call(AppCallParams::new(Address::ZERO, id), &mut balances).unwrap();
        assert!(out.approved);
        assert_eq!(avm.box_value(id, b"did-1"), None);
        assert_eq!(avm.box_count(id), 0);
    }

    #[test]
    fn arithmetic_overflow_is_error() {
        let body = vec![PushInt(u64::MAX), PushInt(1), Add, Pop];
        let mut avm = Avm::new();
        let mut balances = Balances::new();
        let err = avm.create_app(Address::ZERO, approve_program(body), &mut balances).unwrap_err();
        assert_eq!(err, AvmError::Arithmetic("overflow"));
    }

    #[test]
    fn budget_enforced() {
        // A loop that never terminates must exhaust the budget.
        let body = vec![Label(0), PushInt(1), Pop, B(0)];
        let mut avm = Avm::new();
        let mut balances = Balances::new();
        let err = avm.create_app(Address::ZERO, approve_program(body), &mut balances).unwrap_err();
        assert_eq!(err, AvmError::BudgetExceeded { budget: CALL_BUDGET });
    }

    #[test]
    fn rejection_rolls_back_state() {
        // Approve at creation (app_id==0 path), write a box then reject on call.
        let lbl_create = 0;
        let ops = vec![
            Txn(TxnField::ApplicationId),
            Bz(lbl_create),
            PushBytes(b"k".to_vec()),
            PushBytes(b"v".to_vec()),
            BoxPut,
            PushInt(0),
            Return,
            Label(lbl_create),
            PushInt(1),
            Return,
        ];
        let mut avm = Avm::new();
        let mut balances = Balances::new();
        let id = avm.create_app(Address::ZERO, AvmProgram::new(ops), &mut balances).unwrap();
        let out = avm.call(AppCallParams::new(Address::ZERO, id), &mut balances).unwrap();
        assert!(!out.approved);
        assert_eq!(avm.box_value(id, b"k"), None, "rejected writes must roll back");
    }

    #[test]
    fn payment_and_inner_pay() {
        // On call: pay 300 to the sender from the app account.
        let lbl_create = 0;
        let sender = Address([7; 20]);
        let ops = vec![
            Txn(TxnField::ApplicationId),
            Bz(lbl_create),
            Txn(TxnField::Sender),
            PushInt(300),
            InnerPay,
            PushInt(1),
            Return,
            Label(lbl_create),
            PushInt(1),
            Return,
        ];
        let mut avm = Avm::new();
        let mut balances = Balances::new();
        balances.insert(sender, 10_000);
        let id = avm.create_app(Address::ZERO, AvmProgram::new(ops), &mut balances).unwrap();
        let out =
            avm.call(AppCallParams::new(sender, id).with_payment(1_000), &mut balances).unwrap();
        assert!(out.approved);
        assert_eq!(out.inner_payments, vec![(sender, 300)]);
        // Sender paid 1000 in, got 300 back.
        assert_eq!(balances[&sender], 10_000 - 1_000 + 300);
        assert_eq!(balances[&Avm::app_address(id)], 700);
    }

    #[test]
    fn insufficient_inner_pay_rejects_and_rolls_back() {
        let lbl_create = 0;
        let sender = Address([8; 20]);
        let ops = vec![
            Txn(TxnField::ApplicationId),
            Bz(lbl_create),
            Txn(TxnField::Sender),
            PushInt(1_000_000),
            InnerPay,
            PushInt(1),
            Return,
            Label(lbl_create),
            PushInt(1),
            Return,
        ];
        let mut avm = Avm::new();
        let mut balances = Balances::new();
        balances.insert(sender, 5_000);
        let id = avm.create_app(Address::ZERO, AvmProgram::new(ops), &mut balances).unwrap();
        let out =
            avm.call(AppCallParams::new(sender, id).with_payment(2_000), &mut balances).unwrap();
        assert!(!out.approved);
        // Payment rolled back too.
        assert_eq!(balances[&sender], 5_000);
    }

    #[test]
    fn concat_len_itob_btoi() {
        let body = vec![
            PushBytes(b"ab".to_vec()),
            PushBytes(b"cd".to_vec()),
            Concat,
            Len,
            Itob,
            Btoi,
            PushInt(4),
            Eq,
            Assert,
        ];
        let (_, id, _) = setup(body);
        assert!(id > 0);
    }

    #[test]
    fn unknown_app_rejected() {
        let mut avm = Avm::new();
        let mut balances = Balances::new();
        assert!(matches!(
            avm.call(AppCallParams::new(Address::ZERO, 42), &mut balances),
            Err(AvmError::UnknownApp(42))
        ));
    }
}
