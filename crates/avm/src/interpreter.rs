//! The AVM interpreter over the journaled world state.
//!
//! Like the EVM, execution is expressed as free functions over a
//! [`StateView`] ([`create_app`], [`call_app`]) so the chain simulator can
//! run application calls inside speculative overlays, while the [`Avm`]
//! façade wraps a private [`WorldState`] and keeps the historical
//! standalone API with balances threaded through as a mutable map.
//!
//! Application programs live in the state as shared [`StateValue::Blob`]s:
//! re-reading an installed app clones an `Arc`, not the instruction list,
//! and rejection rollback is a journal truncation instead of re-inserting
//! a cloned [`crate::state::AppState`].

use crate::cost::CALL_BUDGET;
use crate::opcode::{AvmOp, GlobalField, TxnField};
use crate::program::{AvmProgram, PreparedAvm};
use crate::state::TealValue;
use pol_crypto::{keccak256, sha256};
use pol_ledger::state::{self, BalancePatchBase, Overlay, StateKey, StateValue, WorldState};
use pol_ledger::{Address, CodeCache, CodeCacheStats, OverlayBuffers, StateView, WriteSet};
use std::collections::HashMap;
use std::sync::Arc;

/// Machine-level failures. Program *rejection* is not an error — it is a
/// normal [`AppOutcome`] with `approved == false`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AvmError {
    /// Call target does not exist.
    UnknownApp(u64),
    /// Pop on an empty stack.
    StackError,
    /// An operand had the wrong TEAL type.
    TypeError(&'static str),
    /// Overflow, underflow or division by zero.
    Arithmetic(&'static str),
    /// The per-call opcode budget was exhausted.
    BudgetExceeded {
        /// The budget in force.
        budget: u64,
    },
    /// Branch to an unknown label.
    BadBranch(usize),
    /// The installed `AppProgram` blob is not an [`AvmProgram`] — the
    /// state entry was corrupted by something outside the AVM.
    CorruptProgram(u64),
    /// The grouped payment exceeds the sender's balance.
    InsufficientPayment,
    /// Creation program rejected.
    CreateRejected,
}

impl std::fmt::Display for AvmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AvmError::UnknownApp(id) => write!(f, "unknown application {id}"),
            AvmError::StackError => write!(f, "stack underflow"),
            AvmError::TypeError(msg) => write!(f, "type error: {msg}"),
            AvmError::Arithmetic(msg) => write!(f, "arithmetic error: {msg}"),
            AvmError::BudgetExceeded { budget } => write!(f, "opcode budget {budget} exceeded"),
            AvmError::BadBranch(l) => write!(f, "branch to unknown label {l}"),
            AvmError::CorruptProgram(id) => {
                write!(f, "application {id} program blob is not an AVM program")
            }
            AvmError::InsufficientPayment => write!(f, "insufficient balance for payment"),
            AvmError::CreateRejected => write!(f, "creation program rejected"),
        }
    }
}

impl std::error::Error for AvmError {}

/// Parameters of an application call.
#[derive(Debug, Clone)]
pub struct AppCallParams {
    /// The calling account.
    pub sender: Address,
    /// Application to call (`0` only internally, during creation).
    pub app_id: u64,
    /// Application arguments.
    pub args: Vec<Vec<u8>>,
    /// µAlgo payment grouped with the call (credited to the app account).
    pub payment: u64,
    /// Current round.
    pub round: u64,
    /// Latest block timestamp, seconds.
    pub timestamp_s: u64,
}

impl AppCallParams {
    /// Builds default parameters for calling `app_id` from `sender`.
    pub fn new(sender: Address, app_id: u64) -> AppCallParams {
        AppCallParams { sender, app_id, args: Vec::new(), payment: 0, round: 1, timestamp_s: 1 }
    }

    /// Sets the application arguments (builder style).
    pub fn with_args(mut self, args: Vec<Vec<u8>>) -> AppCallParams {
        self.args = args;
        self
    }

    /// Sets the grouped payment (builder style).
    pub fn with_payment(mut self, payment: u64) -> AppCallParams {
        self.payment = payment;
        self
    }
}

/// Result of an application call.
#[derive(Debug, Clone)]
pub struct AppOutcome {
    /// Whether the approval program approved.
    pub approved: bool,
    /// Opcode budget consumed.
    pub cost: u64,
    /// `log` records emitted.
    pub logs: Vec<Vec<u8>>,
    /// Inner payments executed (receiver, µAlgo).
    pub inner_payments: Vec<(Address, u64)>,
}

/// µAlgo balances, threaded through the standalone [`Avm`] façade's calls.
pub type Balances = HashMap<Address, u128>;

/// The escrow address of an application account.
pub fn app_address(app_id: u64) -> Address {
    let mut preimage = b"algorand-app".to_vec();
    preimage.extend_from_slice(&app_id.to_be_bytes());
    let digest = keccak256(&preimage);
    let mut out = [0u8; 20];
    out.copy_from_slice(&digest[12..]);
    Address(out)
}

fn teal_to_state(value: TealValue) -> StateValue {
    match value {
        TealValue::Uint(v) => StateValue::U64(v),
        TealValue::Bytes(b) => StateValue::Bytes(b),
    }
}

fn state_to_teal(value: StateValue) -> TealValue {
    match value {
        StateValue::U64(v) => TealValue::Uint(v),
        StateValue::Bytes(b) => TealValue::Bytes(b),
        other => unreachable!("AVM state entries are uint64 or bytes, found {other:?}"),
    }
}

/// Creates an application against a state view: runs `program` once with
/// `ApplicationID == 0` (creation semantics); if it approves, the app is
/// installed and its id returned. All effects of failed creations are
/// rolled back via the journal.
///
/// # Errors
///
/// Machine errors, or [`AvmError::CreateRejected`] if the creation run
/// rejects.
pub fn create_app(
    state: &mut dyn StateView,
    creator: Address,
    program: AvmProgram,
    args: Vec<Vec<u8>>,
) -> Result<u64, AvmError> {
    create_app_with_cache(state, creator, program, args, &CodeCache::disabled())
}

/// [`create_app`] with a shared code cache: the freshly installed
/// program's prepared form (resolved branch targets, cost rows) is
/// memoized under its app id for subsequent calls.
///
/// # Errors
///
/// Same as [`create_app`].
pub fn create_app_with_cache(
    state: &mut dyn StateView,
    creator: Address,
    program: AvmProgram,
    args: Vec<Vec<u8>>,
    cache: &CodeCache,
) -> Result<u64, AvmError> {
    let app_id = state.get(&StateKey::AppCount).and_then(|v| v.as_u64()).unwrap_or(1);
    let checkpoint = state.checkpoint();
    state.put(StateKey::AppProgram(app_id), StateValue::Blob(Arc::new(program)));
    state.put(StateKey::AppCreator(app_id), StateValue::Bytes(creator.0.to_vec()));
    let params =
        AppCallParams { sender: creator, app_id, args, payment: 0, round: 1, timestamp_s: 1 };
    match run(state, &params, true, cache) {
        Ok(outcome) if outcome.approved => {
            state.put(StateKey::AppCount, StateValue::U64(app_id + 1));
            Ok(app_id)
        }
        Ok(_) => {
            state.rollback_to(checkpoint);
            Err(AvmError::CreateRejected)
        }
        Err(e) => {
            state.rollback_to(checkpoint);
            Err(e)
        }
    }
}

/// Executes an application call against a state view. State changes,
/// the grouped payment and inner payments are all rolled back when the
/// program rejects or faults.
///
/// # Errors
///
/// Machine errors ([`AvmError`]); rejection is NOT an error.
pub fn call_app(state: &mut dyn StateView, params: AppCallParams) -> Result<AppOutcome, AvmError> {
    call_app_with_cache(state, params, &CodeCache::disabled())
}

/// [`call_app`] with a shared code cache: the target program's prepared
/// form is looked up (or built) instead of re-walking the label table
/// and cost table on every call.
///
/// # Errors
///
/// Same as [`call_app`].
pub fn call_app_with_cache(
    state: &mut dyn StateView,
    params: AppCallParams,
    cache: &CodeCache,
) -> Result<AppOutcome, AvmError> {
    if state.get(&StateKey::AppProgram(params.app_id)).is_none() {
        return Err(AvmError::UnknownApp(params.app_id));
    }
    run(state, &params, false, cache)
}

fn run(
    state: &mut dyn StateView,
    params: &AppCallParams,
    creating: bool,
    cache: &CodeCache,
) -> Result<AppOutcome, AvmError> {
    let escrow = app_address(params.app_id);
    // Checkpoint BEFORE the grouped payment: unlike the EVM's call value,
    // a rejected app call refunds the payment too.
    let checkpoint = state.checkpoint();
    if params.payment > 0 {
        let from = state.balance_of(params.sender);
        if from < u128::from(params.payment) {
            return Err(AvmError::InsufficientPayment);
        }
        state.set_balance_of(params.sender, from - u128::from(params.payment));
        let to = state.balance_of(escrow);
        state.set_balance_of(escrow, to + u128::from(params.payment));
    }
    let result = execute(state, params, creating, escrow, cache);
    match &result {
        Ok(outcome) if outcome.approved => {}
        _ => {
            // Reject or machine error: roll everything back.
            state.rollback_to(checkpoint);
        }
    }
    result
}

#[allow(clippy::too_many_lines)]
fn execute(
    state: &mut dyn StateView,
    params: &AppCallParams,
    creating: bool,
    app_address: Address,
    cache: &CodeCache,
) -> Result<AppOutcome, AvmError> {
    let program_blob = state
        .get(&StateKey::AppProgram(params.app_id))
        .and_then(|v| v.as_blob().cloned())
        .ok_or(AvmError::UnknownApp(params.app_id))?;
    let program = program_blob
        .as_any()
        .downcast_ref::<AvmProgram>()
        .ok_or(AvmError::CorruptProgram(params.app_id))?;
    // The prepared rows are anchored to the exact blob `Arc`, so a
    // replaced program (same app id, failed create retried, speculation
    // overlay) never serves stale targets.
    let prepared: Arc<PreparedAvm> =
        cache.get_or_prepare_app(params.app_id, &program_blob, || PreparedAvm::prepare(program));
    let mut stack: Vec<TealValue> = Vec::with_capacity(16);
    // Scratch slots are dense small integers in compiler output: a
    // lazily-grown vector beats hashing every store/load.
    let mut scratch: Vec<Option<TealValue>> = Vec::new();
    let mut pc = 0usize;
    let mut cost = 0u64;
    let mut logs = Vec::new();
    let mut inner_payments = Vec::new();

    macro_rules! pop {
        () => {
            stack.pop().ok_or(AvmError::StackError)?
        };
    }
    macro_rules! pop_int {
        () => {
            pop!().as_uint().ok_or(AvmError::TypeError("expected uint64"))?
        };
    }
    macro_rules! pop_bytes {
        () => {
            match pop!() {
                TealValue::Bytes(b) => b,
                TealValue::Uint(_) => return Err(AvmError::TypeError("expected bytes")),
            }
        };
    }
    // `pc` has already been advanced past the branch when an arm fires,
    // so its own instruction index — where the prepared target row lives
    // — is `pc - 1`.
    macro_rules! branch {
        ($label:expr) => {{
            pc = prepared.branch_target(pc - 1).ok_or(AvmError::BadBranch($label))?;
            continue;
        }};
    }

    let ops = program.ops();
    while pc < ops.len() {
        let op = &ops[pc];
        cost += prepared.cost(pc);
        if cost > CALL_BUDGET {
            return Err(AvmError::BudgetExceeded { budget: CALL_BUDGET });
        }
        pc += 1;
        match op {
            AvmOp::PushInt(v) => stack.push(TealValue::Uint(*v)),
            AvmOp::PushBytes(b) => stack.push(TealValue::Bytes(b.clone())),
            AvmOp::Add => {
                let (b, a) = (pop_int!(), pop_int!());
                stack.push(TealValue::Uint(
                    a.checked_add(b).ok_or(AvmError::Arithmetic("overflow"))?,
                ));
            }
            AvmOp::Sub => {
                let (b, a) = (pop_int!(), pop_int!());
                stack.push(TealValue::Uint(
                    a.checked_sub(b).ok_or(AvmError::Arithmetic("underflow"))?,
                ));
            }
            AvmOp::Mul => {
                let (b, a) = (pop_int!(), pop_int!());
                stack.push(TealValue::Uint(
                    a.checked_mul(b).ok_or(AvmError::Arithmetic("overflow"))?,
                ));
            }
            AvmOp::Div => {
                let (b, a) = (pop_int!(), pop_int!());
                stack.push(TealValue::Uint(
                    a.checked_div(b).ok_or(AvmError::Arithmetic("division by zero"))?,
                ));
            }
            AvmOp::Mod => {
                let (b, a) = (pop_int!(), pop_int!());
                stack.push(TealValue::Uint(
                    a.checked_rem(b).ok_or(AvmError::Arithmetic("modulo zero"))?,
                ));
            }
            AvmOp::Lt => cmp_int(&mut stack, |a, b| a < b)?,
            AvmOp::Gt => cmp_int(&mut stack, |a, b| a > b)?,
            AvmOp::Le => cmp_int(&mut stack, |a, b| a <= b)?,
            AvmOp::Ge => cmp_int(&mut stack, |a, b| a >= b)?,
            AvmOp::Eq => {
                let (b, a) = (pop!(), pop!());
                stack.push(TealValue::Uint(u64::from(a == b)));
            }
            AvmOp::Ne => {
                let (b, a) = (pop!(), pop!());
                stack.push(TealValue::Uint(u64::from(a != b)));
            }
            AvmOp::AndL => cmp_int(&mut stack, |a, b| a != 0 && b != 0)?,
            AvmOp::OrL => cmp_int(&mut stack, |a, b| a != 0 || b != 0)?,
            AvmOp::NotL => {
                let a = pop_int!();
                stack.push(TealValue::Uint(u64::from(a == 0)));
            }
            AvmOp::Sha256 => {
                let b = pop_bytes!();
                stack.push(TealValue::Bytes(sha256(&b).to_vec()));
            }
            AvmOp::Keccak256 => {
                let b = pop_bytes!();
                stack.push(TealValue::Bytes(keccak256(&b).to_vec()));
            }
            AvmOp::Concat => {
                let b = pop_bytes!();
                let mut a = pop_bytes!();
                a.extend_from_slice(&b);
                stack.push(TealValue::Bytes(a));
            }
            AvmOp::Len => {
                let b = pop_bytes!();
                stack.push(TealValue::Uint(b.len() as u64));
            }
            AvmOp::Itob => {
                let v = pop_int!();
                stack.push(TealValue::Bytes(v.to_be_bytes().to_vec()));
            }
            AvmOp::Btoi => {
                let b = pop_bytes!();
                if b.len() > 8 {
                    return Err(AvmError::TypeError("btoi input longer than 8 bytes"));
                }
                let mut buf = [0u8; 8];
                buf[8 - b.len()..].copy_from_slice(&b);
                stack.push(TealValue::Uint(u64::from_be_bytes(buf)));
            }
            AvmOp::Dup => {
                let v = stack.last().ok_or(AvmError::StackError)?.clone();
                stack.push(v);
            }
            AvmOp::Swap => {
                let len = stack.len();
                if len < 2 {
                    return Err(AvmError::StackError);
                }
                stack.swap(len - 1, len - 2);
            }
            AvmOp::Pop => {
                let _ = pop!();
            }
            AvmOp::Store(slot) => {
                let v = pop!();
                let idx = usize::from(*slot);
                if scratch.len() <= idx {
                    scratch.resize(idx + 1, None);
                }
                scratch[idx] = Some(v);
            }
            AvmOp::Load(slot) => {
                stack.push(
                    scratch
                        .get(usize::from(*slot))
                        .and_then(Option::clone)
                        .unwrap_or(TealValue::Uint(0)),
                );
            }
            AvmOp::Txn(field) => stack.push(match field {
                TxnField::Sender => TealValue::Bytes(params.sender.0.to_vec()),
                TxnField::ApplicationId => {
                    TealValue::Uint(if creating { 0 } else { params.app_id })
                }
                TxnField::NumAppArgs => TealValue::Uint(params.args.len() as u64),
                TxnField::Amount => TealValue::Uint(params.payment),
            }),
            AvmOp::TxnArg(i) => {
                let arg = params.args.get(*i as usize).cloned().unwrap_or_default();
                stack.push(TealValue::Bytes(arg));
            }
            AvmOp::Global(field) => stack.push(match field {
                GlobalField::Round => TealValue::Uint(params.round),
                GlobalField::LatestTimestamp => TealValue::Uint(params.timestamp_s),
                GlobalField::CurrentApplicationId => TealValue::Uint(params.app_id),
            }),
            AvmOp::B(l) => branch!(*l),
            AvmOp::Bz(l) => {
                if pop_int!() == 0 {
                    branch!(*l);
                }
            }
            AvmOp::Bnz(l) => {
                if pop_int!() != 0 {
                    branch!(*l);
                }
            }
            AvmOp::Label(_) => {}
            AvmOp::Assert => {
                if pop_int!() == 0 {
                    return Ok(AppOutcome { approved: false, cost, logs, inner_payments });
                }
            }
            AvmOp::AppGlobalPut => {
                let value = pop!();
                let key = pop_bytes!();
                state.put(StateKey::AppGlobal(params.app_id, key), teal_to_state(value));
            }
            AvmOp::AppGlobalGet => {
                let key = pop_bytes!();
                match state.get(&StateKey::AppGlobal(params.app_id, key)) {
                    Some(v) => {
                        stack.push(state_to_teal(v));
                        stack.push(TealValue::Uint(1));
                    }
                    None => {
                        stack.push(TealValue::Uint(0));
                        stack.push(TealValue::Uint(0));
                    }
                }
            }
            AvmOp::BoxPut => {
                let value = pop_bytes!();
                let key = pop_bytes!();
                state.put(StateKey::AppBox(params.app_id, key), StateValue::Bytes(value));
            }
            AvmOp::BoxGet => {
                let key = pop_bytes!();
                match state.get(&StateKey::AppBox(params.app_id, key)) {
                    Some(v) => {
                        stack.push(TealValue::Bytes(
                            v.as_bytes().map(<[u8]>::to_vec).unwrap_or_default(),
                        ));
                        stack.push(TealValue::Uint(1));
                    }
                    None => {
                        stack.push(TealValue::Bytes(Vec::new()));
                        stack.push(TealValue::Uint(0));
                    }
                }
            }
            AvmOp::BoxDel => {
                let key = pop_bytes!();
                let box_key = StateKey::AppBox(params.app_id, key);
                let existed = state.get(&box_key).is_some();
                state.delete(box_key);
                stack.push(TealValue::Uint(u64::from(existed)));
            }
            AvmOp::InnerPay => {
                let amount = pop_int!();
                let receiver_bytes = pop_bytes!();
                if receiver_bytes.len() != 20 {
                    return Err(AvmError::TypeError("receiver must be a 20-byte address"));
                }
                let mut addr = [0u8; 20];
                addr.copy_from_slice(&receiver_bytes);
                let receiver = Address(addr);
                let app_balance = state.balance_of(app_address);
                if app_balance < u128::from(amount) {
                    // Inner transaction failure rejects the whole call.
                    return Ok(AppOutcome { approved: false, cost, logs, inner_payments });
                }
                state.set_balance_of(app_address, app_balance - u128::from(amount));
                let receiver_balance = state.balance_of(receiver);
                state.set_balance_of(receiver, receiver_balance + u128::from(amount));
                inner_payments.push((receiver, amount));
            }
            AvmOp::Log => {
                let b = pop_bytes!();
                logs.push(b);
            }
            AvmOp::AppBalance => {
                let bal = state.balance_of(app_address);
                stack.push(TealValue::Uint(bal.min(u128::from(u64::MAX)) as u64));
            }
            AvmOp::Return => {
                let approved = pop_int!() != 0;
                return Ok(AppOutcome { approved, cost, logs, inner_payments });
            }
        }
    }
    // Falling off the end rejects, as on the real AVM.
    Ok(AppOutcome { approved: false, cost, logs, inner_payments })
}

/// Read-only view over the AVM-owned entries of a world state (installed
/// apps, global state and boxes). The explorer and tests inspect the
/// chain through this instead of holding a whole `Avm`.
pub struct AvmView<'a> {
    world: &'a WorldState,
}

impl<'a> AvmView<'a> {
    /// Opens a view over a world.
    pub fn new(world: &'a WorldState) -> AvmView<'a> {
        AvmView { world }
    }

    /// Number of created applications.
    pub fn app_count(&self) -> usize {
        self.world.keys().filter(|k| matches!(k, StateKey::AppProgram(_))).count()
    }

    /// Reads a global state value.
    pub fn global(&self, app_id: u64, key: &[u8]) -> Option<TealValue> {
        self.world.get(&StateKey::AppGlobal(app_id, key.to_vec())).map(|v| state_to_teal(v.clone()))
    }

    /// Reads a box.
    pub fn box_value(&self, app_id: u64, key: &[u8]) -> Option<Vec<u8>> {
        self.world
            .get(&StateKey::AppBox(app_id, key.to_vec()))
            .and_then(|v| v.as_bytes().map(<[u8]>::to_vec))
    }

    /// Number of boxes held by an app.
    pub fn box_count(&self, app_id: u64) -> usize {
        self.world.keys().filter(|k| matches!(k, StateKey::AppBox(id, _) if *id == app_id)).count()
    }
}

/// The standalone AVM application ledger: a private [`WorldState`]
/// holding installed programs, global state and boxes.
///
/// µAlgo balances live outside the machine (the caller owns them) and
/// are threaded through each call as a mutable map. Each call runs inside
/// a journaled [`Overlay`] whose write set is split back into the balance
/// map and the world afterwards.
#[derive(Debug, Default)]
pub struct Avm {
    world: WorldState,
    cache: CodeCache,
    spare: OverlayBuffers,
}

impl Avm {
    /// Creates an empty ledger.
    pub fn new() -> Avm {
        Avm::default()
    }

    /// Number of created applications.
    pub fn app_count(&self) -> usize {
        AvmView::new(&self.world).app_count()
    }

    /// The escrow address of an application account.
    pub fn app_address(app_id: u64) -> Address {
        app_address(app_id)
    }

    /// Reads a global state value.
    pub fn global(&self, app_id: u64, key: &[u8]) -> Option<TealValue> {
        AvmView::new(&self.world).global(app_id, key)
    }

    /// Reads a box.
    pub fn box_value(&self, app_id: u64, key: &[u8]) -> Option<Vec<u8>> {
        AvmView::new(&self.world).box_value(app_id, key)
    }

    /// Number of boxes held by an app.
    pub fn box_count(&self, app_id: u64) -> usize {
        AvmView::new(&self.world).box_count(app_id)
    }

    /// Creates an application (see the [`create_app`] free function).
    ///
    /// # Errors
    ///
    /// Machine errors, or [`AvmError::CreateRejected`] if the creation run
    /// rejects.
    pub fn create_app(
        &mut self,
        creator: Address,
        program: AvmProgram,
        balances: &mut Balances,
    ) -> Result<u64, AvmError> {
        self.create_app_with_args(creator, program, Vec::new(), balances)
    }

    /// [`Avm::create_app`] with creation arguments (constructor values).
    ///
    /// # Errors
    ///
    /// Same as [`Avm::create_app`].
    pub fn create_app_with_args(
        &mut self,
        creator: Address,
        program: AvmProgram,
        args: Vec<Vec<u8>>,
        balances: &mut Balances,
    ) -> Result<u64, AvmError> {
        let (result, writes) = {
            let base = BalancePatchBase::new(&self.world, balances);
            let mut view = Overlay::with_buffers(&base, std::mem::take(&mut self.spare));
            let result = create_app_with_cache(&mut view, creator, program, args, &self.cache);
            let (reads, writes, mut spare) = view.into_parts_reusing();
            spare.absorb(reads, WriteSet::new());
            self.spare = spare;
            (result, writes)
        };
        state::apply_split(writes, &mut self.world, balances);
        result
    }

    /// Executes an application call (see the [`call_app`] free function).
    ///
    /// # Errors
    ///
    /// Machine errors ([`AvmError`]); rejection is NOT an error.
    pub fn call(
        &mut self,
        params: AppCallParams,
        balances: &mut Balances,
    ) -> Result<AppOutcome, AvmError> {
        let (result, writes) = {
            let base = BalancePatchBase::new(&self.world, balances);
            let mut view = Overlay::with_buffers(&base, std::mem::take(&mut self.spare));
            let result = call_app_with_cache(&mut view, params, &self.cache);
            let (reads, writes, mut spare) = view.into_parts_reusing();
            spare.absorb(reads, WriteSet::new());
            self.spare = spare;
            (result, writes)
        };
        state::apply_split(writes, &mut self.world, balances);
        result
    }

    /// Snapshot of the façade's code-cache counters.
    pub fn code_cache_stats(&self) -> CodeCacheStats {
        self.cache.stats()
    }
}

fn cmp_int(stack: &mut Vec<TealValue>, f: impl Fn(u64, u64) -> bool) -> Result<(), AvmError> {
    let b = stack
        .pop()
        .ok_or(AvmError::StackError)?
        .as_uint()
        .ok_or(AvmError::TypeError("expected uint64"))?;
    let a = stack
        .pop()
        .ok_or(AvmError::StackError)?
        .as_uint()
        .ok_or(AvmError::TypeError("expected uint64"))?;
    stack.push(TealValue::Uint(u64::from(f(a, b))));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::AvmOp::*;

    fn approve_program(body: Vec<AvmOp>) -> AvmProgram {
        let mut ops = body;
        ops.push(PushInt(1));
        ops.push(Return);
        AvmProgram::new(ops)
    }

    fn setup(body: Vec<AvmOp>) -> (Avm, u64, Balances) {
        let mut avm = Avm::new();
        let mut balances = Balances::new();
        let id = avm.create_app(Address::ZERO, approve_program(body), &mut balances).unwrap();
        (avm, id, balances)
    }

    #[test]
    fn create_and_call() {
        let (mut avm, id, mut balances) = setup(vec![]);
        let out = avm.call(AppCallParams::new(Address::ZERO, id), &mut balances).unwrap();
        assert!(out.approved);
        assert_eq!(avm.app_count(), 1);
    }

    #[test]
    fn rejecting_create_fails() {
        let mut avm = Avm::new();
        let mut balances = Balances::new();
        let program = AvmProgram::new(vec![PushInt(0), Return]);
        assert_eq!(
            avm.create_app(Address::ZERO, program, &mut balances),
            Err(AvmError::CreateRejected)
        );
        assert_eq!(avm.app_count(), 0);
    }

    #[test]
    fn global_state_round_trip() {
        let body = vec![PushBytes(b"Creator".to_vec()), Txn(TxnField::Sender), AppGlobalPut];
        let (avm, id, _) = setup(body);
        assert_eq!(avm.global(id, b"Creator"), Some(TealValue::Bytes(Address::ZERO.0.to_vec())));
    }

    #[test]
    fn boxes_round_trip() {
        // On create: put box. On call: read it, check presence, delete it.
        let lbl_create = 0;
        let ops = vec![
            Txn(TxnField::ApplicationId),
            Bz(lbl_create),
            PushBytes(b"did-1".to_vec()),
            BoxGet,
            Assert, // present
            PushBytes(b"proof".to_vec()),
            Eq,
            Assert, // value matches
            PushBytes(b"did-1".to_vec()),
            BoxDel,
            Assert, // existed
            PushInt(1),
            Return,
            Label(lbl_create),
            PushBytes(b"did-1".to_vec()),
            PushBytes(b"proof".to_vec()),
            BoxPut,
            PushInt(1),
            Return,
        ];
        let mut avm = Avm::new();
        let mut balances = Balances::new();
        let id = avm.create_app(Address::ZERO, AvmProgram::new(ops), &mut balances).unwrap();
        assert_eq!(avm.box_value(id, b"did-1").as_deref(), Some(&b"proof"[..]));
        let out = avm.call(AppCallParams::new(Address::ZERO, id), &mut balances).unwrap();
        assert!(out.approved);
        assert_eq!(avm.box_value(id, b"did-1"), None);
        assert_eq!(avm.box_count(id), 0);
    }

    #[test]
    fn arithmetic_overflow_is_error() {
        let body = vec![PushInt(u64::MAX), PushInt(1), Add, Pop];
        let mut avm = Avm::new();
        let mut balances = Balances::new();
        let err = avm.create_app(Address::ZERO, approve_program(body), &mut balances).unwrap_err();
        assert_eq!(err, AvmError::Arithmetic("overflow"));
    }

    #[test]
    fn budget_enforced() {
        // A loop that never terminates must exhaust the budget.
        let body = vec![Label(0), PushInt(1), Pop, B(0)];
        let mut avm = Avm::new();
        let mut balances = Balances::new();
        let err = avm.create_app(Address::ZERO, approve_program(body), &mut balances).unwrap_err();
        assert_eq!(err, AvmError::BudgetExceeded { budget: CALL_BUDGET });
    }

    #[test]
    fn rejection_rolls_back_state() {
        // Approve at creation (app_id==0 path), write a box then reject on call.
        let lbl_create = 0;
        let ops = vec![
            Txn(TxnField::ApplicationId),
            Bz(lbl_create),
            PushBytes(b"k".to_vec()),
            PushBytes(b"v".to_vec()),
            BoxPut,
            PushInt(0),
            Return,
            Label(lbl_create),
            PushInt(1),
            Return,
        ];
        let mut avm = Avm::new();
        let mut balances = Balances::new();
        let id = avm.create_app(Address::ZERO, AvmProgram::new(ops), &mut balances).unwrap();
        let out = avm.call(AppCallParams::new(Address::ZERO, id), &mut balances).unwrap();
        assert!(!out.approved);
        assert_eq!(avm.box_value(id, b"k"), None, "rejected writes must roll back");
    }

    #[test]
    fn payment_and_inner_pay() {
        // On call: pay 300 to the sender from the app account.
        let lbl_create = 0;
        let sender = Address([7; 20]);
        let ops = vec![
            Txn(TxnField::ApplicationId),
            Bz(lbl_create),
            Txn(TxnField::Sender),
            PushInt(300),
            InnerPay,
            PushInt(1),
            Return,
            Label(lbl_create),
            PushInt(1),
            Return,
        ];
        let mut avm = Avm::new();
        let mut balances = Balances::new();
        balances.insert(sender, 10_000);
        let id = avm.create_app(Address::ZERO, AvmProgram::new(ops), &mut balances).unwrap();
        let out =
            avm.call(AppCallParams::new(sender, id).with_payment(1_000), &mut balances).unwrap();
        assert!(out.approved);
        assert_eq!(out.inner_payments, vec![(sender, 300)]);
        // Sender paid 1000 in, got 300 back.
        assert_eq!(balances[&sender], 10_000 - 1_000 + 300);
        assert_eq!(balances[&Avm::app_address(id)], 700);
    }

    #[test]
    fn insufficient_inner_pay_rejects_and_rolls_back() {
        let lbl_create = 0;
        let sender = Address([8; 20]);
        let ops = vec![
            Txn(TxnField::ApplicationId),
            Bz(lbl_create),
            Txn(TxnField::Sender),
            PushInt(1_000_000),
            InnerPay,
            PushInt(1),
            Return,
            Label(lbl_create),
            PushInt(1),
            Return,
        ];
        let mut avm = Avm::new();
        let mut balances = Balances::new();
        balances.insert(sender, 5_000);
        let id = avm.create_app(Address::ZERO, AvmProgram::new(ops), &mut balances).unwrap();
        let out =
            avm.call(AppCallParams::new(sender, id).with_payment(2_000), &mut balances).unwrap();
        assert!(!out.approved);
        // Payment rolled back too.
        assert_eq!(balances[&sender], 5_000);
    }

    #[test]
    fn concat_len_itob_btoi() {
        let body = vec![
            PushBytes(b"ab".to_vec()),
            PushBytes(b"cd".to_vec()),
            Concat,
            Len,
            Itob,
            Btoi,
            PushInt(4),
            Eq,
            Assert,
        ];
        let (_, id, _) = setup(body);
        assert!(id > 0);
    }

    #[test]
    fn repeated_calls_hit_the_prepared_program_cache() {
        let body = vec![
            PushInt(2),
            Store(0),
            Load(0),
            Bnz(3),
            PushInt(0),
            Return,
            Label(3),
            PushInt(1),
            Return,
        ];
        let mut avm = Avm::new();
        let mut balances = Balances::new();
        let id = avm.create_app(Address::ZERO, AvmProgram::new(body), &mut balances).unwrap();
        let first = avm.call(AppCallParams::new(Address::ZERO, id), &mut balances).unwrap();
        let second = avm.call(AppCallParams::new(Address::ZERO, id), &mut balances).unwrap();
        assert!(first.approved && second.approved);
        assert_eq!(first.cost, second.cost, "cached preparation must not change costs");
        let stats = avm.code_cache_stats();
        assert!(stats.hits > 0, "second call must reuse the prepared program: {stats:?}");
    }

    #[test]
    fn unknown_app_rejected() {
        let mut avm = Avm::new();
        let mut balances = Balances::new();
        assert!(matches!(
            avm.call(AppCallParams::new(Address::ZERO, 42), &mut balances),
            Err(AvmError::UnknownApp(42))
        ));
    }
}
