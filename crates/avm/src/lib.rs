//! An Algorand-style virtual machine (AVM).
//!
//! The execution substrate for the simulated Algorand testnet: a typed
//! stack machine in the style of TEAL — two value types (`uint64` and
//! `bytes`), an *opcode budget* per application call instead of a gas
//! market (fees on Algorand are flat), application **global state** and
//! **boxes** for key-value storage, and **inner transactions** for
//! payments out of the application account.
//!
//! Programs are held in assembly form ([`opcode::AvmOp`]) rather than
//! packed bytecode; [`teal`] renders them as TEAL-like text, mirroring the
//! `index.main.mjs` artifacts the paper's Reach compiler emits.
//!
//! # Examples
//!
//! ```
//! use pol_avm::{Avm, AppCallParams};
//! use pol_avm::opcode::AvmOp::*;
//! use pol_avm::program::AvmProgram;
//!
//! // An app that always approves.
//! let program = AvmProgram::new(vec![PushInt(1), Return]);
//! let mut avm = Avm::new();
//! let mut balances = std::collections::HashMap::new();
//! let app_id = avm.create_app(pol_ledger::Address::ZERO, program, &mut balances)?;
//! let out = avm.call(AppCallParams::new(pol_ledger::Address::ZERO, app_id), &mut balances)?;
//! assert!(out.approved);
//! # Ok::<(), pol_avm::AvmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod interpreter;
pub mod opcode;
pub mod program;
pub mod state;
pub mod teal;
pub mod verifier;

pub use interpreter::{
    app_address, call_app, call_app_with_cache, create_app, create_app_with_cache, AppCallParams,
    AppOutcome, Avm, AvmError, AvmView, Balances,
};
pub use program::{AvmProgram, PreparedAvm};
pub use state::TealValue;
