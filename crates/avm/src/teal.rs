//! Rendering programs as TEAL-like assembly text.
//!
//! The paper shows (Fig. 1.7) the TEAL source the Reach compiler emits for
//! Algorand; this module produces the equivalent human-readable listing of
//! an [`crate::AvmProgram`], which the docs and the conservative-analysis
//! report embed.

use crate::opcode::{AvmOp, GlobalField, TxnField};
use crate::program::AvmProgram;

/// Renders a program as TEAL-like assembly.
pub fn render(program: &AvmProgram) -> String {
    let mut out = String::from("#pragma version 8\n");
    for op in program.ops() {
        match op {
            AvmOp::Label(id) => out.push_str(&format!("label_{id}:\n")),
            other => {
                out.push_str("    ");
                out.push_str(&render_op(other));
                out.push('\n');
            }
        }
    }
    out
}

fn render_op(op: &AvmOp) -> String {
    match op {
        AvmOp::PushInt(v) => format!("int {v}"),
        AvmOp::PushBytes(b) => match std::str::from_utf8(b) {
            Ok(s) if s.chars().all(|c| c.is_ascii_graphic() || c == ' ') => {
                format!("byte \"{s}\"")
            }
            _ => format!("byte 0x{}", pol_crypto::hex::encode(b)),
        },
        AvmOp::Add => "+".into(),
        AvmOp::Sub => "-".into(),
        AvmOp::Mul => "*".into(),
        AvmOp::Div => "/".into(),
        AvmOp::Mod => "%".into(),
        AvmOp::Lt => "<".into(),
        AvmOp::Gt => ">".into(),
        AvmOp::Le => "<=".into(),
        AvmOp::Ge => ">=".into(),
        AvmOp::Eq => "==".into(),
        AvmOp::Ne => "!=".into(),
        AvmOp::AndL => "&&".into(),
        AvmOp::OrL => "||".into(),
        AvmOp::NotL => "!".into(),
        AvmOp::Sha256 => "sha256".into(),
        AvmOp::Keccak256 => "keccak256".into(),
        AvmOp::Concat => "concat".into(),
        AvmOp::Len => "len".into(),
        AvmOp::Itob => "itob".into(),
        AvmOp::Btoi => "btoi".into(),
        AvmOp::Dup => "dup".into(),
        AvmOp::Swap => "swap".into(),
        AvmOp::Pop => "pop".into(),
        AvmOp::Store(s) => format!("store {s}"),
        AvmOp::Load(s) => format!("load {s}"),
        AvmOp::Txn(TxnField::Sender) => "txn Sender".into(),
        AvmOp::Txn(TxnField::ApplicationId) => "txn ApplicationID".into(),
        AvmOp::Txn(TxnField::NumAppArgs) => "txn NumAppArgs".into(),
        AvmOp::Txn(TxnField::Amount) => "txn Amount".into(),
        AvmOp::TxnArg(i) => format!("txna ApplicationArgs {i}"),
        AvmOp::Global(GlobalField::Round) => "global Round".into(),
        AvmOp::Global(GlobalField::LatestTimestamp) => "global LatestTimestamp".into(),
        AvmOp::Global(GlobalField::CurrentApplicationId) => "global CurrentApplicationID".into(),
        AvmOp::B(l) => format!("b label_{l}"),
        AvmOp::Bz(l) => format!("bz label_{l}"),
        AvmOp::Bnz(l) => format!("bnz label_{l}"),
        AvmOp::Label(l) => format!("label_{l}:"),
        AvmOp::Assert => "assert".into(),
        AvmOp::AppGlobalPut => "app_global_put".into(),
        AvmOp::AppGlobalGet => "app_global_get_ex".into(),
        AvmOp::BoxPut => "box_put".into(),
        AvmOp::BoxGet => "box_get".into(),
        AvmOp::BoxDel => "box_del".into(),
        AvmOp::InnerPay => "itxn_submit // pay".into(),
        AvmOp::Log => "log".into(),
        AvmOp::AppBalance => "balance".into(),
        AvmOp::Return => "return".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::AvmOp::*;

    #[test]
    fn renders_readable_listing() {
        let program = AvmProgram::new(vec![
            Txn(TxnField::ApplicationId),
            Bz(0),
            PushBytes(b"Creator".to_vec()),
            Txn(TxnField::Sender),
            AppGlobalPut,
            Label(0),
            PushInt(1),
            Return,
        ]);
        let text = render(&program);
        assert!(text.contains("#pragma version 8"));
        assert!(text.contains("txn ApplicationID"));
        assert!(text.contains("bz label_0"));
        assert!(text.contains("byte \"Creator\""));
        assert!(text.contains("label_0:"));
        assert!(text.contains("app_global_put"));
    }

    #[test]
    fn non_ascii_bytes_render_hex() {
        let program = AvmProgram::new(vec![PushBytes(vec![0xff, 0x00])]);
        assert!(render(&program).contains("byte 0xff00"));
    }
}
