//! The AVM opcode-cost model.
//!
//! Unlike the EVM's gas *market*, Algorand charges a flat transaction fee
//! and instead bounds computation with an opcode **budget** per
//! application call. Costs follow the published TEAL cost table (hashes
//! are expensive, everything else costs 1).

use crate::opcode::AvmOp;

/// Opcode budget for a single application call.
pub const CALL_BUDGET: u64 = 700;
/// Flat minimum fee per transaction, in µAlgo.
pub const MIN_TXN_FEE: u64 = 1000;

/// Cost of one instruction.
pub fn op_cost(op: &AvmOp) -> u64 {
    match op {
        AvmOp::Sha256 => 35,
        AvmOp::Keccak256 => 130,
        AvmOp::BoxPut | AvmOp::BoxGet | AvmOp::BoxDel => 10,
        AvmOp::InnerPay => 20,
        AvmOp::Label(_) => 0,
        _ => 1,
    }
}

/// Conservative (worst-case straight-line) cost of a whole program.
pub fn program_cost(ops: &[AvmOp]) -> u64 {
    ops.iter().map(op_cost).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_ops_cost_more() {
        assert_eq!(op_cost(&AvmOp::Sha256), 35);
        assert_eq!(op_cost(&AvmOp::Keccak256), 130);
        assert_eq!(op_cost(&AvmOp::Add), 1);
        assert_eq!(op_cost(&AvmOp::Label(3)), 0);
    }

    #[test]
    fn program_cost_sums() {
        let ops = vec![AvmOp::PushInt(1), AvmOp::Sha256, AvmOp::Return];
        assert_eq!(program_cost(&ops), 1 + 35 + 1);
    }
}
