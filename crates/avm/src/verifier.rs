//! Post-emission program verifier.
//!
//! Abstractly interprets an [`AvmProgram`] tracking only the stack
//! *depth*: every reachable path is explored (both arms of `bz`/`bnz`)
//! and the verifier proves, without executing:
//!
//! * **stack-effect balance** — no opcode ever pops from an empty
//!   stack and the depth never exceeds the AVM's 1000-item limit;
//! * **branch resolution** — every reachable branch targets a label
//!   the program actually defines;
//! * **worst-case opcode cost** — the maximum [`crate::cost::op_cost`]
//!   sum over all paths, comparable against both the per-call budget
//!   ([`crate::cost::CALL_BUDGET`]) and the conservative straight-line
//!   bound ([`crate::cost::program_cost`]).

use crate::cost;
use crate::opcode::AvmOp;
use crate::program::AvmProgram;
use std::collections::HashMap;

/// The AVM stack-depth limit.
pub const MAX_STACK: usize = 1000;

/// Exploration budget: abstract states processed before giving up. The
/// compiler emits loop-free programs, so hitting this means the program
/// is not something the backend produced.
const STATE_BUDGET: usize = 200_000;

/// What the verifier proved about a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramReport {
    /// Maximum stack depth over all reachable states.
    pub max_stack: usize,
    /// Maximum opcode cost over all halting paths.
    pub worst_case_cost: u64,
    /// Static count of `app_global_put` sites. Cross-contract analysis
    /// compares these against the contract's declared storage layout.
    pub global_puts: usize,
    /// Static count of `box_put` sites (map writes).
    pub box_puts: usize,
    /// Static count of `box_del` sites (map deletes).
    pub box_dels: usize,
}

/// Rejection reasons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// An opcode pops more items than the stack holds.
    StackUnderflow {
        /// Offending instruction index.
        idx: usize,
    },
    /// The stack exceeds [`MAX_STACK`].
    StackOverflow {
        /// Offending instruction index.
        idx: usize,
    },
    /// A branch references a label the program never defines.
    UnresolvedLabel {
        /// Offending instruction index.
        idx: usize,
        /// The missing label id.
        label: usize,
    },
    /// The exploration budget was exhausted (cyclic or adversarial
    /// code).
    StateBudgetExceeded,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::StackUnderflow { idx } => {
                write!(f, "stack underflow at instruction {idx}")
            }
            VerifyError::StackOverflow { idx } => {
                write!(f, "stack overflow at instruction {idx}")
            }
            VerifyError::UnresolvedLabel { idx, label } => {
                write!(f, "branch at instruction {idx} targets undefined label {label}")
            }
            VerifyError::StateBudgetExceeded => write!(f, "state exploration budget exceeded"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// `(pops, pushes)` for the non-branching opcodes.
fn stack_effect(op: &AvmOp) -> (usize, usize) {
    match op {
        AvmOp::PushInt(_)
        | AvmOp::PushBytes(_)
        | AvmOp::Txn(_)
        | AvmOp::TxnArg(_)
        | AvmOp::Global(_)
        | AvmOp::Load(_)
        | AvmOp::AppBalance => (0, 1),
        AvmOp::Add
        | AvmOp::Sub
        | AvmOp::Mul
        | AvmOp::Div
        | AvmOp::Mod
        | AvmOp::Lt
        | AvmOp::Gt
        | AvmOp::Le
        | AvmOp::Ge
        | AvmOp::Eq
        | AvmOp::Ne
        | AvmOp::AndL
        | AvmOp::OrL
        | AvmOp::Concat => (2, 1),
        AvmOp::NotL
        | AvmOp::Sha256
        | AvmOp::Keccak256
        | AvmOp::Len
        | AvmOp::Itob
        | AvmOp::Btoi
        | AvmOp::BoxDel => (1, 1),
        AvmOp::Dup | AvmOp::AppGlobalGet | AvmOp::BoxGet => (1, 2),
        AvmOp::Swap => (2, 2),
        AvmOp::Pop
        | AvmOp::Store(_)
        | AvmOp::Assert
        | AvmOp::Log
        | AvmOp::Bz(_)
        | AvmOp::Bnz(_)
        | AvmOp::Return => (1, 0),
        AvmOp::AppGlobalPut | AvmOp::BoxPut | AvmOp::InnerPay => (2, 0),
        AvmOp::B(_) | AvmOp::Label(_) => (0, 0),
    }
}

/// Verifies a program from entry (instruction 0).
///
/// # Errors
///
/// A [`VerifyError`] describing the first violation found.
pub fn verify(program: &AvmProgram) -> Result<ProgramReport, VerifyError> {
    let ops = program.ops();
    // Best cost seen per (idx, depth); a state is re-explored only when
    // it improves the bound.
    let mut best: HashMap<(usize, usize), u64> = HashMap::new();
    let mut worklist = vec![(0usize, 0usize, 0u64)];
    let mut max_stack = 0usize;
    let mut worst_case_cost = 0u64;
    let mut steps = 0usize;

    while let Some((mut idx, mut depth, mut spent)) = worklist.pop() {
        steps += 1;
        if steps > STATE_BUDGET {
            return Err(VerifyError::StateBudgetExceeded);
        }
        loop {
            if idx >= ops.len() {
                // Falling off the end halts the program.
                worst_case_cost = worst_case_cost.max(spent);
                break;
            }
            let key = (idx, depth);
            match best.get(&key) {
                Some(&c) if c >= spent => break,
                _ => {
                    best.insert(key, spent);
                }
            }
            let op = &ops[idx];
            spent += cost::op_cost(op);
            let (pops, pushes) = stack_effect(op);
            if depth < pops {
                return Err(VerifyError::StackUnderflow { idx });
            }
            depth = depth - pops + pushes;
            if depth > MAX_STACK {
                return Err(VerifyError::StackOverflow { idx });
            }
            max_stack = max_stack.max(depth);

            let resolve = |label: usize| {
                program.resolve(label).ok_or(VerifyError::UnresolvedLabel { idx, label })
            };
            match op {
                AvmOp::Return => {
                    worst_case_cost = worst_case_cost.max(spent);
                    break;
                }
                AvmOp::B(label) => idx = resolve(*label)?,
                AvmOp::Bz(label) | AvmOp::Bnz(label) => {
                    // Fork: taken branch queued, fallthrough continues
                    // inline.
                    worklist.push((resolve(*label)?, depth, spent));
                    idx += 1;
                }
                _ => idx += 1,
            }
        }
    }

    let mut global_puts = 0usize;
    let mut box_puts = 0usize;
    let mut box_dels = 0usize;
    for op in ops {
        match op {
            AvmOp::AppGlobalPut => global_puts += 1,
            AvmOp::BoxPut => box_puts += 1,
            AvmOp::BoxDel => box_dels += 1,
            _ => {}
        }
    }

    Ok(ProgramReport { max_stack, worst_case_cost, global_puts, box_puts, box_dels })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(ops: Vec<AvmOp>) -> AvmProgram {
        AvmProgram::new(ops)
    }

    #[test]
    fn accepts_straight_line_approval() {
        let p = prog(vec![AvmOp::PushInt(1), AvmOp::Return]);
        let report = verify(&p).unwrap();
        assert_eq!(report.max_stack, 1);
        assert_eq!(report.worst_case_cost, 2);
    }

    #[test]
    fn rejects_underflow() {
        let p = prog(vec![AvmOp::Add]);
        assert_eq!(verify(&p), Err(VerifyError::StackUnderflow { idx: 0 }));
    }

    #[test]
    fn rejects_unresolved_branch_label() {
        let p = prog(vec![AvmOp::PushInt(0), AvmOp::Bnz(99), AvmOp::PushInt(1), AvmOp::Return]);
        assert_eq!(verify(&p), Err(VerifyError::UnresolvedLabel { idx: 1, label: 99 }));
    }

    #[test]
    fn both_branch_arms_are_checked() {
        // The taken arm underflows even though the fallthrough is fine.
        let p = prog(vec![
            AvmOp::PushInt(0),
            AvmOp::Bnz(1),
            AvmOp::PushInt(1),
            AvmOp::Return,
            AvmOp::Label(1),
            AvmOp::Pop, // nothing on the stack here
        ]);
        assert_eq!(verify(&p), Err(VerifyError::StackUnderflow { idx: 5 }));
    }

    #[test]
    fn worst_case_takes_the_expensive_arm() {
        let p = prog(vec![
            AvmOp::PushInt(0),
            AvmOp::Bnz(1),
            // cheap arm
            AvmOp::PushInt(1),
            AvmOp::Return,
            AvmOp::Label(1),
            // expensive arm
            AvmOp::PushBytes(b"x".to_vec()),
            AvmOp::Keccak256,
            AvmOp::Pop,
            AvmOp::PushInt(1),
            AvmOp::Return,
        ]);
        let report = verify(&p).unwrap();
        // push(1) + bnz(1) + label(0) + pushbytes(1) + keccak(130) + pop(1)
        // + push(1) + return(1)
        assert_eq!(report.worst_case_cost, 136);
    }

    #[test]
    fn worst_path_bounded_by_straight_line_cost() {
        let p = prog(vec![
            AvmOp::PushInt(0),
            AvmOp::Bnz(1),
            AvmOp::Sha256, // only on fallthrough — needs an operand
            AvmOp::Pop,
            AvmOp::PushInt(1),
            AvmOp::Return,
            AvmOp::Label(1),
            AvmOp::PushInt(1),
            AvmOp::Return,
        ]);
        // Sha256 on the fallthrough arm underflows (operand consumed by
        // Bnz), so give it one.
        let p = prog([vec![AvmOp::PushBytes(b"seed".to_vec())], p.ops().to_vec()].concat());
        let report = verify(&p).unwrap();
        assert!(report.worst_case_cost <= cost::program_cost(p.ops()));
    }

    #[test]
    fn counts_state_write_sites() {
        let p = prog(vec![
            AvmOp::PushBytes(b"k".to_vec()),
            AvmOp::PushInt(1),
            AvmOp::AppGlobalPut,
            AvmOp::PushBytes(b"b".to_vec()),
            AvmOp::PushBytes(b"v".to_vec()),
            AvmOp::BoxPut,
            AvmOp::PushBytes(b"b".to_vec()),
            AvmOp::BoxDel,
            AvmOp::Pop,
            AvmOp::PushInt(1),
            AvmOp::Return,
        ]);
        let report = verify(&p).unwrap();
        assert_eq!(report.global_puts, 1);
        assert_eq!(report.box_puts, 1);
        assert_eq!(report.box_dels, 1);
    }

    #[test]
    fn dup_and_swap_effects_balance() {
        let p = prog(vec![AvmOp::PushInt(1), AvmOp::Dup, AvmOp::Swap, AvmOp::Pop, AvmOp::Return]);
        let report = verify(&p).unwrap();
        assert_eq!(report.max_stack, 2);
    }
}
