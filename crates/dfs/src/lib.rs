//! An IPFS-like distributed file store.
//!
//! The paper stores report payloads (title, description, images) on IPFS
//! and keeps only the resulting CIDs on-chain and in the hypercube. This
//! crate reproduces the semantics the architecture depends on:
//!
//! * content addressing — a [`Cid`] is derived from the SHA-256 of the
//!   content (CIDv1, raw codec, base32), so data cannot be swapped without
//!   changing its identifier;
//! * a provider record per block — content is served while at least one
//!   peer hosts it, and *disappears from the network* when the last host
//!   unpins and garbage-collects it (the IPFS incentive problem the paper
//!   calls out in §1.5).
//!
//! # Examples
//!
//! ```
//! use pol_dfs::DfsNetwork;
//!
//! let dfs = DfsNetwork::new();
//! let peer = dfs.create_peer();
//! let cid = dfs.add(peer, b"oily spots on the river".to_vec())?;
//! assert_eq!(dfs.get(&cid)?, b"oily spots on the river");
//! # Ok::<(), pol_dfs::DfsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cid;
pub mod store;

pub use cid::Cid;
pub use store::{DfsNetwork, PeerId};

/// Errors raised by the distributed file store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    /// No online provider currently hosts the content.
    NotFound(String),
    /// The referenced peer does not exist.
    UnknownPeer(u64),
    /// A CID string failed to parse or its digest check failed.
    BadCid(String),
    /// Providers exist for the content but none answered before the
    /// transport's retry policy was exhausted — distinct from
    /// [`DfsError::NotFound`]'s "nobody hosts it".
    Unreachable {
        /// The content being fetched.
        cid: String,
        /// Distinct providers that were tried and timed out.
        providers_tried: u32,
    },
}

impl std::fmt::Display for DfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DfsError::NotFound(cid) => write!(f, "content {cid} has no providers"),
            DfsError::UnknownPeer(id) => write!(f, "unknown peer {id}"),
            DfsError::BadCid(s) => write!(f, "malformed cid {s:?}"),
            DfsError::Unreachable { cid, providers_tried } => {
                write!(f, "content {cid}: all {providers_tried} providers unreachable")
            }
        }
    }
}

impl std::error::Error for DfsError {}
