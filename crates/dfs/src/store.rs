//! The peer-to-peer block store with provider records, pinning and GC.

use crate::cid::Cid;
use crate::DfsError;
use parking_lot::RwLock;
use pol_net::transport::Transport;
use pol_net::{MessageClass, NodeId};
use std::collections::{HashMap, HashSet};

/// Identifier of a DFS peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId(pub u64);

impl std::fmt::Display for PeerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "peer-{}", self.0)
    }
}

#[derive(Default)]
struct PeerState {
    /// Blocks this peer hosts.
    blocks: HashMap<Cid, Vec<u8>>,
    /// Blocks protected from garbage collection.
    pins: HashSet<Cid>,
    online: bool,
}

/// The shared DFS network: peers, provider records, retrieval.
///
/// All operations take `&self`; an `Arc<DfsNetwork>` is shared between
/// every actor of a simulation.
#[derive(Default)]
pub struct DfsNetwork {
    peers: RwLock<Vec<PeerState>>,
    /// Provider DHT: which peers claim to host a CID.
    providers: RwLock<HashMap<Cid, HashSet<PeerId>>>,
}

impl std::fmt::Debug for DfsNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DfsNetwork")
            .field("peers", &self.peers.read().len())
            .field("blocks", &self.providers.read().len())
            .finish()
    }
}

impl DfsNetwork {
    /// Creates an empty network.
    pub fn new() -> DfsNetwork {
        DfsNetwork::default()
    }

    /// Registers a new online peer.
    pub fn create_peer(&self) -> PeerId {
        let mut peers = self.peers.write();
        peers.push(PeerState { online: true, ..PeerState::default() });
        PeerId(peers.len() as u64 - 1)
    }

    /// Number of peers ever created.
    pub fn peer_count(&self) -> usize {
        self.peers.read().len()
    }

    /// Adds content at `peer`, pinning it there, and announces the
    /// provider record. Returns the content's CID.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::UnknownPeer`] for an unregistered peer.
    pub fn add(&self, peer: PeerId, content: Vec<u8>) -> Result<Cid, DfsError> {
        let cid = Cid::for_content(&content);
        {
            let mut peers = self.peers.write();
            let state = peers.get_mut(peer.0 as usize).ok_or(DfsError::UnknownPeer(peer.0))?;
            state.blocks.insert(cid.clone(), content);
            state.pins.insert(cid.clone());
        }
        self.providers.write().entry(cid.clone()).or_default().insert(peer);
        Ok(cid)
    }

    /// Retrieves content from any online provider.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::NotFound`] when no online provider hosts it.
    pub fn get(&self, cid: &Cid) -> Result<Vec<u8>, DfsError> {
        let providers = self.providers.read();
        let hosts = providers.get(cid).ok_or_else(|| DfsError::NotFound(cid.to_string()))?;
        let peers = self.peers.read();
        for host in hosts {
            if let Some(state) = peers.get(host.0 as usize) {
                if state.online {
                    if let Some(data) = state.blocks.get(cid) {
                        return Ok(data.clone());
                    }
                }
            }
        }
        Err(DfsError::NotFound(cid.to_string()))
    }

    /// Retrieves content for `requester` over `transport`: providers are
    /// tried in peer-id order (deterministic), each with one
    /// [`MessageClass::DfsRequest`] to the provider and one
    /// [`MessageClass::DfsBlock`] back. A provider whose exchange times out
    /// is skipped and the next is tried.
    ///
    /// [`DfsNetwork::get`] is the zero-latency special case of this method.
    ///
    /// # Errors
    ///
    /// [`DfsError::NotFound`] when no online provider hosts the content;
    /// [`DfsError::Unreachable`] when hosts exist but every exchange timed
    /// out.
    pub fn get_via(
        &self,
        transport: &dyn Transport,
        requester: PeerId,
        cid: &Cid,
    ) -> Result<Vec<u8>, DfsError> {
        let mut hosts: Vec<PeerId> = self
            .providers
            .read()
            .get(cid)
            .ok_or_else(|| DfsError::NotFound(cid.to_string()))?
            .iter()
            .copied()
            .collect();
        hosts.sort_unstable();
        let peers = self.peers.read();
        let mut tried = 0u32;
        for host in hosts {
            let Some(state) = peers.get(host.0 as usize) else { continue };
            if !state.online {
                continue;
            }
            let Some(data) = state.blocks.get(cid) else { continue };
            tried += 1;
            let request =
                transport.deliver(NodeId(requester.0), NodeId(host.0), MessageClass::DfsRequest);
            if request.is_err() {
                continue;
            }
            let block =
                transport.deliver(NodeId(host.0), NodeId(requester.0), MessageClass::DfsBlock);
            if block.is_ok() {
                return Ok(data.clone());
            }
        }
        if tried > 0 {
            Err(DfsError::Unreachable { cid: cid.to_string(), providers_tried: tried })
        } else {
            Err(DfsError::NotFound(cid.to_string()))
        }
    }

    /// Replicates content to `peer` (fetch + host + announce), as a pinning
    /// service or an interested verifier would.
    ///
    /// # Errors
    ///
    /// Fails if the content is unavailable or the peer unknown.
    pub fn replicate(&self, peer: PeerId, cid: &Cid) -> Result<(), DfsError> {
        let data = self.get(cid)?;
        {
            let mut peers = self.peers.write();
            let state = peers.get_mut(peer.0 as usize).ok_or(DfsError::UnknownPeer(peer.0))?;
            state.blocks.insert(cid.clone(), data);
            state.pins.insert(cid.clone());
        }
        self.providers.write().entry(cid.clone()).or_default().insert(peer);
        Ok(())
    }

    /// Removes the pin protecting `cid` on `peer`; the block remains until
    /// [`DfsNetwork::gc`] runs there.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::UnknownPeer`] for an unregistered peer.
    pub fn unpin(&self, peer: PeerId, cid: &Cid) -> Result<(), DfsError> {
        let mut peers = self.peers.write();
        let state = peers.get_mut(peer.0 as usize).ok_or(DfsError::UnknownPeer(peer.0))?;
        state.pins.remove(cid);
        Ok(())
    }

    /// Garbage-collects unpinned blocks at `peer`, withdrawing their
    /// provider records. Returns the number of blocks dropped.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::UnknownPeer`] for an unregistered peer.
    pub fn gc(&self, peer: PeerId) -> Result<usize, DfsError> {
        let dropped: Vec<Cid> = {
            let mut peers = self.peers.write();
            let state = peers.get_mut(peer.0 as usize).ok_or(DfsError::UnknownPeer(peer.0))?;
            let doomed: Vec<Cid> =
                state.blocks.keys().filter(|c| !state.pins.contains(*c)).cloned().collect();
            for cid in &doomed {
                state.blocks.remove(cid);
            }
            doomed
        };
        let mut providers = self.providers.write();
        for cid in &dropped {
            if let Some(hosts) = providers.get_mut(cid) {
                hosts.remove(&peer);
                if hosts.is_empty() {
                    providers.remove(cid);
                }
            }
        }
        Ok(dropped.len())
    }

    /// Takes a peer offline (its content becomes unavailable but is kept).
    pub fn set_online(&self, peer: PeerId, online: bool) {
        if let Some(state) = self.peers.write().get_mut(peer.0 as usize) {
            state.online = online;
        }
    }

    /// Number of distinct peers currently announcing `cid`.
    pub fn provider_count(&self, cid: &Cid) -> usize {
        self.providers.read().get(cid).map_or(0, |s| s.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_round_trip() {
        let dfs = DfsNetwork::new();
        let p = dfs.create_peer();
        let cid = dfs.add(p, b"hello".to_vec()).unwrap();
        assert_eq!(dfs.get(&cid).unwrap(), b"hello");
        assert_eq!(dfs.provider_count(&cid), 1);
    }

    #[test]
    fn unknown_cid_not_found() {
        let dfs = DfsNetwork::new();
        let cid = Cid::for_content(b"never added");
        assert_eq!(dfs.get(&cid), Err(DfsError::NotFound(cid.to_string())));
    }

    #[test]
    fn unknown_peer_rejected() {
        let dfs = DfsNetwork::new();
        assert_eq!(dfs.add(PeerId(9), b"x".to_vec()), Err(DfsError::UnknownPeer(9)));
    }

    #[test]
    fn content_survives_while_any_provider_hosts() {
        let dfs = DfsNetwork::new();
        let a = dfs.create_peer();
        let b = dfs.create_peer();
        let cid = dfs.add(a, b"shared".to_vec()).unwrap();
        dfs.replicate(b, &cid).unwrap();
        assert_eq!(dfs.provider_count(&cid), 2);
        dfs.unpin(a, &cid).unwrap();
        assert_eq!(dfs.gc(a).unwrap(), 1);
        assert_eq!(dfs.get(&cid).unwrap(), b"shared");
    }

    #[test]
    fn content_disappears_when_last_host_collects() {
        let dfs = DfsNetwork::new();
        let a = dfs.create_peer();
        let cid = dfs.add(a, b"ephemeral".to_vec()).unwrap();
        dfs.unpin(a, &cid).unwrap();
        assert_eq!(dfs.gc(a).unwrap(), 1);
        assert!(dfs.get(&cid).is_err());
        assert_eq!(dfs.provider_count(&cid), 0);
    }

    #[test]
    fn gc_spares_pinned_blocks() {
        let dfs = DfsNetwork::new();
        let a = dfs.create_peer();
        let cid = dfs.add(a, b"pinned".to_vec()).unwrap();
        assert_eq!(dfs.gc(a).unwrap(), 0);
        assert_eq!(dfs.get(&cid).unwrap(), b"pinned");
    }

    #[test]
    fn get_via_direct_matches_get() {
        use pol_net::transport::DirectTransport;

        let dfs = DfsNetwork::new();
        let a = dfs.create_peer();
        let requester = dfs.create_peer();
        let cid = dfs.add(a, b"block".to_vec()).unwrap();
        assert_eq!(dfs.get_via(&DirectTransport, requester, &cid).unwrap(), dfs.get(&cid).unwrap());
    }

    #[test]
    fn get_via_times_out_when_links_are_dead() {
        use pol_net::link::LinkModel;
        use pol_net::retry::RetryPolicy;
        use pol_net::transport::SimTransport;

        let dfs = DfsNetwork::new();
        let a = dfs.create_peer();
        let b = dfs.create_peer();
        let requester = dfs.create_peer();
        let cid = dfs.add(a, b"unfetchable".to_vec()).unwrap();
        dfs.replicate(b, &cid).unwrap();
        let transport = SimTransport::builder(3)
            .link(LinkModel::ideal().with_drop_prob(1.0))
            .retry(RetryPolicy { max_attempts: 2, ..RetryPolicy::default() })
            .build();
        assert_eq!(
            dfs.get_via(&transport, requester, &cid),
            Err(DfsError::Unreachable { cid: cid.to_string(), providers_tried: 2 })
        );
    }

    #[test]
    fn get_via_falls_back_to_reachable_provider() {
        use pol_net::link::LinkModel;
        use pol_net::retry::RetryPolicy;
        use pol_net::transport::SimTransport;

        let dfs = DfsNetwork::new();
        let a = dfs.create_peer(); // peer-0: will be cut off
        let b = dfs.create_peer(); // peer-1: healthy
        let requester = dfs.create_peer(); // peer-2
        let cid = dfs.add(a, b"replicated".to_vec()).unwrap();
        dfs.replicate(b, &cid).unwrap();
        let transport = SimTransport::builder(9)
            .retry(RetryPolicy { max_attempts: 2, ..RetryPolicy::default() })
            .build();
        // Sever both directions between the requester and provider a only.
        transport.set_link_symmetric(
            NodeId(requester.0),
            NodeId(a.0),
            LinkModel::ideal().with_drop_prob(1.0),
        );
        assert_eq!(dfs.get_via(&transport, requester, &cid).unwrap(), b"replicated");
        let stats = transport.stats();
        assert!(stats.class(MessageClass::DfsRequest).timed_out >= 1);
        assert_eq!(stats.class(MessageClass::DfsBlock).delivered, 1);
    }

    #[test]
    fn offline_provider_is_skipped() {
        let dfs = DfsNetwork::new();
        let a = dfs.create_peer();
        let b = dfs.create_peer();
        let cid = dfs.add(a, b"redundant".to_vec()).unwrap();
        dfs.replicate(b, &cid).unwrap();
        dfs.set_online(a, false);
        assert_eq!(dfs.get(&cid).unwrap(), b"redundant");
        dfs.set_online(b, false);
        assert!(dfs.get(&cid).is_err());
        dfs.set_online(a, true);
        assert_eq!(dfs.get(&cid).unwrap(), b"redundant");
    }
}
