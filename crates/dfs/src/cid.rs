//! Content identifiers (CIDv1, raw codec, SHA-256 multihash, base32).

use crate::DfsError;
use pol_crypto::{base32, sha256};
use serde::{Deserialize, Serialize};

/// Multibase prefix for base32 (lowercase).
const MULTIBASE_BASE32: char = 'b';
/// CIDv1 version byte.
const CID_VERSION: u8 = 0x01;
/// Raw binary codec.
const CODEC_RAW: u8 = 0x55;
/// SHA2-256 multihash code and digest length.
const MH_SHA2_256: u8 = 0x12;
const MH_LEN: u8 = 32;

/// A content identifier: the address of immutable data on the DFS.
///
/// # Examples
///
/// ```
/// use pol_dfs::Cid;
///
/// let cid = Cid::for_content(b"report body");
/// assert!(cid.to_string().starts_with('b'));
/// assert!(cid.matches(b"report body"));
/// assert!(!cid.matches(b"tampered body"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Cid(String);

impl Cid {
    /// Derives the CID of `content`.
    pub fn for_content(content: &[u8]) -> Cid {
        let digest = sha256(content);
        let mut bytes = Vec::with_capacity(36);
        bytes.push(CID_VERSION);
        bytes.push(CODEC_RAW);
        bytes.push(MH_SHA2_256);
        bytes.push(MH_LEN);
        bytes.extend_from_slice(&digest);
        let mut s = String::with_capacity(60);
        s.push(MULTIBASE_BASE32);
        s.push_str(&base32::encode(&bytes));
        Cid(s)
    }

    /// Parses and structurally validates a CID string.
    ///
    /// # Errors
    ///
    /// Returns [`DfsError::BadCid`] if the multibase prefix, version,
    /// codec, or multihash header is wrong.
    pub fn parse(s: &str) -> Result<Cid, DfsError> {
        let bad = || DfsError::BadCid(s.to_string());
        let rest = s.strip_prefix(MULTIBASE_BASE32).ok_or_else(bad)?;
        let bytes = base32::decode(rest).map_err(|_| bad())?;
        if bytes.len() != 36
            || bytes[0] != CID_VERSION
            || bytes[1] != CODEC_RAW
            || bytes[2] != MH_SHA2_256
            || bytes[3] != MH_LEN
        {
            return Err(bad());
        }
        Ok(Cid(s.to_string()))
    }

    /// Whether `content` hashes to this CID.
    pub fn matches(&self, content: &[u8]) -> bool {
        Cid::for_content(content) == *self
    }

    /// The textual form.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for Cid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for Cid {
    type Err = DfsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Cid::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_content_bound() {
        assert_eq!(Cid::for_content(b"a"), Cid::for_content(b"a"));
        assert_ne!(Cid::for_content(b"a"), Cid::for_content(b"b"));
    }

    #[test]
    fn parse_round_trip() {
        let cid = Cid::for_content(b"hello world");
        let parsed = Cid::parse(cid.as_str()).unwrap();
        assert_eq!(parsed, cid);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Cid::parse("hello").is_err());
        assert!(Cid::parse("").is_err());
        assert!(Cid::parse("zabc").is_err());
        // Valid base32 but wrong header:
        let fake = format!("b{}", pol_crypto::base32::encode(&[0u8; 36]));
        assert!(Cid::parse(&fake).is_err());
    }

    #[test]
    fn empty_content_has_a_cid() {
        let cid = Cid::for_content(b"");
        assert!(cid.matches(b""));
    }
}
