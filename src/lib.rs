//! Facade crate re-exporting every component of the proof-of-location
//! workspace under one roof.
//!
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! full system inventory. The typical entry point is `pol::core::system` — a
//! fully wired proof-of-location deployment over a simulated chain:
//!
//! ```
//! use proof_of_location as pol;
//!
//! let preset = pol::chainsim::presets::algorand_testnet();
//! assert!(preset.name.contains("Algorand"));
//! ```

pub use pol_avm as avm;
pub use pol_chainsim as chainsim;
pub use pol_core as core;
pub use pol_crowdsense as crowdsense;
pub use pol_crypto as crypto;
pub use pol_dfs as dfs;
pub use pol_did as did;
pub use pol_evm as evm;
pub use pol_geo as geo;
pub use pol_hypercube as hypercube;
pub use pol_lang as lang;
pub use pol_ledger as ledger;
pub use pol_net as net;
pub use pol_node as node;
