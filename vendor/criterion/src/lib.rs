//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the API surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], `bench_function`, `iter`, `iter_batched`,
//! [`Throughput`], [`BatchSize`], [`criterion_group!`] and
//! [`criterion_main!`] — with a simple measurement loop: warm up briefly,
//! then time a fixed batch of iterations and print the mean. No statistics,
//! plots or comparison against saved baselines; swap in real criterion for
//! publication-grade numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched setup output is sized (accepted, not interpreted).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Units processed per iteration, printed beside the timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Elements per iteration.
    Elements(u64),
}

/// Passed to every benchmark closure; runs the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup` product per iteration; only the
    /// routine is measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    iters: Option<u64>,
}

impl Criterion {
    /// Overrides the per-benchmark iteration count (default: adaptive).
    pub fn sample_size(mut self, iters: usize) -> Criterion {
        self.iters = Some(iters as u64);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Criterion {
        run_one(&id.into(), None, self.iters, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.throughput, self.criterion.iters, f);
        self
    }

    /// Ends the group (output is already flushed; kept for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    iters: Option<u64>,
    mut f: F,
) {
    // Calibration pass: find an iteration count that runs ≥ ~50 ms.
    let iters = iters.unwrap_or_else(|| {
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(20));
        (Duration::from_millis(50).as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64
    });
    let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut bencher);
    let mean_ns = bencher.elapsed.as_nanos() as f64 / iters.max(1) as f64;
    let rate = throughput.map_or(String::new(), |t| match t {
        Throughput::Bytes(n) => {
            format!("  {:.1} MiB/s", n as f64 / (mean_ns / 1e9) / (1024.0 * 1024.0))
        }
        Throughput::Elements(n) => format!("  {:.0} elem/s", n as f64 / (mean_ns / 1e9)),
    });
    println!("{id:<45} {:>12}/iter  ({iters} iters){rate}", format_ns(mean_ns));
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(8);
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count >= 8);
    }

    #[test]
    fn groups_and_batches_run() {
        let mut c = Criterion::default().sample_size(4);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(128));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 128], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
