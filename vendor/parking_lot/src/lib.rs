//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate: thin wrappers over `std::sync` primitives exposing parking_lot's
//! non-poisoning API (`lock()`, `read()`, `write()` return guards directly).
//!
//! A poisoned std lock means a writer panicked; these wrappers recover the
//! inner guard, matching parking_lot's behaviour of not propagating panics
//! into unrelated lock users.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read()`/`write()` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
