//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — the [`proptest!`] macro, range and `any::<T>()` strategies,
//! [`collection::vec`], `prop_assert!`/`prop_assert_eq!` and
//! [`ProptestConfig`] — as a deterministic mini-harness: each test case is
//! sampled from an RNG seeded by the test's name and case index, so every
//! run explores the same inputs (no shrinking, no persistence files).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Per-block configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A source of values for one test argument.
pub trait Strategy {
    /// The type of the values produced.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// A strategy producing `f` applied to this strategy's values.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, map: f }
    }

    /// Type-erases the strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds a recursive strategy: each of `depth` levels chooses between
    /// the previous level and `expand` applied to it. `_desired_size` and
    /// `_expected_branch` are accepted for API compatibility; this
    /// mini-harness controls growth through `depth` alone.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut strategy = self.boxed();
        for _ in 0..depth {
            let deeper = expand(strategy.clone()).boxed();
            strategy = Union::new(vec![strategy, deeper]).boxed();
        }
        strategy
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.map)(self.source.sample(rng))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.0.sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice between strategies (built by [`prop_oneof!`]).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rand::Rng::gen_range(rng, 0..self.0.len());
        self.0[i].sample(rng)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident => $i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A => 0, B => 1);
tuple_strategy!(A => 0, B => 1, C => 2);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rand::Rng::gen(rng)
            }
        }
    )*};
}

arbitrary_via_standard!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f32, f64);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use std::ops::Range;

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Vectors of `elem`-strategy values with length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.len.clone());
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Builds the deterministic RNG for one (test, case) pair.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ (u64::from(case) << 32 | u64::from(case)))
}

/// Chooses uniformly between the listed strategies (which may have
/// different types, as long as they produce the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Only valid inside a [`proptest!`] body (it expands to `continue` in
/// the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts a property holds (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two values are equal (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two values differ (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares a block of property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]`
/// (attributes written on the fn are preserved) that runs `body` against
/// `config.cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg); $($rest)* }
    };
    (@with_config ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut proptest_rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut proptest_rng);)*
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @with_config ($crate::ProptestConfig::default()); $($rest)* }
    };
}

pub mod prelude {
    //! Everything the `proptest!` macro and its callers need in scope.

    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 5u64..10, f in -1.0f64..1.0, b in 1u8..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!((1..=3).contains(&b));
        }

        #[test]
        fn vectors_sized(v in collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(seed in any::<[u8; 4]>()) {
            prop_assert_eq!(seed.len(), 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn combinators_compose(
            pair in (0u32..10, prop_oneof![Just("x"), Just("y")]),
            mapped in (1u8..5).prop_map(|n| n * 2),
            tree in (0u32..4).prop_map(|n| vec![n]).prop_recursive(2, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(mut a, b)| { a.extend(b); a })
            }),
        ) {
            prop_assume!(pair.0 != 9);
            prop_assert!(pair.0 < 9);
            prop_assert!(pair.1 == "x" || pair.1 == "y");
            prop_assert!(mapped % 2 == 0 && mapped < 10);
            prop_assert!(!tree.is_empty() && tree.iter().all(|&n| n < 4));
        }
    }

    #[test]
    fn boxed_strategies_share_state_cheaply() {
        let base = (0u64..100).boxed();
        let clone = base.clone();
        let mut rng = crate::case_rng("boxed", 0);
        let a = base.sample(&mut rng);
        let mut rng = crate::case_rng("boxed", 0);
        let b = clone.sample(&mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::RngCore;
        let a = crate::case_rng("t", 3).next_u64();
        let b = crate::case_rng("t", 3).next_u64();
        let c = crate::case_rng("t", 4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
