//! Offline stand-in for serde's derive macros.
//!
//! The workspace annotates wire-facing types with
//! `#[derive(Serialize, Deserialize)]` (and `#[serde(...)]` attributes) to
//! document intent, but never links a serializer — there is no `serde_json`
//! in the tree. These derives therefore accept the syntax, register the
//! `serde` helper attribute, and expand to nothing, which keeps the
//! annotations compiling with no crates.io access.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]`; expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]`; expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
