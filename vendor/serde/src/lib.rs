//! Offline stand-in for the [`serde`](https://serde.rs) facade.
//!
//! The workspace's wire-facing types carry `#[derive(Serialize,
//! Deserialize)]` to mark them as serializable, but nothing in the tree
//! links a real serializer. This crate provides the names those
//! annotations need — marker traits and no-op derive macros — so the
//! workspace builds without crates.io access. Swap it for real serde (plus
//! a data format crate) when an actual wire format is introduced.

#![forbid(unsafe_code)]

/// Marker for types declared serializable. The derive generates no code.
pub trait Serialize {}

/// Marker for types declared deserializable. The derive generates no code.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
