//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! subset of the rand 0.8 API the simulation uses is provided here, backed
//! by a xoshiro256++ generator seeded through SplitMix64. The streams are
//! deterministic per seed (the property every evaluation run relies on) but
//! are *not* bit-compatible with upstream `rand`'s `StdRng`.
//!
//! Covered surface: [`RngCore`], [`SeedableRng`], the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`, `fill`), [`rngs::StdRng`] and the
//! [`distributions::Standard`] distribution for primitive types.

#![forbid(unsafe_code)]

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type, e.g. `[u8; 32]`.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Convenience methods on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`distributions::Standard`]
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        self.gen::<f64>() < p
    }

    /// Fills a byte slice with random data (alias for `fill_bytes`).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = uniform_u128(rng, span);
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128 domain: every draw is in range.
                    return rng.next_u64() as $t;
                }
                let draw = uniform_u128(rng, span);
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `0..span` via 128-bit widening multiply (span > 0).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    if span == 0 {
        return 0;
    }
    if span <= u128::from(u64::MAX) {
        (u128::from(rng.next_u64()) * span) >> 64
    } else {
        let word = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        word % span
    }
}

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit: $t = unit_float(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let unit: $t = unit_float(rng) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

fn unit_float<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod distributions {
    //! The standard distribution over primitive types.

    use super::{unit_float, RngCore};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The uniform distribution over a type's full domain (`[0,1)` for
    /// floats).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty => $via:ident),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.$via() as $t
                }
            }
        )*};
    }

    standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                  u64 => next_u64, usize => next_u64,
                  i8 => next_u32, i16 => next_u32, i32 => next_u32,
                  i64 => next_u64, isize => next_u64);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Distribution<i128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
            let v: u128 = self.sample(rng);
            v as i128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_float(rng)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_float(rng) as f32
        }
    }

    impl<T, const N: usize> Distribution<[T; N]> for Standard
    where
        Standard: Distribution<T>,
    {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> [T; N] {
            std::array::from_fn(|_| self.sample(rng))
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u8 = rng.gen_range(1..=20);
            assert!((1..=20).contains(&w));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn zero_seed_is_recovered() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }
}
