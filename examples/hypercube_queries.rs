//! The hypercube DHT in isolation: location-keyed routing, the OLC →
//! r-bit dual encoding, complex (superset) queries over a region, and
//! behaviour under churn.
//!
//! ```sh
//! cargo run --example hypercube_queries
//! ```

use proof_of_location as pol;

use pol::geo::{olc, rbit, Coordinates};
use pol::hypercube::{query, Hypercube};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dht = Hypercube::new(6);
    println!("hypercube: r = {}, {} nodes", dht.dimensions(), dht.len());

    // The paper's worked encoding example (Fig. 1.3).
    let code: pol::geo::OlcCode = "6PH57VP3+PR".parse()?;
    let key = rbit::encode(&code, 6);
    println!("\n{code} → segments {:?}", rbit::segments(&code));
    println!("{code} → r-bit key {key} (node {})", key.index());

    // Register contracts for a handful of nearby areas.
    let spots = [
        ("piazza", 44.4938, 11.3426),
        ("towers", 44.4946, 11.3466),
        ("station", 44.5056, 11.3430),
        ("park", 44.4854, 11.3550),
    ];
    for (i, (name, lat, lon)) in spots.iter().enumerate() {
        let code = olc::encode(Coordinates::new(*lat, *lon)?, 10)?;
        dht.register_contract(&code, format!("app:{}", i + 1))?;
        let route = dht.lookup(&code)?;
        println!("{name:<8} {code} → node {:>2} in {} hops", route.target().index(), route.hops());
    }
    let stats = dht.stats();
    println!(
        "routing: {} lookups, mean {:.2} hops, p50 {}, p99 {}, max {} (bound: r = {})",
        stats.lookups,
        stats.mean_hops(),
        stats.p50_hops(),
        stats.p99_hops(),
        stats.max_hops,
        dht.dimensions()
    );

    // A complex query: every record on nodes whose ID is a superset of a
    // sparse key — the region browse of the DApp.
    let probe = pol::geo::RBitKey::from_bits(0, 6);
    let result = query::superset_search(&dht, probe, 64);
    println!(
        "\nregion query visited {} nodes ({} messages) and found {} records",
        result.visited.len(),
        result.messages,
        result.records.len()
    );

    // Churn: kill the node responsible for the piazza, then recover.
    let piazza = olc::encode(Coordinates::new(44.4938, 11.3426)?, 10)?;
    let node = dht.key_for(&piazza);
    dht.fail_node(node);
    println!("\nnode {node} offline → lookup fails: {}", dht.find_contract(&piazza).is_err());
    dht.rejoin(node);
    println!("node {node} rejoined → contract: {:?}", dht.find_contract(&piazza)?);
    Ok(())
}
