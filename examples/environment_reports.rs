//! The full Chapter-3 use case: a group of citizens collaboratively
//! reports environmental issues on the simulated Algorand testnet, a
//! verifier validates them, and the app browses the verified reports.
//!
//! ```sh
//! cargo run --release --example environment_reports
//! ```

use proof_of_location as pol;

use pol::chainsim::{explorer, presets};
use pol::core::system::{PolSystem, SystemConfig};
use pol::crowdsense::{CrowdsenseApp, Report, ReportCategory};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chain = presets::algorand_testnet().build(11);
    let system = PolSystem::new(chain, SystemConfig::default());
    let mut app = CrowdsenseApp::new(system);

    // Four citizens share one 14-metre area near the Reno river; the
    // fourth doubles as a witness for the others and vice versa.
    let base = (44.4949, 11.3426);
    let witness = app.system_mut().register_witness(base.0, base.1)?;
    let reports = [
        Report::new(
            "Oily film on the water",
            "rainbow slick near the bridge",
            ReportCategory::Pollution,
        ),
        Report::new("Dumped tyres", "about a dozen tyres on the bank", ReportCategory::Waste),
        Report::new("Broken guard rail", "sharp edges exposed", ReportCategory::RoadDamage),
        Report::new(
            "Graffiti on the monument",
            "fresh tags since yesterday",
            ReportCategory::Vandalism,
        ),
    ];

    let mut area = None;
    for (i, report) in reports.iter().enumerate() {
        let prover =
            app.system_mut().register_prover(base.0 + 0.00001 * i as f64, base.1 + 0.00001)?;
        let outcome = app.file_report(prover, witness, report)?;
        println!(
            "user {i}: {:?} via {} txs in {:.2} s (fee {})",
            outcome.kind,
            app.system().operations().last().unwrap().txs,
            outcome.latency_ms as f64 / 1000.0,
            outcome.fee,
        );
        area = Some(outcome.area);
    }
    let area = area.expect("at least one report filed");

    // Verification ("garbage-in"): only now do reports become visible.
    assert!(app.browse_area(&area)?.is_empty());
    let verified = app.system_mut().run_verifier(&area)?;
    println!("\nverifier validated {verified} reports");

    println!("\nverified reports for {area}:");
    for report in app.browse_area(&area)? {
        println!("  [{}] {} — {}", report.category, report.title, report.description);
    }

    // Close the contract; the residue returns to the creator.
    app.system_mut().close_area(&area)?;

    // The explorer view of the contract's lifecycle (Fig. 3.1).
    let contract = app.system().factory().instance_for(area.as_str()).expect("tracked").contract;
    println!("\nexplorer history for {contract}:");
    let chain = app.system().chain();
    for row in explorer::contract_history(chain, contract) {
        println!("  block {:>4} | {} | from {}", row.block, row.method, row.from);
    }
    Ok(())
}
