//! One contract source, three chains: compile the proof-of-location
//! program once with the blockchain-agnostic language, inspect the
//! verification and conservative-analysis reports, then run the same
//! submission flow on simulated Goerli, Mumbai and Algorand and compare
//! latencies and fees — the core experiment of the paper.
//!
//! ```sh
//! cargo run --release --example multichain_deploy
//! ```

use proof_of_location as pol;

use pol::chainsim::presets;
use pol::core::contract::pol_program;
use pol::core::system::{PolSystem, SystemConfig};
use pol::lang::{analyze, verify};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = pol_program();

    // 1. Static verification (Fig. 2.11).
    println!("{}\n", verify::verify(&program));

    // 2. Conservative per-chain cost analysis (Fig. 5.1).
    println!("{}", analyze::analyze(&program)?);

    // 3. A peek at the generated TEAL (Fig. 1.7).
    let compiled = pol::lang::backend::compile(&program)?;
    let teal = compiled.avm.teal();
    println!("generated TEAL (first 12 lines of {} total):", teal.lines().count());
    for line in teal.lines().take(12) {
        println!("  {line}");
    }
    println!("  …\ngenerated EVM runtime: {} bytes\n", compiled.evm.runtime_len);

    // 4. The same flow on every network.
    println!("{:<20} {:>9} {:>11} {:>14}", "network", "deploy", "attach", "deploy fee");
    for preset in presets::evaluation_networks() {
        let chain = preset.build(42);
        let config = SystemConfig { max_users: 2, ..SystemConfig::default() };
        let mut system = PolSystem::new(chain, config);
        let p1 = system.register_prover(44.4949, 11.3426)?;
        let p2 = system.register_prover(44.49491, 11.34261)?;
        let w = system.register_witness(44.49492, 11.34262)?;
        let deploy = system.submit_report(p1, w, b"report 1".to_vec())?;
        let attach = system.submit_report(p2, w, b"report 2".to_vec())?;
        println!(
            "{:<20} {:>8.2}s {:>10.2}s {:>14}",
            preset.name,
            deploy.latency_ms as f64 / 1000.0,
            attach.latency_ms as f64 / 1000.0,
            format!("{:.6} {}", deploy.fee.as_coins(), deploy.fee.currency().symbol()),
        );
    }
    Ok(())
}
