//! Quickstart: file one witnessed environmental report and verify it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use proof_of_location as pol;

use pol::chainsim::presets;
use pol::core::system::{PolSystem, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A fast local Algorand-style devnet (swap in presets::goerli() or
    // presets::mumbai() for the paper's other networks).
    let chain = presets::devnet_algo().build(7);
    let config = SystemConfig { max_users: 1, ..SystemConfig::default() };
    let mut system = PolSystem::new(chain, config);

    // Alice is in Bologna; a credentialed witness stands a few metres away.
    let alice = system.register_prover(44.4949, 11.3426)?;
    let witness = system.register_witness(44.49493, 11.34263)?;

    // She files a report: DFS upload → witness attestation (DID
    // challenge–response + Bluetooth proximity) → contract deployment for
    // the area → proof submission.
    let outcome = system.submit_report(alice, witness, b"oily spots on the river Reno".to_vec())?;
    println!("area:      {}", outcome.area);
    println!("contract:  {}", outcome.contract);
    println!("kind:      {:?} ({} transactions)", outcome.kind, system.operations()[0].txs);
    println!("latency:   {:.2} s", outcome.latency_ms as f64 / 1000.0);
    println!("fees:      {}", outcome.fee);

    // The verifier validates the proof, rewards Alice, and feeds the CID
    // into the hypercube.
    let wallet = system.prover(alice)?.wallet;
    let before = system.chain().balance(wallet);
    let verified = system.run_verifier(&outcome.area)?;
    let after = system.chain().balance(wallet);
    println!("verified:  {verified} prover(s); reward {} base units", after.saturating_sub(before));

    // Anyone can now discover the verified report through the hypercube.
    let record = system.hypercube.record(&outcome.area)?.expect("record exists");
    println!("hypercube: {}", record.to_json());
    let body = system.dfs.get(&outcome.cid)?;
    println!("report:    {}", String::from_utf8_lossy(&body));
    Ok(())
}
