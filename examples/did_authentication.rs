//! Decentralized identity in isolation: registration, resolution, the
//! challenge–response authentication of Fig. 2.4, and the Certification
//! Authority's verifiable credentials.
//!
//! ```sh
//! cargo run --example did_authentication
//! ```

use proof_of_location as pol;

use pol::did::{auth, Credential, DidRegistry, Identity, Role};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2024);
    let registry = DidRegistry::new();

    // Alice self-registers: the registration is signed with the key her
    // DID derives from, so nobody can claim a DID they don't control.
    let alice = Identity::generate(&mut rng);
    let document = registry.register_identity(&alice, 0)?;
    println!("alice's DID:      {}", alice.did);
    println!("verification key: {}", document.verification_key);
    println!("agreement key:    {}", document.agreement_key);

    // A witness resolves the DID and challenges her (sealed-box
    // encryption to the agreement key; only Alice can decrypt).
    let resolved = registry.resolve(&alice.did)?;
    let challenge = auth::Challenge::issue(&mut rng, &resolved)?;
    println!("\nchallenge ciphertext: {} bytes", challenge.ciphertext.len());
    let response = auth::respond(&alice, &challenge.ciphertext)?;
    println!("alice authenticates:  {}", challenge.verify(&response));

    // Mallory cannot answer the same challenge.
    let mallory = Identity::generate(&mut rng);
    match auth::respond(&mallory, &challenge.ciphertext) {
        Err(e) => println!("mallory fails:        {e}"),
        Ok(_) => unreachable!("sealed boxes are recipient-bound"),
    }

    // The Certification Authority credentials Alice as a witness.
    let ca = Identity::generate(&mut rng);
    let credential = Credential::issue(&ca.signing, alice.did.clone(), Role::Witness, 1_000);
    credential.verify(&ca.signing.public)?;
    println!(
        "\ncredential: {} is a {} (issued by {})",
        credential.subject, credential.role, credential.issuer
    );

    // Tampering with the role breaks the proof.
    let mut forged = credential;
    forged.role = Role::Verifier;
    println!("forged credential rejected: {}", forged.verify(&ca.signing.public).is_err());
    Ok(())
}
