//! Author a brand-new contract in the blockchain-agnostic surface
//! syntax, run the full compiler pipeline on it, and execute it on both
//! virtual machines — the "write once, run on every chain" workflow.
//!
//! ```sh
//! cargo run --example agnostic_language
//! ```

use proof_of_location as pol;

use pol::lang::backend::{self, AbiValue};
use pol::lang::{analyze, check, parse, pretty, verify};
use pol::ledger::Address;

const SOURCE: &str = r#"
// A tiny bounty pool: the creator funds it at deploy time conceptually;
// hunters claim fixed bounties while the pool lasts.
contract bounty_pool {
    participant Creator {
        bounty: uint,
        slots: uint,
    }

    global bounty: uint = field(bounty) view;
    global slots:  uint = field(slots) view;

    phase hunting while slots > 0 invariant slots >= 0 {
        api fund(amount: uint) pay amount -> balance {
            require(amount > 0);
        }

        api claim(task: uint) -> slots {
            require(task > 0);
            if balance >= bounty {
                slots = slots - 1;
                transfer(caller, bounty);
                log(task, caller);
            } else {
                log(task);
            }
        }
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse.
    let program = parse::parse(SOURCE)?;
    println!("parsed contract {:?}", program.name);

    // 2. Type-check.
    let errors = check::check(&program);
    assert!(errors.is_empty(), "{errors:?}");
    println!("type check: ok");

    // 3. Verify (honest + dishonest modes).
    let report = verify::verify(&program);
    println!("{report}\n");
    assert!(report.ok());

    // 4. Conservative analysis.
    println!("{}", analyze::analyze(&program)?);

    // 5. Compile once for both machines.
    let compiled = backend::compile(&program)?;
    println!(
        "EVM runtime: {} bytes | AVM program: {} instructions\n",
        compiled.evm.runtime_len,
        compiled.avm.program.len()
    );

    // 6. Execute the same scenario on each VM.
    let ctor = [AbiValue::Word(1_000), AbiValue::Word(2)];

    // --- EVM ---
    let mut evm = pol::evm::Evm::new();
    let mut balances = std::collections::HashMap::new();
    let hunter = Address([7; 20]);
    balances.insert(hunter, 1_000_000u128);
    let init = compiled.evm.init_with_args(&ctor)?;
    let (addr, _) = evm.deploy(Address::ZERO, &init, 30_000_000, &mut balances)?;
    let fund = compiled.evm.encode_call("fund", &[AbiValue::Word(5_000)])?;
    evm.call(
        pol::evm::CallParams::new(hunter, addr).with_data(fund).with_value(5_000),
        &mut balances,
    )?;
    let claim = compiled.evm.encode_call("claim", &[AbiValue::Word(42)])?;
    let out = evm.call(pol::evm::CallParams::new(hunter, addr).with_data(claim), &mut balances)?;
    println!("EVM claim: success={} hunter balance={}", out.success, balances[&hunter]);

    // --- AVM ---
    let mut avm = pol::avm::Avm::new();
    let mut balances = std::collections::HashMap::new();
    balances.insert(hunter, 1_000_000u128);
    let app = avm.create_app_with_args(
        Address::ZERO,
        compiled.avm.program.clone(),
        compiled.avm.encode_create_args(&ctor)?,
        &mut balances,
    )?;
    let fund = compiled.avm.encode_call("fund", &[AbiValue::Word(5_000)])?;
    avm.call(
        pol::avm::AppCallParams::new(hunter, app).with_args(fund).with_payment(5_000),
        &mut balances,
    )?;
    let claim = compiled.avm.encode_call("claim", &[AbiValue::Word(42)])?;
    let out =
        avm.call(pol::avm::AppCallParams::new(hunter, app).with_args(claim), &mut balances)?;
    println!("AVM claim: approved={} hunter balance={}", out.approved, balances[&hunter]);

    // 7. The pretty-printer closes the loop: source → AST → source.
    let reprinted = pretty::to_source(&program);
    assert_eq!(parse::parse(&reprinted)?, program);
    println!("\npretty-printed source round-trips ✓");
    Ok(())
}
