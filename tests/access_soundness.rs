//! Differential soundness test for the compile-time access summaries.
//!
//! Generates randomized pol-lang contracts (param-keyed, constant-keyed
//! and deliberately ⊤-keyed map accesses) plus random call storms, then
//! executes the same workload under the sequential oracle, the plain
//! optimistic-parallel executor and the static-lane scheduler — with the
//! commit-time access sanitizer armed, so any transaction whose observed
//! read/write set escapes its static summary panics the executor. The
//! property is twofold: the sanitizer never fires, and every mode
//! produces byte-identical receipts, burn and state digest.
#![cfg(feature = "proptest")]

use proof_of_location as pol;

use pol::chainsim::{presets, AccessQuery, Chain, ExecutionMode};
use pol::lang::backend::AbiValue;
use pol::ledger::ContractId;
use proptest::prelude::*;
use std::sync::Arc;

/// One call in the generated storm.
#[derive(Debug, Clone)]
struct Call {
    user: usize,
    api: usize,
    key: u64,
    val: u64,
}

/// The tunables a proptest case picks for the generated contract.
#[derive(Debug, Clone)]
struct Shape {
    /// The constant key the const-keyed API writes.
    const_key: u64,
    /// Whether the const-keyed API also bumps a second global.
    bump_global: bool,
    /// Whether to include the ⊤-keyed API (computed key), which forces
    /// the whole-map claim and keeps those calls off the static lanes.
    top_api: bool,
}

/// Builds a contract within the summary-friendly fragment: no
/// subtraction, no transfers, the while-guard global is never written by
/// an API, keys are parameters or constants (plus an optional computed
/// key that intentionally degrades to ⊤), and every map has a delete.
fn contract_source(shape: &Shape) -> String {
    let bump = if shape.bump_global { "acc = (acc + 1);" } else { "" };
    let top = if shape.top_api {
        "api smear(key: uint, val: uint) -> open {\n            boxes[(key + val)] = [val];\n            delete boxes[(key + val)];\n        }"
    } else {
        ""
    };
    format!(
        r#"
contract fuzz_access {{
    participant Creator {{
        limit: uint,
    }}

    global open: uint = field(limit) view;
    global acc: uint = 0 view;
    map cells[32];
    map boxes[32];

    phase live while (open > 0) invariant (open >= 0) {{
        api put(key: uint, val: uint) -> open {{
            cells[key] = [val];
        }}
        api pin(val: uint) -> open {{
            boxes[{const_key}] = [val];
            {bump}
        }}
        api clear(key: uint) -> open {{
            delete cells[key];
        }}
        api unpin() -> open {{
            delete boxes[{const_key}];
        }}
        {top}
    }}
}}
"#,
        const_key = shape.const_key,
    )
}

const APIS: [&str; 5] = ["put", "pin", "clear", "unpin", "smear"];
const USERS: usize = 4;
const WORKERS: usize = 4;

fn api_args(call: &Call) -> (&'static str, Vec<AbiValue>) {
    let name = APIS[call.api];
    let args = match name {
        "put" | "smear" => {
            vec![AbiValue::Word(u128::from(call.key)), AbiValue::Word(u128::from(call.val))]
        }
        "pin" => vec![AbiValue::Word(u128::from(call.val))],
        "clear" => vec![AbiValue::Word(u128::from(call.key))],
        _ => vec![],
    };
    (name, args)
}

struct Outcome {
    receipts: Vec<String>,
    burned: u128,
    digest: [u8; 32],
    fallbacks: u64,
    skipped: u64,
}

/// Runs one storm on a fresh chain in the given mode with the sanitizer
/// armed, returning everything the differential comparison needs.
fn run(
    preset: pol::chainsim::ChainPreset,
    mode: ExecutionMode,
    shape: &Shape,
    calls: &[Call],
    seed: u64,
) -> Outcome {
    let program = pol::lang::parse(&contract_source(shape)).expect("generated contract parses");
    let compiled = pol::lang::backend::compile(&program).expect("generated contract compiles");
    let summaries = Arc::new(pol::lang::access::summarize(&program));

    let mut chain: Chain = preset.build(seed);
    chain.set_execution_mode(mode);
    chain.set_access_sanitizer(true);
    let (creator, _) = chain.create_funded_account(10u128.pow(20));
    let avm = matches!(chain.config.vm, pol::chainsim::VmKind::Avm);
    let contract = if avm {
        let args = compiled.avm.encode_create_args(&[AbiValue::Word(USERS as u128)]).unwrap();
        let receipt = chain.deploy_app(&creator, compiled.avm.program.clone(), args).unwrap();
        receipt.created.expect("app created")
    } else {
        let init = compiled.evm.init_with_args(&[AbiValue::Word(USERS as u128)]).unwrap();
        let receipt = chain.deploy_evm(&creator, init, 5_000_000).unwrap();
        receipt.created.expect("contract created")
    };
    match contract {
        ContractId::Evm(addr) => {
            let s = Arc::clone(&summaries);
            chain.register_access_resolver(
                contract,
                Box::new(move |q: &AccessQuery<'_>| {
                    s.resolve_evm_call(addr, q.sender, q.value, q.calldata)
                }),
            );
        }
        ContractId::App(app_id) => {
            let s = Arc::clone(&summaries);
            chain.register_access_resolver(
                contract,
                Box::new(move |q: &AccessQuery<'_>| {
                    let payment = u64::try_from(q.value).ok()?;
                    s.resolve_app_call(app_id, q.sender, payment, q.app_args)
                }),
            );
        }
    }

    let users: Vec<_> = (0..USERS).map(|_| chain.create_funded_account(10u128.pow(20)).0).collect();

    // Submit the storm in batches so blocks carry several concurrent
    // calls, then await in submission order.
    let mut receipts = Vec::new();
    for batch in calls.chunks(8) {
        let mut ids = Vec::new();
        for call in batch {
            let (name, args) = api_args(call);
            let kp = &users[call.user];
            let id = if avm {
                let call_args = compiled.avm.encode_call(name, &args).unwrap();
                chain.submit_call_app(kp, contract.as_app().unwrap(), call_args, 0).unwrap()
            } else {
                let data = compiled.evm.encode_call(name, &args).unwrap();
                chain.submit_call_evm(kp, contract, data, 0, 1_000_000).unwrap()
            };
            ids.push(id);
        }
        for id in ids {
            receipts.push(format!("{:?}", chain.await_tx(id).unwrap()));
        }
    }
    let stats = chain.exec_stats();
    Outcome {
        receipts,
        burned: chain.total_burned(),
        digest: chain.state_digest(),
        fallbacks: stats.summary_fallbacks,
        skipped: stats.speculation_skipped,
    }
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (0u64..6, any::<bool>(), any::<bool>()).prop_map(|(const_key, bump_global, top_api)| Shape {
        const_key,
        bump_global,
        top_api,
    })
}

fn calls_strategy() -> impl Strategy<Value = Vec<Call>> {
    proptest::collection::vec(
        (0..USERS, 0usize..5, 0u64..6, 0u64..50).prop_map(|(user, api, key, val)| Call {
            user,
            api,
            key,
            val,
        }),
        1..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// EVM: sequential, optimistic-parallel and static-lane execution
    /// agree byte-for-byte, and the armed sanitizer never fires — every
    /// observed read/write stays inside the static summary.
    #[test]
    fn evm_summaries_are_sound_and_modes_agree(
        shape in shape_strategy(),
        calls in calls_strategy(),
        seed in 0u64..1000,
    ) {
        // The ⊤-keyed API only exists when the shape says so.
        let mut calls = calls;
        if !shape.top_api {
            for c in &mut calls {
                if c.api == 4 {
                    c.api %= 4;
                }
            }
        }
        let seq = run(presets::devnet_evm(), ExecutionMode::Sequential, &shape, &calls, seed);
        let par = run(
            presets::devnet_evm(),
            ExecutionMode::Parallel { workers: WORKERS },
            &shape,
            &calls,
            seed,
        );
        let lanes = run(
            presets::devnet_evm(),
            ExecutionMode::ParallelStatic { workers: WORKERS },
            &shape,
            &calls,
            seed,
        );
        prop_assert_eq!(&seq.receipts, &par.receipts);
        prop_assert_eq!(&seq.receipts, &lanes.receipts);
        prop_assert_eq!(seq.burned, par.burned);
        prop_assert_eq!(seq.burned, lanes.burned);
        prop_assert_eq!(seq.digest, par.digest);
        prop_assert_eq!(seq.digest, lanes.digest);
        // Every call resolves statically: the only claimless tx is the
        // deploy, so at most one block (the deploy's) may fall back.
        prop_assert!(lanes.fallbacks <= 1, "fallbacks {}", lanes.fallbacks);
    }

    /// AVM: the sequential oracle and the static-lane scheduler agree,
    /// with the sanitizer armed throughout (box-keyed claims).
    #[test]
    fn avm_summaries_are_sound_and_modes_agree(
        shape in shape_strategy(),
        calls in calls_strategy(),
        seed in 0u64..1000,
    ) {
        let mut calls = calls;
        if !shape.top_api {
            for c in &mut calls {
                if c.api == 4 {
                    c.api %= 4;
                }
            }
        }
        let seq = run(presets::devnet_algo(), ExecutionMode::Sequential, &shape, &calls, seed);
        let lanes = run(
            presets::devnet_algo(),
            ExecutionMode::ParallelStatic { workers: WORKERS },
            &shape,
            &calls,
            seed,
        );
        prop_assert_eq!(&seq.receipts, &lanes.receipts);
        prop_assert_eq!(seq.burned, lanes.burned);
        prop_assert_eq!(seq.digest, lanes.digest);
        prop_assert!(lanes.fallbacks <= 1, "fallbacks {}", lanes.fallbacks);
    }

    /// A storm of distinct param-keyed writes from distinct users rides
    /// the static lanes: validations are actually skipped, not merely
    /// survived.
    #[test]
    fn disjoint_param_keys_ride_static_lanes(seed in 0u64..1000) {
        let shape = Shape { const_key: 0, bump_global: false, top_api: false };
        let calls: Vec<Call> =
            (0..USERS).map(|u| Call { user: u, api: 0, key: u as u64, val: 7 }).collect();
        let lanes = run(
            presets::devnet_evm(),
            ExecutionMode::ParallelStatic { workers: WORKERS },
            &shape,
            &calls,
            seed,
        );
        prop_assert!(lanes.skipped > 0, "no validation skipped: {}", lanes.skipped);
    }
}
