//! Adversarial scenarios: every way the paper says the system must stop
//! a cheater, exercised end to end through the public API.

use proof_of_location as pol;

use pol::chainsim::presets;
use pol::core::proof::{LocationProof, ProofRequest, SubmittedEntry};
use pol::core::system::{PolSystem, SystemConfig};
use pol::core::PolError;
use pol::dfs::Cid;
use pol::did::Identity;
use pol::geo::{olc, Coordinates};

const BASE: (f64, f64) = (44.4949, 11.3426);

fn system_with(max_users: u64, seed: u64) -> PolSystem {
    let config = SystemConfig { max_users, seed, ..SystemConfig::default() };
    PolSystem::new(presets::devnet_algo().build(seed), config)
}

#[test]
fn gps_spoofing_is_stopped_by_radio_range() {
    // The Uber-style attack (§1.1): the prover reports coordinates far
    // from where they are. The witness only hears devices in radio
    // range, so the attestation fails.
    let mut system = system_with(1, 1);
    let liar = system.register_prover(45.4642, 9.19).unwrap(); // claims Milan
    let witness = system.register_witness(BASE.0, BASE.1).unwrap(); // is in Bologna
    let err = system.submit_report(liar, witness, b"fake".to_vec()).unwrap_err();
    assert!(matches!(err, PolError::OutOfRange { .. }));
    assert_eq!(system.operations().len(), 0, "nothing reached the chain");
}

#[test]
fn unlisted_witness_is_filtered_by_garbage_in() {
    // A proof signed by a witness the Certification Authority never
    // enrolled is rejected by the verifier's off-chain pass, so the CID
    // never enters the hypercube.
    let prover = Identity::from_seed(10);
    let rogue_witness = Identity::from_seed(11);
    let area = olc::encode(Coordinates::new(BASE.0, BASE.1).unwrap(), 10).unwrap();
    let request = ProofRequest {
        did: prover.did.clone(),
        olc: area.clone(),
        nonce: 0,
        cid: Cid::for_content(b"spam"),
        wallet: pol::ledger::Address([9; 20]),
    };
    let proof = LocationProof::issue(&rogue_witness.signing, request);
    let entry = SubmittedEntry::from_proof(&proof);
    // Whitelist contains someone else entirely.
    let lists = vec![Identity::from_seed(12).signing.public];
    assert!(matches!(entry.verify_against(&prover.did, &area, &lists), Err(PolError::BadProof(_))));
}

#[test]
fn tampered_entry_is_rejected_on_chain() {
    // Submit honestly, then have the verifier present altered data: the
    // contract recomputes the commitment and reverts the verify call.
    let mut system = system_with(1, 2);
    let p = system.register_prover(BASE.0, BASE.1).unwrap();
    let w = system.register_witness(BASE.0, BASE.1 + 0.00001).unwrap();
    let out = system.submit_report(p, w, b"honest report".to_vec()).unwrap();

    // Forge: different CID (i.e. different report) under the same DID.
    let did_digest = system.prover(p).unwrap().identity.did.numeric_id();
    let compiled = system.factory().compiled().avm.clone();
    let app_id = out.contract.as_app().unwrap();
    let mut forged_bytes = vec![0u8; pol::core::proof::ENTRY_CAPACITY];
    forged_bytes[0] = 0xff;
    let args = compiled
        .encode_call(
            "verify",
            &[
                pol::lang::backend::AbiValue::Word(u128::from(did_digest)),
                pol::lang::backend::AbiValue::Address(pol::ledger::Address([7; 20])),
                pol::lang::backend::AbiValue::Bytes(forged_bytes),
            ],
        )
        .unwrap();
    let (attacker_keys, attacker_addr) = system.chain_mut().create_funded_account(10_000_000);
    let _ = attacker_addr;
    let receipt = system.chain_mut().call_app(&attacker_keys, app_id, args, 0).unwrap();
    assert!(!receipt.status.is_success(), "commitment mismatch must reject: {:?}", receipt.status);
}

#[test]
fn duplicate_did_insert_rejected_by_contract() {
    // One DID, one pending entry: a second insert under the same DID
    // reverts (`Require(!MapContains(did))`).
    let mut system = system_with(4, 3);
    let p = system.register_prover(BASE.0, BASE.1).unwrap();
    let w = system.register_witness(BASE.0, BASE.1 + 0.00001).unwrap();
    system.submit_report(p, w, b"first".to_vec()).unwrap();
    let err = system.submit_report(p, w, b"second".to_vec()).unwrap_err();
    assert!(matches!(err, PolError::Ledger(_)), "{err:?}");
}

#[test]
fn unavailable_report_is_not_verified() {
    // If the report data vanished from the DFS (nobody hosts it), the
    // verifier skips the entry: no reward, no hypercube insertion.
    let mut system = system_with(1, 4);
    let p = system.register_prover(BASE.0, BASE.1).unwrap();
    let w = system.register_witness(BASE.0, BASE.1 + 0.00001).unwrap();
    let out = system.submit_report(p, w, b"will vanish".to_vec()).unwrap();
    // Unpin + GC at the only provider.
    let peer = pol::dfs::PeerId(0);
    system.dfs.unpin(peer, &out.cid).unwrap();
    system.dfs.gc(peer).unwrap();
    assert_eq!(system.run_verifier(&out.area).unwrap(), 0);
    let record = system.hypercube.record(&out.area).unwrap().unwrap();
    assert!(record.cids.is_empty());
}

#[test]
fn replayed_request_cannot_get_a_second_proof() {
    // Protocol-level replay: reusing a witness nonce fails.
    use pol::core::actors::{CertificationAuthority, Prover, Witness};
    use pol::did::DidRegistry;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(5);
    let mut ca = CertificationAuthority::new(Identity::from_seed(100));
    let registry = DidRegistry::new();
    let position = Coordinates::new(BASE.0, BASE.1).unwrap();
    let prover = Prover::new(Identity::from_seed(1), position);
    registry.register_identity(&prover.identity, 0).unwrap();
    let wid = Identity::from_seed(2);
    let cred = ca.enroll_witness(&wid, 0);
    let mut witness = Witness::new(wid, position.offset_m(3.0, 3.0).unwrap(), cred);

    let nonce = witness.issue_nonce();
    let request = ProofRequest {
        did: prover.identity.did.clone(),
        olc: olc::encode(position, 10).unwrap(),
        nonce,
        cid: Cid::for_content(b"x"),
        wallet: prover.wallet,
    };
    witness
        .attest(&mut rng, &registry, request.clone(), &prover.identity, &prover.position)
        .unwrap();
    let err = witness
        .attest(&mut rng, &registry, request, &prover.identity, &prover.position)
        .unwrap_err();
    assert!(matches!(err, PolError::ReplayDetected(_)));
}

#[test]
fn underfunded_contract_pays_nobody_but_keeps_entry() {
    // The contract's `verify` takes the else-branch
    // (issueDuringVerification, §4.1.5) when the balance cannot cover
    // the reward: the call succeeds, nothing is transferred, and the
    // entry stays pending for a later, funded pass. Exercised directly
    // at the contract level.
    use pol::lang::backend::AbiValue;

    let program = pol::core::contract::pol_program();
    let compiled = pol::lang::backend::compile(&program).unwrap();
    let mut chain = presets::devnet_algo().build(6);
    let (creator, _) = chain.create_funded_account(10_000_000);
    let reward: u128 = 50_000;
    let entry = vec![0xabu8; pol::core::proof::ENTRY_CAPACITY];
    let did: u128 = 777;
    let wallet = pol::ledger::Address([5; 20]);

    let ctor = vec![
        AbiValue::Word(did),
        AbiValue::Bytes(b"8FPHF8VV+X2".to_vec()),
        AbiValue::Word(1), // one seat: verification opens after insert
        AbiValue::Word(reward),
    ];
    let args = compiled.avm.encode_create_args(&ctor).unwrap();
    let receipt = chain.deploy_app(&creator, compiled.avm.program.clone(), args).unwrap();
    let app_id = receipt.created.unwrap().as_app().unwrap();

    let insert = compiled
        .avm
        .encode_call("insert_data", &[AbiValue::Bytes(entry.clone()), AbiValue::Word(did)])
        .unwrap();
    assert!(chain.call_app(&creator, app_id, insert, 0).unwrap().status.is_success());

    // verify with matching data but an empty contract balance.
    let verify = compiled
        .avm
        .encode_call(
            "verify",
            &[AbiValue::Word(did), AbiValue::Address(wallet), AbiValue::Bytes(entry)],
        )
        .unwrap();
    let receipt = chain.call_app(&creator, app_id, verify, 0).unwrap();
    assert!(receipt.status.is_success(), "else-branch must not revert");
    assert_eq!(chain.balance(wallet), 0, "no reward without funds");
    assert_eq!(chain.avm().box_count(app_id), 1, "entry still pending");
}
