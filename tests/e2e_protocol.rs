//! End-to-end protocol tests across crates: the same scenario on both VM
//! families, with observable-equivalence checks between them.

use proof_of_location as pol;

use pol::chainsim::presets;
use pol::chainsim::VmKind;
use pol::core::system::{OpKind, PolSystem, SystemConfig};

const BASE: (f64, f64) = (44.4949, 11.3426);

fn build(vm: VmKind, max_users: u64, seed: u64) -> PolSystem {
    let preset = match vm {
        VmKind::Evm => presets::devnet_evm(),
        VmKind::Avm => presets::devnet_algo(),
    };
    let config = SystemConfig { max_users, seed, ..SystemConfig::default() };
    PolSystem::new(preset.build(seed), config)
}

/// Runs the canonical 4-user scenario and returns observables:
/// (rewards per prover, hypercube CID count, residue returned to creator).
fn run_scenario(vm: VmKind) -> (Vec<u128>, usize, bool) {
    let mut system = build(vm, 4, 9);
    let witness = system.register_witness(BASE.0, BASE.1).unwrap();
    let mut provers = Vec::new();
    for i in 0..4 {
        let p = system.register_prover(BASE.0 + 0.00001 * i as f64, BASE.1).unwrap();
        provers.push(p);
    }
    let mut area = None;
    for (i, &p) in provers.iter().enumerate() {
        let out = system.submit_report(p, witness, format!("report {i}").into_bytes()).unwrap();
        if i == 0 {
            assert_eq!(out.kind, OpKind::Deploy);
        } else {
            assert_eq!(out.kind, OpKind::Attach);
        }
        area = Some(out.area);
    }
    let area = area.unwrap();

    let balances_before: Vec<u128> =
        provers.iter().map(|&p| system.chain().balance(system.prover(p).unwrap().wallet)).collect();
    assert_eq!(system.run_verifier(&area).unwrap(), 4);
    let rewards: Vec<u128> = provers
        .iter()
        .zip(&balances_before)
        .map(|(&p, before)| system.chain().balance(system.prover(p).unwrap().wallet) - before)
        .collect();

    let cids = system.hypercube.record(&area).unwrap().unwrap().cids.len();
    let closed = system.close_area(&area).is_ok();
    (rewards, cids, closed)
}

#[test]
fn scenario_on_evm() {
    let (rewards, cids, closed) = run_scenario(VmKind::Evm);
    assert!(rewards.iter().all(|&r| r == SystemConfig::default().reward));
    assert_eq!(cids, 4);
    assert!(closed);
}

#[test]
fn scenario_on_avm() {
    let (rewards, cids, closed) = run_scenario(VmKind::Avm);
    assert!(rewards.iter().all(|&r| r == SystemConfig::default().reward));
    assert_eq!(cids, 4);
    assert!(closed);
}

#[test]
fn cross_vm_observable_equivalence() {
    // One agnostic source, two machines: the protocol-level observables
    // must agree exactly.
    let evm = run_scenario(VmKind::Evm);
    let avm = run_scenario(VmKind::Avm);
    assert_eq!(evm.0, avm.0, "rewards must match across VMs");
    assert_eq!(evm.1, avm.1, "hypercube records must match across VMs");
    assert_eq!(evm.2, avm.2, "closability must match across VMs");
}

#[test]
fn two_areas_get_two_contracts() {
    let mut system = build(VmKind::Avm, 1, 5);
    let bologna = system.register_prover(44.4949, 11.3426).unwrap();
    let milan = system.register_prover(45.4642, 9.19).unwrap();
    let w_bologna = system.register_witness(44.49491, 11.34261).unwrap();
    let w_milan = system.register_witness(45.46421, 9.19001).unwrap();
    let out1 = system.submit_report(bologna, w_bologna, b"a".to_vec()).unwrap();
    let out2 = system.submit_report(milan, w_milan, b"b".to_vec()).unwrap();
    assert_ne!(out1.area, out2.area);
    assert_ne!(out1.contract, out2.contract);
    assert_eq!(out1.kind, OpKind::Deploy);
    assert_eq!(out2.kind, OpKind::Deploy);
    assert_eq!(system.factory().instances().len(), 2);
    assert_eq!(system.hypercube.record_count(), 2);
}

#[test]
fn fifth_user_rejected_when_seats_full() {
    let mut system = build(VmKind::Avm, 4, 6);
    let witness = system.register_witness(BASE.0, BASE.1).unwrap();
    for i in 0..4 {
        let p = system.register_prover(BASE.0 + 0.00001 * i as f64, BASE.1).unwrap();
        system.submit_report(p, witness, b"r".to_vec()).unwrap();
    }
    let fifth = system.register_prover(BASE.0, BASE.1 + 0.00002).unwrap();
    let err = system.submit_report(fifth, witness, b"late".to_vec()).unwrap_err();
    // The attach phase is over; the insert reverts on-chain.
    assert!(matches!(err, pol::core::PolError::Ledger(_)), "{err:?}");
}

#[test]
fn full_consensus_chain_produces_valid_rounds() {
    // The Algorand preset with real VRF sortition in the block loop.
    let mut preset = presets::algorand_full_consensus();
    preset.config.block_ms = 100;
    preset.config.block_jitter_ms = 0;
    preset.config.propagation_ms = (0, 0);
    let config = SystemConfig { max_users: 1, ..SystemConfig::default() };
    let mut system = PolSystem::new(preset.build(4), config);
    let p = system.register_prover(BASE.0, BASE.1).unwrap();
    let w = system.register_witness(BASE.0, BASE.1 + 0.00001).unwrap();
    let out = system.submit_report(p, w, b"consensus".to_vec()).unwrap();
    assert_eq!(system.run_verifier(&out.area).unwrap(), 1);
    // Proposers rotate across blocks (VRF-selected leaders).
    let mut proposers = std::collections::HashSet::new();
    for h in 1..=system.chain().height() {
        proposers.insert(system.chain().block(h).unwrap().proposer);
    }
    assert!(proposers.len() > 1, "leaders should rotate, got {proposers:?}");
}

#[test]
fn report_latencies_follow_chain_cadence() {
    // On the simulated Algorand testnet, the deploy script is 8 rounds
    // and the attach script 4 rounds — ±jitter.
    let config = SystemConfig { max_users: 2, ..SystemConfig::default() };
    let mut system = PolSystem::new(presets::algorand_testnet().build(77), config);
    let p1 = system.register_prover(BASE.0, BASE.1).unwrap();
    let p2 = system.register_prover(BASE.0, BASE.1 + 0.00001).unwrap();
    let w = system.register_witness(BASE.0 + 0.00001, BASE.1).unwrap();
    let deploy = system.submit_report(p1, w, b"a".to_vec()).unwrap();
    let attach = system.submit_report(p2, w, b"b".to_vec()).unwrap();
    let round = 3_630.0;
    let d = deploy.latency_ms as f64;
    let a = attach.latency_ms as f64;
    assert!((d - 8.0 * round).abs() < 8.0 * 500.0, "deploy {d} ms");
    assert!((a - 4.0 * round).abs() < 4.0 * 500.0, "attach {a} ms");
}

#[test]
fn witness_reward_extension_pays_both_parties() {
    // The §2.8 future-work variant: prover AND witness are rewarded.
    let config =
        SystemConfig { max_users: 1, witness_reward: Some(250_000), ..SystemConfig::default() };
    let mut system = PolSystem::new(presets::devnet_algo().build(13), config);
    let p = system.register_prover(BASE.0, BASE.1).unwrap();
    let w = system.register_witness(BASE.0, BASE.1 + 0.00001).unwrap();
    let out = system.submit_report(p, w, b"report".to_vec()).unwrap();

    let prover_wallet = system.prover(p).unwrap().wallet;
    let witness_wallet =
        pol::ledger::Address::from_public_key(&system.witness_identity(w).unwrap().signing.public);
    let prover_before = system.chain().balance(prover_wallet);
    let witness_before = system.chain().balance(witness_wallet);
    assert_eq!(system.run_verifier(&out.area).unwrap(), 1);
    assert_eq!(
        system.chain().balance(prover_wallet) - prover_before,
        SystemConfig::default().reward,
        "prover reward"
    );
    assert_eq!(
        system.chain().balance(witness_wallet) - witness_before,
        250_000,
        "witness reward (§2.8)"
    );
}
