//! Property-based tests over cross-crate invariants.
//!
//! Gated behind the (default-on) `proptest` cargo feature so a
//! `--no-default-features` build skips the property harness entirely.
#![cfg(feature = "proptest")]

use proof_of_location as pol;

use pol::chainsim::feemarket;
use pol::core::proof::{SubmittedEntry, ENTRY_CAPACITY};
use pol::crypto::ed25519::Keypair;
use pol::dfs::Cid;
use pol::evm::Word;
use pol::geo::{olc, rbit, Coordinates};
use pol::ledger::{Address, Amount, Currency};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any point on Earth encodes to a valid 10-digit code whose decoded
    /// cell contains (or touches, at the poles) the point.
    #[test]
    fn olc_encode_decode_containment(lat in -89.99f64..89.99, lon in -179.99f64..179.99) {
        let point = Coordinates::new(lat, lon).unwrap();
        let code = olc::encode(point, 10).unwrap();
        prop_assert!(olc::is_full(code.as_str()));
        let area = code.decode();
        prop_assert!(
            area.contains(&point),
            "{code} ({area:?}) should contain {point}"
        );
        // Cell height is the documented ~125 ppm of a degree.
        prop_assert!((area.north - area.south - 0.000125).abs() < 1e-12);
    }

    /// The r-bit key is deterministic and always within the hypercube.
    #[test]
    fn rbit_key_in_range(lat in -89.0f64..89.0, lon in -179.0f64..179.0, r in 1u8..=20) {
        let code = olc::encode(Coordinates::new(lat, lon).unwrap(), 10).unwrap();
        let k1 = rbit::encode(&code, r);
        let k2 = rbit::encode(&code, r);
        prop_assert_eq!(k1, k2);
        prop_assert!(k1.index() < (1u64 << r));
    }

    /// Submitted entries round-trip through their wire form.
    #[test]
    fn entry_wire_round_trip(seed in 0u64..1000, nonce in any::<u64>(), body in proptest::collection::vec(any::<u8>(), 0..64)) {
        let witness = Keypair::from_seed(&{
            let mut s = [0u8; 32];
            s[..8].copy_from_slice(&seed.to_le_bytes());
            s
        });
        let proof_hash = pol::crypto::keccak256(&body);
        let signature = witness.sign(&proof_hash);
        let entry = SubmittedEntry {
            proof_hash,
            signature,
            witness: witness.public,
            wallet: Address([seed as u8; 20]),
            nonce,
            cid: Cid::for_content(&body),
        };
        let bytes = entry.to_bytes();
        prop_assert_eq!(bytes.len(), ENTRY_CAPACITY);
        prop_assert_eq!(SubmittedEntry::from_bytes(&bytes).unwrap(), entry);
    }

    /// EVM words agree with native u128 arithmetic where both are defined.
    #[test]
    fn word_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        let wa = Word::from_u128(a);
        let wb = Word::from_u128(b);
        prop_assert_eq!(wa.wrapping_add(&wb).as_u128(), a.wrapping_add(b));
        prop_assert_eq!(wa.and(&wb).as_u128(), a & b);
        prop_assert_eq!(wa.or(&wb).as_u128(), a | b);
        prop_assert_eq!(wa.xor(&wb).as_u128(), a ^ b);
        if let (Some(q), Some(r)) = (a.checked_div(b), a.checked_rem(b)) {
            prop_assert_eq!(wa.div(&wb).as_u128(), q);
            prop_assert_eq!(wa.rem(&wb).as_u128(), r);
        }
        prop_assert_eq!(wa.cmp_u(&wb), a.cmp(&b));
    }

    /// EIP-1559: the base fee never moves more than 12.5 % per block and
    /// never falls below the floor.
    #[test]
    fn base_fee_bounded(current in 7u128..10u128.pow(12), gas_used in 0u64..30_000_000) {
        let next = feemarket::next_base_fee(current, gas_used, 15_000_000);
        prop_assert!(next >= feemarket::MIN_BASE_FEE);
        // +1 tolerance for the minimum-delta rounding.
        prop_assert!(next <= current + current / 8 + 1, "{current} -> {next}");
        prop_assert!(next + current / 8 + 1 >= current, "{current} -> {next}");
    }

    /// Currency conversions are consistent: base units → coins → euro.
    #[test]
    fn amount_conversions(units in 0u128..10u128.pow(24)) {
        for currency in [Currency::Eth, Currency::Matic, Currency::Algo] {
            let amount = Amount::from_base_units(units, currency);
            let eur = amount.as_eur();
            prop_assert!((eur - amount.as_coins() * currency.eur_price()).abs() < 1e-6);
        }
    }

    /// Ed25519 signatures over arbitrary messages verify, and tampering
    /// any byte breaks them.
    #[test]
    fn signature_soundness(seed in any::<[u8; 32]>(), msg in proptest::collection::vec(any::<u8>(), 1..128), flip in 0usize..128) {
        let kp = Keypair::from_seed(&seed);
        let sig = kp.sign(&msg);
        prop_assert!(kp.public.verify(&msg, &sig));
        let mut tampered = msg.clone();
        let idx = flip % tampered.len();
        tampered[idx] ^= 0x01;
        prop_assert!(!kp.public.verify(&tampered, &sig));
    }

    /// CIDs are injective on content (up to hash collisions) and always
    /// re-parseable.
    #[test]
    fn cid_parse_round_trip(content in proptest::collection::vec(any::<u8>(), 0..256)) {
        let cid = Cid::for_content(&content);
        prop_assert_eq!(Cid::parse(cid.as_str()).unwrap(), cid.clone());
        prop_assert!(cid.matches(&content));
    }

    /// Hypercube greedy routing always terminates in at most r hops when
    /// all nodes are online.
    #[test]
    fn routing_bound(src in any::<u32>(), dst in any::<u32>(), r in 2u8..=16) {
        use pol::geo::RBitKey;
        let s = RBitKey::from_bits(src, r);
        let t = RBitKey::from_bits(dst, r);
        let route = pol::hypercube::routing::route(s, t, u32::from(r), |_| true).unwrap();
        prop_assert!(route.hops() <= u32::from(r));
        prop_assert_eq!(route.target(), t);
    }
}
