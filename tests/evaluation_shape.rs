//! Evaluation-shape tests: small versions of the Chapter-5 runs whose
//! qualitative conclusions must hold on every build. (The full tables
//! come from `cargo run -p pol-bench --bin tables`.)

use pol_bench as bench;
use pol_chainsim::presets;
use pol_core::system::OpKind;
use pol_crowdsense::simulation::{self, SimulationConfig};

#[test]
fn figure_5_1_values_are_exact() {
    let analysis = bench::conservative_analysis();
    assert_eq!(analysis.evm_deploy_gas, 1_440_385, "paper §5.1.1 deploy gas");
    assert_eq!(analysis.api("insert_data").unwrap().evm_gas, 82_437, "paper §5.1.1 attach gas");
    assert_eq!(analysis.theorems, 42, "Fig. 2.11: 42 theorems");
    assert!(analysis.verified);
}

#[test]
fn eight_user_shape_holds_across_networks() {
    let config = SimulationConfig { users: 8, seed: 7, ..Default::default() };
    let goerli = simulation::run(&presets::goerli(), &config).unwrap();
    let mumbai = simulation::run(&presets::mumbai(), &config).unwrap();
    let algo = simulation::run(&presets::algorand_testnet(), &config).unwrap();

    // Who wins, per the paper's conclusions.
    assert!(
        goerli.deploy_stats().mean_s > algo.deploy_stats().mean_s,
        "Goerli deploys slower than Algorand"
    );
    assert!(
        goerli.attach_stats().mean_s > algo.attach_stats().mean_s,
        "Goerli attaches slower than Algorand"
    );
    assert!(algo.attach_stats().mean_s < mumbai.attach_stats().mean_s, "Algorand attach fastest");
    // Stability: Algorand's dispersion is an order of magnitude below
    // Goerli's.
    assert!(algo.deploy_stats().std_s * 5.0 < goerli.deploy_stats().std_s + 1.0);
    // Rough magnitudes (generous bands around Tables 5.1/5.3).
    let algo_deploy = algo.deploy_stats().mean_s;
    assert!((25.0..35.0).contains(&algo_deploy), "Algorand deploy ≈29 s, got {algo_deploy}");
    let algo_attach = algo.attach_stats().mean_s;
    assert!((12.0..18.0).contains(&algo_attach), "Algorand attach ≈14.5 s, got {algo_attach}");
}

#[test]
fn fee_regimes_match_the_paper() {
    let config = SimulationConfig { users: 8, seed: 9, ..Default::default() };
    let goerli = simulation::run(&presets::goerli(), &config).unwrap();
    let algo = simulation::run(&presets::algorand_testnet(), &config).unwrap();

    // Algorand fees are flat and deterministic: 8 × 0.001 Algo deploy,
    // 4 × 0.001 Algo attach.
    assert_eq!(algo.mean_fee(OpKind::Deploy).base_units(), 8_000);
    assert_eq!(algo.mean_fee(OpKind::Attach).base_units(), 4_000);

    // Goerli deploys cost tens of euros; Algorand fractions of a cent
    // (the paper's headline cost comparison).
    assert!(goerli.mean_fee(OpKind::Deploy).as_eur() > 1.0);
    assert!(algo.mean_fee(OpKind::Deploy).as_eur() < 0.01);
}

#[test]
fn connector_tx_counts() {
    let config = SimulationConfig { users: 8, seed: 11, ..Default::default() };
    let goerli = simulation::run(&presets::goerli(), &config).unwrap();
    let algo = simulation::run(&presets::algorand_testnet(), &config).unwrap();
    for m in &goerli.measurements {
        let expect = if m.kind == OpKind::Deploy { 3 } else { 2 };
        assert_eq!(m.txs, expect, "EVM connector script");
    }
    for m in &algo.measurements {
        let expect = if m.kind == OpKind::Deploy { 8 } else { 4 };
        assert_eq!(m.txs, expect, "Algorand connector script");
    }
}

#[test]
fn shape_report_passes_on_16_users() {
    let results = bench::run_all(16, 21);
    let checks = bench::shape_report(&results);
    assert_eq!(checks.len(), 6);
    for (name, ok) in checks {
        assert!(ok, "shape check failed: {name}");
    }
}
